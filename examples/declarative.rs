//! The declarative layer: `moderated_component!` generates the typed
//! proxy (the paper's hand-written `TicketServerProxy`, for free) and
//! `Blueprint` wires a whole composition through a factory with
//! all-or-nothing validation.
//!
//! ```text
//! cargo run --example declarative
//! ```

use std::sync::Arc;

use aspect_moderator::core::{
    moderated_component, AspectModerator, Blueprint, Concern, FnAspect, NoopAspect,
    RegistryFactory, Verdict,
};

/// The functional component: a plain key-value cache, oblivious to
/// every interaction concern.
struct Cache {
    entries: Vec<(String, String)>,
    capacity: usize,
}

impl Cache {
    fn put(&mut self, key: String, value: String) -> bool {
        if self.entries.len() >= self.capacity {
            return false;
        }
        self.entries.push((key, value));
        true
    }

    fn get(&mut self, key: String) -> Option<String> {
        self.entries
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.clone())
    }

    fn evict(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }
}

moderated_component! {
    /// Typed proxy generated from the method list — compare with the
    /// hand-written proxies of the paper's Figures 5/10.
    pub proxy CacheProxy for Cache {
        /// Guarded insert.
        fn put(&mut self, key: String, value: String) -> bool;
        /// Guarded lookup.
        fn get(&mut self, key: String) -> Option<String>;
        /// Guarded full eviction.
        fn evict(&mut self) -> usize;
    }
}

fn main() {
    // A factory covering the concerns the blueprint asks for.
    let mut factory = RegistryFactory::new();
    factory.provide_for_concern(Concern::audit(), || Box::new(NoopAspect));
    factory.provide_for_concern(Concern::new("write-budget"), || {
        Box::new(FnAspect::new("at-most-4-writes").on_precondition({
            let mut writes = 0;
            move |_| {
                writes += 1;
                Verdict::resume_or_abort(writes <= 4, "write budget exhausted")
            }
        }))
    });

    // The whole composition as one validated description.
    let blueprint = Blueprint::new()
        .method("put", [Concern::new("write-budget"), Concern::audit()])
        .method("get", [Concern::audit()])
        .method("evict", [Concern::new("write-budget")])
        .wake("put", ["get"])
        .wake("evict", ["put", "get"]);

    let moderator = AspectModerator::shared();
    match blueprint.apply(&moderator, &factory) {
        Ok(handles) => println!("blueprint applied: {} methods wired", handles.len()),
        Err(problems) => {
            eprintln!("blueprint invalid:");
            for p in problems {
                eprintln!("  - {p}");
            }
            return;
        }
    }

    // The generated proxy re-uses the same moderator (method names
    // match, declaration is idempotent).
    let cache = CacheProxy::new(
        Cache {
            entries: Vec::new(),
            capacity: 8,
        },
        Arc::clone(&moderator),
    );

    for i in 0..5 {
        match cache.put(format!("k{i}"), format!("v{i}")) {
            Ok(stored) => println!("put k{i}: stored={stored}"),
            Err(veto) => println!("put k{i}: {veto}"),
        }
    }
    println!("get k1 -> {:?}", cache.get("k1".into()).unwrap());
    // Each (method, concern) cell got its own aspect instance from the
    // factory, so evict has an independent write budget.
    println!("evict -> {} entries cleared", cache.evict().unwrap());
    let stats = moderator.stats();
    println!(
        "stats: {} activations, {} aborted by aspects",
        stats.preactivations, stats.aborts
    );
}

//! The ticket service on the wire: aspects vetoing remote requests.
//!
//! Spawns the TCP service on an ephemeral port, then shows the three
//! remote outcomes — an aspect veto (`Aborted`, bad token), a bounded
//! buffer holding a request until the server gives up (`Blocked`),
//! and the happy path — and finally prints the moderator's protocol
//! trace of those activations.
//!
//! Run with: `cargo run --example service`

use std::time::Duration;

use amf_service::{ClientError, ServiceClient, ServiceConfig, TicketService};
use aspect_moderator::aspects::auth::AuthToken;
use aspect_moderator::ticketing::Severity;

fn main() {
    // Tiny buffer + short patience so the Blocked path is visible.
    let config = ServiceConfig {
        capacity: 1,
        op_timeout: Duration::from_millis(50),
        ..ServiceConfig::default()
    };
    let mut handle = TicketService::spawn("127.0.0.1:0", config).expect("spawn service");
    println!("service listening on {}", handle.addr());

    handle.authenticator().add_user("ops", "secret");
    let token = handle
        .authenticator()
        .login("ops", "secret")
        .expect("login");

    let mut client = ServiceClient::connect(handle.addr()).expect("connect");

    // 1. A bad token: the authentication aspect vetoes the activation
    //    before the ticket server is ever touched.
    match client.open(AuthToken(0xbad), 1, Severity::High, "intrusion?") {
        Err(ClientError::Aborted(reason)) => println!("bad token     -> Aborted: {reason}"),
        other => println!("bad token     -> unexpected: {other:?}"),
    }

    // 2. The happy path fills the single-slot buffer...
    client
        .open(token, 1, Severity::Medium, "printer jam")
        .expect("first open fits");
    println!("open #1       -> Ok (buffer now full)");

    // 3. ...so the next open blocks in the pre-activation protocol
    //    until the server's patience runs out.
    match client.open(token, 2, Severity::Low, "toner low") {
        Err(ClientError::Blocked) => println!("open #2       -> Blocked (buffer stayed full)"),
        other => println!("open #2       -> unexpected: {other:?}"),
    }

    // Drain the ticket so the trace ends on a resumed assign.
    let t = client.assign(token).expect("assign");
    println!("assign        -> Ok: {} ({})", t.summary, t.severity);

    println!("\nprotocol trace (compact):");
    for line in handle.trace().compact() {
        println!("  {line}");
    }

    let stats = handle.stats();
    println!(
        "\nstats: opened={} assigned={} queued={} aborts={} timeouts={} \
         max_queue_depth={} panics_caught={} batched_grants={} fast_path_admits={} \
         fast_path_fallbacks={} open_connections={} tasks_parked={}",
        stats.opened,
        stats.assigned,
        stats.queued,
        stats.aborts,
        stats.timeouts,
        stats.max_queue_depth,
        stats.panics_caught,
        stats.batched_grants,
        stats.fast_path_admits,
        stats.fast_path_fallbacks,
        stats.open_connections,
        stats.tasks_parked,
    );
    handle.shutdown();
}

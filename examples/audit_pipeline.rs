//! Reservation + timecard back-office: per-principal quotas, rate
//! limits, role gates — all as aspects — with a merged audit review at
//! the end.
//!
//! ```text
//! cargo run --example audit_pipeline
//! ```

use std::sync::Arc;

use aspect_moderator::aspects::auth::{Authenticator, Role};
use aspect_moderator::concurrency::SystemClock;
use aspect_moderator::core::AspectModerator;
use aspect_moderator::scenarios::{ReservationService, TimecardService};

fn main() {
    let auth = Authenticator::shared();
    auth.add_user("rae", "pw");
    auth.add_user("kit", "pw");
    auth.add_user("mgr", "pw");
    auth.grant_role("mgr", Role::new("manager")).unwrap();

    // Seat reservations: 2 per caller.
    let seats = ReservationService::new(AspectModerator::shared(), Arc::clone(&auth), 6, 2)
        .expect("fresh moderator");
    let rae = auth.login("rae", "pw").unwrap();
    let kit = auth.login("kit", "pw").unwrap();

    seats.reserve(rae, 0).unwrap();
    seats.reserve(rae, 1).unwrap();
    match seats.reserve(rae, 2) {
        Err(e) => println!("rae's third reservation: {e}"),
        Ok(()) => unreachable!("quota must veto"),
    }
    seats.reserve(kit, 2).unwrap();
    match seats.reserve(kit, 0) {
        Err(e) => println!("kit tries rae's seat: {e}"),
        Ok(()) => unreachable!("seat is taken"),
    }
    println!(
        "seats: rae holds {:?}, kit holds {:?}, {} free",
        seats.held_by("rae"),
        seats.held_by("kit"),
        seats.available()
    );

    // Timecards: employees submit (rate-limited), the manager approves.
    let cards = TimecardService::new(
        AspectModerator::shared(),
        Arc::clone(&auth),
        100,
        Arc::new(SystemClock::new()),
    )
    .expect("fresh moderator");
    let mgr = auth.login("mgr", "pw").unwrap();
    let id = cards.submit(rae, 7.5).unwrap();
    match cards.approve(rae, id) {
        Err(e) => println!("rae self-approves: {e}"),
        Ok(()) => unreachable!("role gate must veto"),
    }
    cards.approve(mgr, id).unwrap();
    println!("rae's approved hours: {}", cards.approved_hours("rae"));

    // The audit concern collected everything, per service, untouched by
    // any functional code.
    println!("\nreservation audit:");
    for r in seats.audit().records() {
        println!(
            "  #{} {} {:?} by {:?} -> {:?}",
            r.seq, r.method, r.phase, r.principal, r.outcome
        );
    }
    println!("timecard audit:");
    for r in cards.audit().records() {
        println!(
            "  #{} {} {:?} by {:?} -> {:?}",
            r.seq, r.method, r.phase, r.principal, r.outcome
        );
    }
}

//! The paper's Section 5.3 demo: a running, *open* system acquires an
//! authentication concern live — zero functional-code changes — and
//! later sheds it again.
//!
//! ```text
//! cargo run --example adaptability
//! ```

use std::sync::Arc;

use aspect_moderator::aspects::auth::{AuthToken, Authenticator};
use aspect_moderator::core::{AspectModerator, Concern, MethodId};
use aspect_moderator::ticketing::{ExtendedTicketServerProxy, Ticket, TicketServerProxy};

fn main() {
    // Phase 1: the base system, serving anonymous traffic.
    let base = TicketServerProxy::new(8, AspectModerator::shared()).expect("fresh moderator");
    base.open(Ticket::new(1, "pre-upgrade ticket")).unwrap();
    println!(
        "phase 1 (open system): anonymous open OK, {} waiting",
        base.len()
    );

    // Phase 2: new requirement — authentication. Upgrade the LIVE proxy:
    // two registrations, no functional-code edits, in-flight state kept.
    let auth = Authenticator::shared();
    auth.add_user("ops", "hunter2");
    let secured = ExtendedTicketServerProxy::upgrade(base, Arc::clone(&auth))
        .expect("authentication cells were free");
    println!("phase 2: authentication registered on open+assign");

    match secured.open(AuthToken(0), Ticket::new(2, "anonymous attempt")) {
        Err(e) => println!("  anonymous open now fails: {e}"),
        Ok(()) => unreachable!("must be vetoed"),
    }
    let token = auth.login("ops", "hunter2").unwrap();
    secured
        .open(token, Ticket::new(3, "authenticated ticket"))
        .unwrap();
    let first = secured.assign(token).unwrap();
    println!("  authenticated traffic flows; pre-upgrade state intact: got {first}");

    // Phase 3: requirement retired — deregister the concern, system is
    // open again. (A framework extension beyond the paper.)
    let moderator = Arc::clone(secured.base().moderator());
    for name in ["open", "assign"] {
        let handle = moderator.method(&MethodId::new(name)).unwrap();
        moderator
            .deregister(&handle, &Concern::authentication())
            .unwrap();
    }
    println!("phase 3: authentication deregistered");
    secured
        .open(AuthToken(0), Ticket::new(4, "anonymous again"))
        .unwrap();
    println!(
        "  anonymous open OK again; bank rows: open={:?}",
        moderator.concerns(&moderator.method(&MethodId::new("open")).unwrap())
    );
}

//! Formal verification of an aspect composition: exhaustively exploring
//! every interleaving of the moderation protocol for the paper's
//! producer/consumer system, and exhibiting the composition anomaly the
//! rollback extension fixes.
//!
//! ```text
//! cargo run --example verify_composition
//! ```

use aspect_moderator::verify::{aspects, Checker, ModelSystem, Outcome};

#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Buf {
    reserved: usize,
    produced: usize,
    producing: bool,
    consuming: bool,
}

fn main() {
    // 1. Verify the trouble-ticketing synchronization for capacity 1–2,
    //    two producers and two consumers.
    for capacity in [1usize, 2] {
        let mut sys = ModelSystem::new();
        let put = sys.method("open");
        let take = sys.method("assign");
        sys.add_aspect(
            put,
            "sync",
            aspects::buffer_producer(
                capacity,
                |s: &mut Buf| &mut s.reserved,
                |s: &mut Buf| &mut s.produced,
                |s: &mut Buf| &mut s.producing,
            ),
        );
        sys.add_aspect(
            take,
            "sync",
            aspects::buffer_consumer(
                |s: &mut Buf| &mut s.reserved,
                |s: &mut Buf| &mut s.produced,
                |s: &mut Buf| &mut s.consuming,
            ),
        );
        let result = Checker::new(sys)
            .thread(vec![put, put])
            .thread(vec![put, put])
            .thread(vec![take, take])
            .thread(vec![take, take])
            .invariant(move |s: &Buf| s.reserved <= capacity && s.produced <= s.reserved)
            .run(Buf::default());
        println!(
            "bounded buffer, capacity {capacity}: {:?} \
             ({} states, {} distinct terminal states)",
            result.outcome, result.states, result.terminals
        );
        assert_eq!(result.outcome, Outcome::Ok);
    }

    // 2. The composition anomaly (experiment E7) as a machine-checked
    //    counterexample.
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct S {
        pool_busy: bool,
        gate_open: bool,
    }
    let build = |rollback: bool| {
        let mut sys = ModelSystem::<S>::new();
        let a = sys.method("a");
        let b = sys.method("b");
        sys.add_aspect(a, "gate", aspects::guard(|s: &S| s.gate_open));
        for m in [a, b] {
            sys.add_aspect(
                m,
                "pool",
                aspects::reserve(
                    |s: &S| !s.pool_busy,
                    |s: &mut S| s.pool_busy = true,
                    |s: &mut S| s.pool_busy = false,
                ),
            );
        }
        sys.set_body(b, |s: &mut S| s.gate_open = true);
        let sys = sys.rollback(rollback);
        Checker::new(sys).thread(vec![a]).thread(vec![b])
    };

    let with = build(true).run(S::default());
    println!(
        "\nwith rollback:    {:?} ({} states)",
        with.outcome, with.states
    );

    let without = build(false).run(S::default());
    match &without.outcome {
        Outcome::Deadlock(trace) => {
            println!(
                "without rollback: DEADLOCK ({} states). Counterexample:",
                without.states
            );
            for step in trace {
                println!("  {step}");
            }
        }
        other => println!("without rollback: {other:?}"),
    }
}

//! The paper's trouble-ticketing system end-to-end: clients open
//! tickets, agents assign them, and the bounded-buffer synchronization
//! lives entirely in aspects. Prints the protocol trace of the first
//! invocation so you can compare it with Figure 3 of the paper.
//!
//! ```text
//! cargo run --example ticketing
//! ```

use std::sync::Arc;
use std::thread;

use aspect_moderator::core::trace::MemoryTrace;
use aspect_moderator::core::AspectModerator;
use aspect_moderator::ticketing::{Severity, Ticket, TicketServerProxy};

fn main() {
    let trace = MemoryTrace::shared();
    let moderator = Arc::new(AspectModerator::builder().trace(trace.clone()).build());
    let proxy = Arc::new(TicketServerProxy::new(4, moderator).expect("fresh moderator"));

    println!("— initialization trace (paper Figure 2) —");
    for line in trace.compact() {
        println!("  {line}");
    }
    trace.clear();

    // Three client threads open tickets; two agent threads assign them.
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let proxy = Arc::clone(&proxy);
            thread::spawn(move || {
                for i in 0..4u64 {
                    let severity = if i % 3 == 0 {
                        Severity::High
                    } else {
                        Severity::Medium
                    };
                    let ticket = Ticket::new(c * 100 + i, format!("issue {i} from client {c}"))
                        .with_severity(severity)
                        .with_reporter(format!("client-{c}"));
                    proxy.open(ticket).expect("base system never aborts");
                }
            })
        })
        .collect();

    let agents: Vec<_> = (0..2)
        .map(|a| {
            let proxy = Arc::clone(&proxy);
            thread::spawn(move || {
                let mut handled = Vec::new();
                for _ in 0..6 {
                    let t = proxy.assign().expect("base system never aborts");
                    handled.push(t);
                }
                (a, handled)
            })
        })
        .collect();

    for c in clients {
        c.join().unwrap();
    }
    let mut total = 0;
    for agent in agents {
        let (a, handled) = agent.join().unwrap();
        println!("agent {a} handled {} tickets:", handled.len());
        for t in &handled {
            println!("  {t}");
        }
        total += handled.len();
    }

    let (opened, assigned) = proxy.totals();
    let stats = proxy.moderator().stats();
    println!("\ntotals: opened={opened} assigned={assigned} (agents saw {total})");
    println!(
        "contention: {} blocks, {} wakeups, {} notifications",
        stats.blocks, stats.wakeups, stats.notifications
    );
    println!("\n— first invocation trace (paper Figure 3) —");
    let first_inv = trace.events().first().map(|e| e.invocation).unwrap();
    for e in trace.events_for(first_inv) {
        println!("  {e}");
    }
    assert_eq!(opened, 12);
    assert_eq!(assigned, 12);
}

//! Quickstart: separate a concurrency constraint from a functional
//! component in ~30 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use aspect_moderator::core::{AspectModerator, Concern, FnAspect, MethodId, Moderated, Verdict};

fn main() {
    // 1. The functional component: plain, sequential, oblivious.
    let inventory: Vec<&str> = Vec::new();

    // 2. A moderator and a participating method.
    let moderator = AspectModerator::shared();
    let stock = moderator.declare_method(MethodId::new("stock"));

    // 3. The concern, as a first-class aspect: at most 3 items may ever
    //    be stocked. Note the functional component knows nothing of it.
    moderator
        .register(
            &stock,
            Concern::new("shelf-limit"),
            Box::new(FnAspect::new("at-most-3").on_precondition({
                let mut stocked = 0;
                move |_ctx| {
                    if stocked < 3 {
                        stocked += 1;
                        Verdict::Resume
                    } else {
                        Verdict::abort("shelf is full")
                    }
                }
            })),
        )
        .expect("fresh moderator");

    // 4. The proxy guards every participating invocation.
    let shelf = Moderated::new(inventory, Arc::clone(&moderator));

    for item in ["apples", "pears", "plums", "grapes"] {
        match shelf.invoke(&stock, |inv| inv.push(item)) {
            Ok(()) => println!("stocked {item}"),
            Err(veto) => println!("rejected {item}: {veto}"),
        }
    }

    println!("final shelf: {:?}", shelf.with_component(|inv| inv.clone()));
    let stats = moderator.stats();
    println!(
        "moderator: {} activations, {} resumed, {} aborted",
        stats.preactivations, stats.resumes, stats.aborts
    );
    assert_eq!(shelf.with_component(|inv| inv.len()), 3);
}

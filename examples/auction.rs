//! Online auction (one of the paper's motivating e-commerce systems):
//! authentication, role authorization, mutual exclusion, audit and
//! metrics all composed onto a sequential auction book.
//!
//! ```text
//! cargo run --example auction
//! ```

use std::sync::Arc;
use std::thread;

use aspect_moderator::aspects::auth::{Authenticator, Role};
use aspect_moderator::core::AspectModerator;
use aspect_moderator::scenarios::AuctionService;

fn main() {
    let auth = Authenticator::shared();
    auth.add_user("sam-the-seller", "pw");
    auth.grant_role("sam-the-seller", Role::new("seller"))
        .unwrap();
    for bidder in ["bea", "bob", "bel"] {
        auth.add_user(bidder, "pw");
        auth.grant_role(bidder, Role::new("bidder")).unwrap();
    }

    let svc = Arc::new(
        AuctionService::new(AspectModerator::shared(), Arc::clone(&auth)).expect("fresh moderator"),
    );

    let sam = auth.login("sam-the-seller", "pw").unwrap();
    let lot = svc.list(sam, 100).expect("seller may list");
    println!("sam listed lot #{lot} with reserve 100");

    // Bidders race; the exclusion aspect serializes the book.
    let bidders: Vec<_> = ["bea", "bob", "bel"]
        .into_iter()
        .map(|name| {
            let svc = Arc::clone(&svc);
            let token = auth.login(name, "pw").unwrap();
            thread::spawn(move || {
                let mut won = 0;
                for step in 1..=5u64 {
                    let amount = 100 + step * 10 + u64::from(name.len() as u32);
                    match svc.bid(token, lot, amount) {
                        Ok(()) => {
                            won += 1;
                            println!("{name} bid {amount}: accepted");
                        }
                        Err(e) => println!("{name} bid {amount}: {e}"),
                    }
                }
                won
            })
        })
        .collect();
    for b in bidders {
        b.join().unwrap();
    }

    // A bidder cannot close; the seller can.
    let bea = auth.login("bea", "pw").unwrap();
    println!("bea tries to close: {}", svc.close(bea, lot).unwrap_err());
    match svc.close(sam, lot).expect("seller may close") {
        Some((winner, amount)) => println!("lot #{lot} sold to {winner} for {amount}"),
        None => println!("lot #{lot} closed without meeting reserve"),
    }

    // The crosscutting concerns did their work without the book knowing:
    let m = svc.metrics().method("bid").expect("bids were measured");
    println!(
        "\nmetrics: {} bids, {} rejected by the book, p50 {:?}",
        m.invocations,
        m.failures,
        m.latency.quantile(0.5)
    );
    println!("audit trail ({} records):", svc.audit().len());
    for r in svc.audit().records().iter().take(6) {
        println!(
            "  #{} {} {:?} by {:?} -> {:?}",
            r.seq, r.method, r.phase, r.principal, r.outcome
        );
    }
}

//! Facade crate for the **Aspect Moderator framework** workspace, a Rust
//! reproduction of *Composing Concerns with a Framework Approach*
//! (Constantinides & Elrad, ICDCS 2001).
//!
//! Re-exports every workspace crate under one root so the examples and
//! integration tests can say `use aspect_moderator::core::...`:
//!
//! | Module | Crate | What |
//! |---|---|---|
//! | [`core`] | `amf-core` | the framework: aspects, bank, factory, moderator, proxy |
//! | [`concurrency`] | `amf-concurrency` | monitors, wait queues, pools, clocks |
//! | [`aspects`] | `amf-aspects` | the reusable concern library |
//! | [`ticketing`] | `amf-ticketing` | the paper's trouble-ticketing system |
//! | [`scenarios`] | `amf-scenarios` | auction, reservation, timecard, checkout |
//! | [`baseline`] | `amf-baseline` | hand-tangled comparators |
//! | [`verify`] | `amf-verify` | exhaustive model checker for compositions |
//! | [`sim`] | `amf-sim` | deterministic virtual-clock simulator engine |
//!
//! ```
//! use aspect_moderator::core::{AspectModerator, Concern, MethodId, NoopAspect};
//!
//! let moderator = AspectModerator::builder().build();
//! let open = moderator.declare_method(MethodId::new("open"));
//! moderator
//!     .register(&open, Concern::synchronization(), Box::new(NoopAspect))
//!     .unwrap();
//! assert_eq!(moderator.concerns(&open).len(), 1);
//! ```
//!
//! Start with the examples (`cargo run --example quickstart`), the
//! narrative aspect-author guide at [`core::guide`], and the paper map
//! in `DESIGN.md`.

pub use amf_aspects as aspects;
pub use amf_baseline as baseline;
pub use amf_concurrency as concurrency;
pub use amf_core as core;
pub use amf_scenarios as scenarios;
pub use amf_sim as sim;
pub use amf_ticketing as ticketing;
pub use amf_verify as verify;

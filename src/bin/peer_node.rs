//! One lease-handoff ring node as a real OS process.
//!
//! Wraps [`amf_service::PeerNode`] in a line-oriented harness protocol
//! so a parent (the multi-process topology test, or a human with three
//! terminals) can wire a ring, watch it run, and kill members at will:
//!
//! 1. On start the node binds `--listen` and prints `READY <addr>`.
//! 2. It then reads ONE line from stdin: the successor's address
//!    (possibly another node's `READY` address), and wires the link.
//! 3. Every ~20 ms it prints a `STATS key=value ...` line with the
//!    full [`amf_service::PeerStats`] counter set plus the retired
//!    lease ids.
//! 4. stdin EOF requests a clean shutdown (final `STATS` line, exit
//!    0); `kill -9` is the other, considerably less polite, exit path
//!    the ring is designed to survive.
//!
//! ```text
//! peer_node --node 0 --listen 127.0.0.1:0 --seed-leases 1 --visits 12 \
//!           --expiry-ms 150 --visit-delay-ms 50
//! ```

use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amf_core::LeaseConfig;
use amf_service::{PeerConfig, PeerNode};

struct Args {
    node: u64,
    listen: String,
    seed_leases: u64,
    visits: u64,
    expiry_ms: u64,
    visit_delay_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        node: 0,
        listen: "127.0.0.1:0".to_string(),
        seed_leases: 0,
        visits: 0,
        expiry_ms: 150,
        visit_delay_ms: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        let parse = |name: &str, v: String| v.parse::<u64>().map_err(|e| format!("{name}: {e}"));
        match flag.as_str() {
            "--node" => args.node = parse("--node", value("--node")?)?,
            "--listen" => args.listen = value("--listen")?,
            "--seed-leases" => args.seed_leases = parse("--seed-leases", value("--seed-leases")?)?,
            "--visits" => args.visits = parse("--visits", value("--visits")?)?,
            "--expiry-ms" => args.expiry_ms = parse("--expiry-ms", value("--expiry-ms")?)?,
            "--visit-delay-ms" => {
                args.visit_delay_ms = parse("--visit-delay-ms", value("--visit-delay-ms")?)?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: peer_node [--node N] [--listen ADDR] [--seed-leases N] \
                            [--visits N] [--expiry-ms N] [--visit-delay-ms N]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.expiry_ms == 0 {
        return Err("--expiry-ms must be positive (a live link needs recovery)".to_string());
    }
    Ok(args)
}

fn print_stats(node: &PeerNode) {
    let s = node.stats();
    let retired: Vec<String> = node.retired().iter().map(u64::to_string).collect();
    println!(
        "STATS delivered={} retired={} reclaimed={} retransmits={} dup_dropped={} \
         stale_dropped={} degraded_entries={} rejoins={} degraded_now={} \
         fast_path_admits={} fast_path_fallbacks={} retired_ids={}",
        s.delivered,
        s.retired,
        s.reclaimed,
        s.retransmits,
        s.dup_dropped,
        s.stale_dropped,
        s.degraded_entries,
        s.rejoins,
        s.degraded_now,
        s.fast_path_admits,
        s.fast_path_fallbacks,
        retired.join(","),
    );
    let _ = std::io::stdout().flush();
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let node = match PeerNode::spawn(PeerConfig {
        node: args.node,
        listen: args.listen.clone(),
        seed_leases: args.seed_leases,
        visits: args.visits,
        lease: LeaseConfig {
            expiry: Duration::from_millis(args.expiry_ms),
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(40),
            jitter_seed: 7 + args.node,
        },
        visit_delay: Duration::from_millis(args.visit_delay_ms),
        ..PeerConfig::default()
    }) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("peer_node: spawn failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("READY {}", node.addr());
    let _ = std::io::stdout().flush();

    // First stdin line names the successor; EOF afterwards means "shut
    // down cleanly". A dedicated reader thread keeps the stats loop
    // free to tick.
    let stop = Arc::new(AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        let node_addr = node.addr();
        let next = {
            let mut line = String::new();
            if std::io::stdin().lock().read_line(&mut line).is_err() || line.trim().is_empty() {
                eprintln!("peer_node: no successor address on stdin");
                return ExitCode::FAILURE;
            }
            line.trim().to_string()
        };
        node.set_next(&next);
        eprintln!("peer_node {}: {} -> {}", args.node, node_addr, next);
        std::thread::spawn(move || {
            for line in std::io::stdin().lock().lines() {
                if line.is_err() {
                    break;
                }
            }
            stop.store(true, Ordering::SeqCst);
        });
    }

    while !stop.load(Ordering::SeqCst) {
        print_stats(&node);
        std::thread::sleep(Duration::from_millis(20));
    }
    print_stats(&node);
    drop(node);
    ExitCode::SUCCESS
}

//! Load generator for the networked ticket service.
//!
//! Spawns a local service (unless `--addr` points at a running one),
//! drives it with `--clients` concurrent connections issuing
//! `--requests` total operations (alternating `open`/`assign`), and
//! writes a JSON throughput/latency report to `BENCH_service.json`.
//! The report also carries a `wire_topology` section: a live 3-node
//! lease-handoff ring over loopback TCP run at 0‰ / 10‰ / 100‰
//! grant-plane faults, recording goodput, recovery work, and the
//! handoff recovery-latency digest. A `connection_scaling` section
//! (experiment E17) compares the threaded and task fronts: idle
//! connections held live at once, the fleet's resident-memory cost,
//! and request p99 under a modest load.
//!
//! ```text
//! cargo run --release --bin loadgen -- --clients 8 --requests 10000
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use amf_bench::experiments::{
    conn_scaling_meets, run_connection_scaling, run_wire_ring, ConnScaling,
};
use amf_bench::report::{fmt_ns, fmt_ops, JsonObject, JsonValue, LatencySummary};
use amf_service::{run_load, LoadConfig, ServiceConfig, ServiceFront, TicketService};

const REPORT_PATH: &str = "BENCH_service.json";

struct Args {
    clients: usize,
    requests: u64,
    addr: Option<SocketAddr>,
    report: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 8,
        requests: 10_000,
        addr: None,
        report: REPORT_PATH.to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--addr" => {
                args.addr = Some(
                    value("--addr")?
                        .parse()
                        .map_err(|e| format!("--addr: {e}"))?,
                );
            }
            "--report" => args.report = value("--report")?,
            "--help" | "-h" => {
                return Err(
                    "usage: loadgen [--clients N] [--requests N] [--addr HOST:PORT] [--report FILE]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be positive".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Either target a running server or spawn one locally. The local
    // server gets enough workers for every client connection.
    let mut local = None;
    let addr = match args.addr {
        Some(addr) => addr,
        None => {
            let config = ServiceConfig {
                workers: args.clients.max(4) + 2,
                ..ServiceConfig::default()
            };
            let handle = match TicketService::spawn("127.0.0.1:0", config) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("failed to spawn local service: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = handle.addr();
            local = Some(handle);
            addr
        }
    };

    let token = match &local {
        Some(handle) => {
            handle.authenticator().add_user("loadgen", "loadgen");
            match handle.authenticator().login("loadgen", "loadgen") {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("login failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            eprintln!("--addr mode requires a token minted on the server; not supported yet");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "loadgen: {} clients x {} total requests against {addr}",
        args.clients, args.requests
    );
    let outcome = match run_load(&LoadConfig {
        clients: args.clients,
        requests: args.requests,
        addr,
        token,
    }) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut open = outcome.open_latencies_ns.clone();
    let mut assign = outcome.assign_latencies_ns.clone();
    let mut all = outcome.open_latencies_ns.clone();
    all.extend_from_slice(&outcome.assign_latencies_ns);
    let open_summary = LatencySummary::from_unsorted(&mut open);
    let assign_summary = LatencySummary::from_unsorted(&mut assign);
    let overall = LatencySummary::from_unsorted(&mut all);

    // Server-side counters (the full `StatsReply`), fetched before the
    // local server is torn down.
    let server_stats = local.as_ref().map(|handle| handle.stats());

    let mut report = JsonObject::new()
        .field("benchmark", "service_loadgen")
        .field("clients", args.clients)
        .field("requests", outcome.total())
        .field("ok", outcome.ok)
        .field("blocked", outcome.blocked)
        .field("aborted", outcome.aborted)
        .field("elapsed_ms", outcome.elapsed.as_secs_f64() * 1e3)
        .field("throughput_ops_per_sec", outcome.throughput())
        .field("open", open_summary.to_json())
        .field("assign", assign_summary.to_json())
        .field("overall", overall.to_json());
    if let Some(s) = &server_stats {
        report = report.field(
            "server_stats",
            JsonObject::new()
                .field("opened", s.opened)
                .field("assigned", s.assigned)
                .field("queued", s.queued)
                .field("aborts", s.aborts)
                .field("timeouts", s.timeouts)
                .field("max_queue_depth", s.max_queue_depth)
                .field("panics_caught", s.panics_caught)
                .field("batched_grants", s.batched_grants)
                .field("fast_path_admits", s.fast_path_admits)
                .field("fast_path_fallbacks", s.fast_path_fallbacks)
                .field("open_connections", s.open_connections)
                .field("tasks_parked", s.tasks_parked)
                .build(),
        );
    }

    // Wire-topology battery: the recovery state machine on real
    // loopback sockets at increasing fault rates.
    let expiry = Duration::from_millis(150);
    let mut wire = JsonObject::new().field("expiry_ms", 150_u64);
    for faults in [0_u64, 10, 100] {
        let r = run_wire_ring(faults, 2, 6, expiry);
        println!(
            "wire ring @ {faults}‰ faults: {:.0} visits/s, {} retransmits, {} reclaimed, \
             {} dups dropped, recovery p99 {}{}",
            r.goodput,
            r.retransmits,
            r.reclaimed,
            r.dup_dropped,
            fmt_ns(r.recovery.p99_ns as f64),
            if r.complete { "" } else { " [INCOMPLETE]" },
        );
        wire = wire.field(
            &format!("faults_{faults}_permille"),
            JsonObject::new()
                .field("goodput_visits_per_sec", r.goodput)
                .field("retransmits", r.retransmits)
                .field("reclaimed", r.reclaimed)
                .field("dup_dropped", r.dup_dropped)
                .field("recovery", r.recovery.to_json())
                .field("complete", if r.complete { "true" } else { "false" })
                .build(),
        );
    }
    let report = report.field("wire_topology", wire.build());

    // Connection-scaling battery (E17): each front holds a mostly-idle
    // connection fleet (every member proven live by stats round-trips
    // before and after) while a contended 8-client active subset runs.
    // The threaded front gets a pool worker per held connection — its
    // architectural cost — while the task front holds ten times the
    // connections on a fixed 16-worker engine. Task phase first: its
    // larger fleet is measured against a cold allocator, which is the
    // conservative direction for the equal-RSS claim.
    let scaling_requests = 8_000;
    let task = run_connection_scaling(ServiceFront::Task, 16, 2_040, scaling_requests);
    let threaded = run_connection_scaling(ServiceFront::Threaded, 200, 192, scaling_requests);
    for (front, r) in [("task", &task), ("threaded", &threaded)] {
        println!(
            "connection scaling [{front}]: {} conns held live, RSS delta {} KiB, \
             active p99 {} ({})",
            r.sustained,
            r.rss_delta_bytes / 1024,
            fmt_ns(r.p99_ns as f64),
            fmt_ops(r.throughput),
        );
    }
    let (tenfold, equal_rss, p99_no_worse) = conn_scaling_meets(&task, &threaded);
    let front_json = |workers: usize, r: &ConnScaling| -> JsonValue {
        JsonObject::new()
            .field("workers", workers)
            .field("sustained_connections", r.sustained)
            .field("rss_delta_bytes", r.rss_delta_bytes)
            .field("active_p99_ns", r.p99_ns)
            .field("throughput_ops_per_sec", r.throughput)
            .build()
    };
    let report = report.field(
        "connection_scaling",
        JsonObject::new()
            .field("task", front_json(16, &task))
            .field("threaded", front_json(200, &threaded))
            .field(
                "meets",
                JsonObject::new()
                    .field(
                        "tenfold_connections",
                        if tenfold { "true" } else { "false" },
                    )
                    .field("equal_rss", if equal_rss { "true" } else { "false" })
                    .field("p99_no_worse", if p99_no_worse { "true" } else { "false" })
                    .build(),
            )
            .build(),
    );

    let report = report.build();
    if let Err(e) = std::fs::write(&args.report, format!("{report}\n")) {
        eprintln!("failed to write {}: {e}", args.report);
        return ExitCode::FAILURE;
    }

    println!(
        "done: {} ok, {} blocked, {} aborted in {:.1} ms ({})",
        outcome.ok,
        outcome.blocked,
        outcome.aborted,
        outcome.elapsed.as_secs_f64() * 1e3,
        fmt_ops(outcome.throughput()),
    );
    println!(
        "latency p50 {} / p95 {} / p99 {} (report: {})",
        fmt_ns(overall.p50_ns as f64),
        fmt_ns(overall.p95_ns as f64),
        fmt_ns(overall.p99_ns as f64),
        args.report,
    );

    if let Some(s) = &server_stats {
        println!(
            "server stats: opened={} assigned={} queued={} aborts={} timeouts={} \
             max_queue_depth={} panics_caught={} batched_grants={} fast_path_admits={} \
             fast_path_fallbacks={} open_connections={} tasks_parked={}",
            s.opened,
            s.assigned,
            s.queued,
            s.aborts,
            s.timeouts,
            s.max_queue_depth,
            s.panics_caught,
            s.batched_grants,
            s.fast_path_admits,
            s.fast_path_fallbacks,
            s.open_connections,
            s.tasks_parked,
        );
    }

    if let Some(mut handle) = local {
        handle.shutdown();
    }
    ExitCode::SUCCESS
}

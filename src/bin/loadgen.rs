//! Load generator for the networked ticket service.
//!
//! Spawns a local service (unless `--addr` points at a running one),
//! drives it with `--clients` concurrent connections issuing
//! `--requests` total operations (alternating `open`/`assign`), and
//! writes a JSON throughput/latency report to `BENCH_service.json`.
//! The report also carries a `wire_topology` section: a live 3-node
//! lease-handoff ring over loopback TCP run at 0‰ / 10‰ / 100‰
//! grant-plane faults, recording goodput, recovery work, and the
//! handoff recovery-latency digest.
//!
//! ```text
//! cargo run --release --bin loadgen -- --clients 8 --requests 10000
//! ```

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use amf_bench::experiments::run_wire_ring;
use amf_bench::report::{fmt_ns, fmt_ops, JsonObject, LatencySummary};
use amf_service::{run_load, LoadConfig, ServiceConfig, TicketService};

const REPORT_PATH: &str = "BENCH_service.json";

struct Args {
    clients: usize,
    requests: u64,
    addr: Option<SocketAddr>,
    report: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        clients: 8,
        requests: 10_000,
        addr: None,
        report: REPORT_PATH.to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--addr" => {
                args.addr = Some(
                    value("--addr")?
                        .parse()
                        .map_err(|e| format!("--addr: {e}"))?,
                );
            }
            "--report" => args.report = value("--report")?,
            "--help" | "-h" => {
                return Err(
                    "usage: loadgen [--clients N] [--requests N] [--addr HOST:PORT] [--report FILE]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.clients == 0 || args.requests == 0 {
        return Err("--clients and --requests must be positive".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // Either target a running server or spawn one locally. The local
    // server gets enough workers for every client connection.
    let mut local = None;
    let addr = match args.addr {
        Some(addr) => addr,
        None => {
            let config = ServiceConfig {
                workers: args.clients.max(4) + 2,
                ..ServiceConfig::default()
            };
            let handle = match TicketService::spawn("127.0.0.1:0", config) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("failed to spawn local service: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = handle.addr();
            local = Some(handle);
            addr
        }
    };

    let token = match &local {
        Some(handle) => {
            handle.authenticator().add_user("loadgen", "loadgen");
            match handle.authenticator().login("loadgen", "loadgen") {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("login failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            eprintln!("--addr mode requires a token minted on the server; not supported yet");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "loadgen: {} clients x {} total requests against {addr}",
        args.clients, args.requests
    );
    let outcome = match run_load(&LoadConfig {
        clients: args.clients,
        requests: args.requests,
        addr,
        token,
    }) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("load run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut open = outcome.open_latencies_ns.clone();
    let mut assign = outcome.assign_latencies_ns.clone();
    let mut all = outcome.open_latencies_ns.clone();
    all.extend_from_slice(&outcome.assign_latencies_ns);
    let open_summary = LatencySummary::from_unsorted(&mut open);
    let assign_summary = LatencySummary::from_unsorted(&mut assign);
    let overall = LatencySummary::from_unsorted(&mut all);

    // Server-side counters (the full `StatsReply`), fetched before the
    // local server is torn down.
    let server_stats = local.as_ref().map(|handle| handle.stats());

    let mut report = JsonObject::new()
        .field("benchmark", "service_loadgen")
        .field("clients", args.clients)
        .field("requests", outcome.total())
        .field("ok", outcome.ok)
        .field("blocked", outcome.blocked)
        .field("aborted", outcome.aborted)
        .field("elapsed_ms", outcome.elapsed.as_secs_f64() * 1e3)
        .field("throughput_ops_per_sec", outcome.throughput())
        .field("open", open_summary.to_json())
        .field("assign", assign_summary.to_json())
        .field("overall", overall.to_json());
    if let Some(s) = &server_stats {
        report = report.field(
            "server_stats",
            JsonObject::new()
                .field("opened", s.opened)
                .field("assigned", s.assigned)
                .field("queued", s.queued)
                .field("aborts", s.aborts)
                .field("timeouts", s.timeouts)
                .field("max_queue_depth", s.max_queue_depth)
                .field("panics_caught", s.panics_caught)
                .field("batched_grants", s.batched_grants)
                .field("fast_path_admits", s.fast_path_admits)
                .field("fast_path_fallbacks", s.fast_path_fallbacks)
                .build(),
        );
    }

    // Wire-topology battery: the recovery state machine on real
    // loopback sockets at increasing fault rates.
    let expiry = Duration::from_millis(150);
    let mut wire = JsonObject::new().field("expiry_ms", 150_u64);
    for faults in [0_u64, 10, 100] {
        let r = run_wire_ring(faults, 2, 6, expiry);
        println!(
            "wire ring @ {faults}‰ faults: {:.0} visits/s, {} retransmits, {} reclaimed, \
             {} dups dropped, recovery p99 {}{}",
            r.goodput,
            r.retransmits,
            r.reclaimed,
            r.dup_dropped,
            fmt_ns(r.recovery.p99_ns as f64),
            if r.complete { "" } else { " [INCOMPLETE]" },
        );
        wire = wire.field(
            &format!("faults_{faults}_permille"),
            JsonObject::new()
                .field("goodput_visits_per_sec", r.goodput)
                .field("retransmits", r.retransmits)
                .field("reclaimed", r.reclaimed)
                .field("dup_dropped", r.dup_dropped)
                .field("recovery", r.recovery.to_json())
                .field("complete", if r.complete { "true" } else { "false" })
                .build(),
        );
    }
    let report = report.field("wire_topology", wire.build());

    let report = report.build();
    if let Err(e) = std::fs::write(&args.report, format!("{report}\n")) {
        eprintln!("failed to write {}: {e}", args.report);
        return ExitCode::FAILURE;
    }

    println!(
        "done: {} ok, {} blocked, {} aborted in {:.1} ms ({})",
        outcome.ok,
        outcome.blocked,
        outcome.aborted,
        outcome.elapsed.as_secs_f64() * 1e3,
        fmt_ops(outcome.throughput()),
    );
    println!(
        "latency p50 {} / p95 {} / p99 {} (report: {})",
        fmt_ns(overall.p50_ns as f64),
        fmt_ns(overall.p95_ns as f64),
        fmt_ns(overall.p99_ns as f64),
        args.report,
    );

    if let Some(s) = &server_stats {
        println!(
            "server stats: opened={} assigned={} queued={} aborts={} timeouts={} \
             max_queue_depth={} panics_caught={} batched_grants={} fast_path_admits={} \
             fast_path_fallbacks={}",
            s.opened,
            s.assigned,
            s.queued,
            s.aborts,
            s.timeouts,
            s.max_queue_depth,
            s.panics_caught,
            s.batched_grants,
            s.fast_path_admits,
            s.fast_path_fallbacks,
        );
    }

    if let Some(mut handle) = local {
        handle.shutdown();
    }
    ExitCode::SUCCESS
}

//! Randomized fast/slow admission mix against the two-phase lane.
//!
//! Producers and consumers move tokens through a blocking `put`/`take`
//! pair (undeclared aspects — always the locked slow path) while every
//! thread intersperses a seeded-random number of calls to a pure
//! `audit` method whose row declares the full capability contract and
//! therefore rides the CAS fast lane. Runs under both [`WakeMode`]s and
//! asserts the conservation laws the lane must not bend: every
//! activation departs, post-activations balance resumes, and at least
//! one invocation actually took the fast path. A second phase arms a
//! one-shot panic bomb on the audit row and checks that the contained
//! panic is counted exactly once, revokes the row's eligibility, and
//! stops fast admissions for good while the method keeps working via
//! the locked path.
//!
//! Set `AMF_FAST_PATH_SEED` to replay a particular mix; the default
//! below is what CI pins.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::thread;
use std::time::Duration;

use aspect_moderator::core::{
    AspectCapabilities, AspectModerator, Concern, FnAspect, InvocationContext, MethodHandle,
    MethodId, PanicPolicy, Verdict, WakeMode,
};
use aspect_moderator::verify::seed_from_env;

const WATCHDOG: Duration = Duration::from_secs(120);
const DEFAULT_SEED: u64 = 0xFA57_1A4E;

/// Contained panics still run the panic hook; silence it for this
/// binary so the bomb's unwind does not pollute the test log.
fn silence_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

/// Runs `f` on its own thread and fails the test if it does not finish
/// within [`WATCHDOG`] — a lane that swallowed a wakeup shows up here.
fn bounded<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("{label}: lost wakeup suspected (no completion in time)"));
    handle.join().unwrap();
    out
}

/// SplitMix64: tiny deterministic generator so the mix replays exactly
/// from one seed without reaching for the rand shim.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One full protocol round trip on `method`.
fn invoke(moderator: &AspectModerator, method: &MethodHandle) {
    let mut ctx = InvocationContext::new(method.id().clone(), moderator.next_invocation());
    moderator.preactivation(method, &mut ctx).unwrap();
    moderator.postactivation(method, &mut ctx);
}

/// Builds the mixed system: a blocking token buffer (`put` wakes
/// `take`) on the slow path and a declared-pure `audit` row on the
/// fast lane.
fn mixed_system(
    wake_mode: WakeMode,
) -> (
    Arc<AspectModerator>,
    MethodHandle,
    MethodHandle,
    MethodHandle,
) {
    let moderator = Arc::new(
        AspectModerator::builder()
            .wake_mode(wake_mode)
            .panic_policy(PanicPolicy::AbortInvocation)
            .build(),
    );
    let put = moderator.declare_method(MethodId::new("put"));
    let take = moderator.declare_method(MethodId::new("take"));
    let audit = moderator.declare_method(MethodId::new("audit"));
    moderator.wire_wakes(&put, std::slice::from_ref(&take));
    moderator.wire_wakes(&take, &[]);
    moderator.wire_wakes(&audit, &[]);

    let tokens = Arc::new(parking_lot::Mutex::new(0u64));
    {
        let tokens = Arc::clone(&tokens);
        // Undeclared (no capability contract): put always takes the
        // locked path and its postaction mints a token.
        moderator
            .register(
                &put,
                Concern::new("mint"),
                Box::new(FnAspect::new("mint").on_postaction(move |_| {
                    *tokens.lock() += 1;
                })),
            )
            .unwrap();
    }
    {
        let tokens = Arc::clone(&tokens);
        moderator
            .register(
                &take,
                Concern::synchronization(),
                Box::new(FnAspect::new("guard").on_precondition(move |_| {
                    let mut t = tokens.lock();
                    if *t > 0 {
                        *t -= 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
    }
    // The audit row declares the full contract, so the bank marks it
    // eligible and invocations ride the single-CAS lane.
    moderator
        .register(
            &audit,
            Concern::new("audit"),
            Box::new(
                FnAspect::new("pure-audit")
                    .on_precondition(|_| Verdict::Resume)
                    .declare_capabilities(AspectCapabilities::all()),
            ),
        )
        .unwrap();
    (moderator, put, take, audit)
}

/// Phase 1: a seeded storm of puts/takes with random audit calls mixed
/// in on every thread. Phase 2: a one-shot contained panic on the
/// audit row must be counted exactly once and permanently close the
/// lane.
fn mixed_storm(wake_mode: WakeMode) {
    silence_panic_hook();
    let per: u64 = 300;
    let workers = 4;
    let seed = seed_from_env("AMF_FAST_PATH_SEED", DEFAULT_SEED);

    let (moderator, put, take, audit) = mixed_system(wake_mode);
    let audits = bounded("fast/slow mixed storm", {
        let moderator = Arc::clone(&moderator);
        let (put, take, audit) = (put.clone(), take.clone(), audit.clone());
        move || {
            thread::scope(|s| {
                let mut handles = Vec::new();
                for w in 0..workers * 2 {
                    let moderator = Arc::clone(&moderator);
                    let slow = if w < workers {
                        put.clone()
                    } else {
                        take.clone()
                    };
                    let audit = audit.clone();
                    handles.push(s.spawn(move || {
                        let mut rng = SplitMix(seed.wrapping_add(w));
                        let mut audits = 0u64;
                        for _ in 0..per {
                            // 0–3 fast-lane calls between each slow op.
                            for _ in 0..rng.next() % 4 {
                                invoke(&moderator, &audit);
                                audits += 1;
                            }
                            invoke(&moderator, &slow);
                        }
                        audits
                    }));
                }
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
        }
    });

    let s = moderator.stats();
    // Activations == departures: every preactivation terminated and
    // every resume was balanced by a postactivation.
    assert_eq!(s.preactivations, s.resumes + s.aborts + s.timeouts, "{s:?}");
    assert_eq!(s.postactivations, s.resumes, "{s:?}");
    assert_eq!(s.aborts, 0, "{s:?}");
    assert_eq!(s.preactivations, workers * 2 * per + audits, "{s:?}");
    // The declared row really used the lane, and only that row could
    // have: fast admits never exceed the audit call count.
    assert!(s.fast_path_admits > 0, "lane never admitted: {s:?}");
    assert!(s.fast_path_admits <= audits, "{s:?}");
    assert_eq!(s.panics_caught, 0, "{s:?}");

    // Phase 2: arm a one-shot bomb that *declares* the contract and
    // then breaks it. A fast admission skips the chain by design, so
    // the lie can only be observed when the chain actually runs: wire
    // the audit row to a non-empty wake set, which closes the lane
    // (eligibility untouched) and routes the next call through the
    // locked path, where the bomb fires and `note_panic` revokes the
    // contract.
    let armed = Arc::new(AtomicBool::new(true));
    let bomb = {
        let armed = Arc::clone(&armed);
        FnAspect::new("bomb")
            .on_precondition(move |_| {
                if armed.swap(false, Ordering::SeqCst) {
                    panic!("injected fast-lane panic");
                }
                Verdict::Resume
            })
            .declare_capabilities(AspectCapabilities::all())
    };
    moderator
        .register(&audit, Concern::new("bomb"), Box::new(bomb))
        .unwrap();
    moderator.wire_wakes(&audit, std::slice::from_ref(&take));

    let mut ctx = InvocationContext::new(audit.id().clone(), moderator.next_invocation());
    let err = moderator.preactivation(&audit, &mut ctx).unwrap_err();
    assert!(err.is_panic(), "{err}");
    assert!(!armed.load(Ordering::SeqCst), "the bomb must have fired");

    let after_panic = moderator.stats();
    assert_eq!(after_panic.panics_caught, 1, "{after_panic:?}");
    let admits_at_close = after_panic.fast_path_admits;

    // Restore the empty wiring. Without the panic this would reopen
    // the lane (`refresh_lane` would find the row eligible again); the
    // revocation — which survives wiring changes, only a weave
    // recomputes it — must keep the lane closed.
    moderator.wire_wakes(&audit, &[]);

    // The revocation holds: later audits succeed on the locked path
    // and the admit counter never moves again.
    for _ in 0..50 {
        invoke(&moderator, &audit);
    }
    let end = moderator.stats();
    assert_eq!(
        end.fast_path_admits, admits_at_close,
        "lane must stay closed after a contained panic: {end:?}"
    );
    assert_eq!(end.panics_caught, 1, "exact panic accounting: {end:?}");
    assert_eq!(
        end.preactivations,
        end.resumes + end.aborts + end.timeouts,
        "{end:?}"
    );
    assert_eq!(end.postactivations, end.resumes, "{end:?}");
    assert_eq!(end.aborts, 1, "only the bomb aborted: {end:?}");
}

#[test]
fn mixed_fast_slow_storm_notify_all() {
    mixed_storm(WakeMode::NotifyAll);
}

#[test]
fn mixed_fast_slow_storm_notify_one() {
    mixed_storm(WakeMode::NotifyOne);
}

//! Property-based tests over the aspect library's coordination state
//! machines: arbitrary admissible schedules never violate the
//! invariants each aspect promises.

use std::sync::Arc;

use aspect_moderator::aspects::coordination::BarrierAspect;
use aspect_moderator::aspects::sched::{AdmissionGroup, Priority};
use aspect_moderator::aspects::sync::ConcurrencyLimitGroup;
use aspect_moderator::concurrency::{ResourcePool, SchedulerPolicy};
use aspect_moderator::core::{Aspect, InvocationContext, MethodId};
use proptest::prelude::*;

fn ctx(invocation: u64) -> InvocationContext {
    InvocationContext::new(MethodId::new("m"), invocation)
}

proptest! {
    /// Under any admissible schedule, the number of in-flight
    /// activations never exceeds the concurrency limit and returns to
    /// zero once everything completes.
    #[test]
    fn concurrency_limit_never_oversubscribes(
        limit in 1..5usize,
        script in proptest::collection::vec(any::<bool>(), 1..200)
    ) {
        let group = ConcurrencyLimitGroup::new(limit);
        let mut aspect = group.aspect();
        let mut inflight: Vec<u64> = Vec::new();
        let mut next_inv = 0u64;
        let mut cx = ctx(0);
        for enter in script {
            if enter {
                next_inv += 1;
                if aspect.precondition(&mut cx).is_resume() {
                    inflight.push(next_inv);
                }
            } else if !inflight.is_empty() {
                inflight.pop();
                aspect.postaction(&mut cx);
            }
            prop_assert!(group.running() <= limit);
            prop_assert_eq!(group.running(), inflight.len());
        }
        while inflight.pop().is_some() {
            aspect.postaction(&mut cx);
        }
        prop_assert_eq!(group.running(), 0);
    }

    /// A barrier of cohort k releases activations in exact multiples of
    /// k, regardless of arrival order or interleaved cancellations.
    #[test]
    fn barrier_releases_in_cohorts(
        k in 1..5usize,
        arrivals in 1..60u64,
        cancels in proptest::collection::vec(any::<bool>(), 0..60)
    ) {
        let mut barrier = BarrierAspect::new(k);
        let mut released = 0u64;
        let mut waiting: Vec<u64> = Vec::new();
        for inv in 1..=arrivals {
            let mut cx = ctx(inv);
            if barrier.precondition(&mut cx).is_resume() {
                released += 1;
                // Everyone already waiting may now pass (re-evaluation
                // after notify-all).
                waiting.retain(|w| {
                    let mut wcx = ctx(*w);
                    if barrier.precondition(&mut wcx).is_resume() {
                        released += 1;
                        false
                    } else {
                        true
                    }
                });
            } else {
                // Possibly cancel (timeout) per the script.
                let idx = (inv as usize).min(cancels.len().saturating_sub(1));
                if cancels.get(idx).copied().unwrap_or(false) {
                    barrier.on_cancel(&ctx(inv));
                } else {
                    waiting.push(inv);
                }
            }
            prop_assert!(waiting.len() < k, "waiting set must stay below the cohort size");
        }
        prop_assert_eq!(released % k as u64, 0, "releases happen k at a time");
        prop_assert_eq!(barrier.generations(), released / k as u64);
    }

    /// FIFO admission through a capacity-1 gate admits invocations in
    /// exact arrival order, for any interleaving of arrivals and
    /// completions.
    #[test]
    fn admission_fifo_is_exact_arrival_order(
        script in proptest::collection::vec(any::<bool>(), 1..200)
    ) {
        let group = AdmissionGroup::new(1, SchedulerPolicy::Fifo);
        let mut aspect = group.aspect();
        let mut next_inv = 0u64;
        let mut arrived: Vec<u64> = Vec::new();   // arrival order
        let mut admitted: Vec<u64> = Vec::new();  // admission order
        let mut running: Option<u64> = None;
        for arrive in script {
            if arrive {
                next_inv += 1;
                arrived.push(next_inv);
                let mut cx = ctx(next_inv);
                if running.is_none() && aspect.precondition(&mut cx).is_resume() {
                    admitted.push(next_inv);
                    running = Some(next_inv);
                } else {
                    let _ = aspect.precondition(&mut cx); // enroll/block
                }
            } else if let Some(r) = running.take() {
                let mut cx = ctx(r);
                aspect.postaction(&mut cx);
                // Wake-all: every enrolled waiter re-evaluates; the
                // FIFO head is admitted.
                for &w in &arrived {
                    if admitted.contains(&w) {
                        continue;
                    }
                    let mut wcx = ctx(w);
                    if aspect.precondition(&mut wcx).is_resume() {
                        admitted.push(w);
                        running = Some(w);
                        break;
                    }
                }
            }
        }
        prop_assert_eq!(&admitted[..], &arrived[..admitted.len()], "FIFO admission order");
    }

    /// Priority admission admits the highest-priority waiter at each
    /// hand-off.
    #[test]
    fn admission_priority_prefers_high(
        priorities in proptest::collection::vec(0..8u32, 2..12)
    ) {
        let group = AdmissionGroup::new(1, SchedulerPolicy::Priority);
        let mut aspect = group.aspect();
        // First arrival takes the gate.
        let mut cx0 = ctx(1);
        prop_assert!(aspect.precondition(&mut cx0).is_resume());
        // All others enroll while the gate is held.
        let mut waiters: Vec<(u64, u32)> = Vec::new();
        for (i, &p) in priorities.iter().enumerate() {
            let inv = 2 + i as u64;
            let mut cx = ctx(inv);
            cx.insert(Priority(p));
            prop_assert!(aspect.precondition(&mut cx).is_block());
            waiters.push((inv, p));
        }
        // Complete the holder; the next admitted must be a maximal
        // priority among waiters (FIFO among equals -> the earliest).
        aspect.postaction(&mut cx0);
        let max_p = waiters.iter().map(|(_, p)| *p).max().unwrap();
        let expected = waiters.iter().find(|(_, p)| *p == max_p).unwrap().0;
        let mut admitted = None;
        for &(inv, p) in &waiters {
            let mut cx = ctx(inv);
            cx.insert(Priority(p));
            if aspect.precondition(&mut cx).is_resume() {
                admitted = Some(inv);
                break;
            }
        }
        prop_assert_eq!(admitted, Some(expected));
    }

    /// Resource pools conserve resources across arbitrary checkout /
    /// checkin sequences.
    #[test]
    fn resource_pool_conserves(
        size in 1..6usize,
        ops in proptest::collection::vec(any::<bool>(), 1..200)
    ) {
        let pool = Arc::new(ResourcePool::new((0..size as u32).collect::<Vec<_>>()));
        let mut held: Vec<u32> = Vec::new();
        for take in ops {
            if take {
                if let Some(v) = pool.checkout() {
                    prop_assert!(!held.contains(&v), "no resource handed out twice");
                    held.push(v);
                }
            } else if let Some(v) = held.pop() {
                pool.checkin(v);
            }
            prop_assert_eq!(pool.available() + held.len(), size);
        }
    }
}

//! Starvation stress for `FairnessPolicy::Fifo`: a capacity-1 buffer
//! hammered by 8 producers, with 1 late producer arriving mid-storm.
//! Under strict FIFO the late arrival's ticket bounds how many `open`
//! grants can precede its own:
//!
//! * holders of *earlier* tickets — at most one per hammering producer,
//!   so ≤ 8 — may resume before it;
//! * no one else can: a first-pass (`Grant::First`) check and its chain
//!   evaluation happen under one cell-lock hold, so once the late
//!   ticket is in the queue every newcomer queues *behind* it, and a
//!   served producer looping around re-enters at the back.
//!
//! Under `Barging` no such bound exists: a woken waiter races every
//! newcomer for the freed slot, and the scheduler can starve the late
//! arrival indefinitely (ROADMAP's "per-cell wait-queue fairness").
//! That failure is timing-dependent, so it is documented here by a
//! *deterministic* overtake instead: a parked waiter, an unnotified
//! token, and a newcomer that barges past — the exact inversion
//! `Fifo` forbids (and whose `Fifo` half is unit-tested in
//! `amf-core::moderator`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use aspect_moderator::core::trace::EventKind;
use aspect_moderator::core::{
    AspectModerator, Concern, FairnessPolicy, FnAspect, InvocationContext, MemoryTrace, MethodId,
    Verdict, WakeMode,
};

const WATCHDOG: Duration = Duration::from_secs(120);
const PRODUCERS: u64 = 8;
const OPS_PER_PRODUCER: u64 = 150;

fn bounded<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("{label}: lost wakeup suspected (no completion in time)"));
    handle.join().unwrap();
    out
}

/// A capacity-1 buffer as two moderated methods: `open` takes the slot
/// and mints an item; `take` consumes the item and frees the slot.
/// Wakes are wired across the two cells like the paper's pipeline.
struct Buffer {
    moderator: Arc<AspectModerator>,
    trace: Arc<MemoryTrace>,
    open: aspect_moderator::core::MethodHandle,
    take: aspect_moderator::core::MethodHandle,
    slots: Arc<AtomicU64>,
    items: Arc<AtomicU64>,
}

fn buffer(fairness: FairnessPolicy, wake_mode: WakeMode) -> Buffer {
    let slots = Arc::new(AtomicU64::new(1));
    let items = Arc::new(AtomicU64::new(0));
    let trace = MemoryTrace::shared();
    let moderator = Arc::new(
        AspectModerator::builder()
            .fairness(fairness)
            .wake_mode(wake_mode)
            .trace(trace.clone())
            .build(),
    );
    let open = moderator.declare_method(MethodId::new("open"));
    let take = moderator.declare_method(MethodId::new("take"));
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &open,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("slot-gate")
                        .on_precondition(move |_| {
                            if slots.load(Ordering::SeqCst) > 0 {
                                slots.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            items.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .unwrap();
    }
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &take,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("item-gate")
                        .on_precondition(move |_| {
                            if items.load(Ordering::SeqCst) > 0 {
                                items.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            slots.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .unwrap();
    }
    moderator.wire_wakes(&open, std::slice::from_ref(&take));
    moderator.wire_wakes(&take, std::slice::from_ref(&open));
    Buffer {
        moderator,
        trace,
        open,
        take,
        slots,
        items,
    }
}

fn invoke(m: &AspectModerator, h: &aspect_moderator::core::MethodHandle) -> u64 {
    let invocation = m.next_invocation();
    let mut ctx = InvocationContext::new(h.id().clone(), invocation);
    m.preactivation(h, &mut ctx).unwrap();
    m.postactivation(h, &mut ctx);
    invocation
}

/// Grants of `method` that landed strictly between `invocation`'s first
/// park and its own grant — the number of callers served ahead of it
/// after it was ticketed. `None` if the invocation never parked.
fn grants_while_parked(trace: &MemoryTrace, method: &MethodId, invocation: u64) -> Option<usize> {
    let mut parked = false;
    let mut ahead = 0usize;
    for e in trace.events() {
        if e.method != *method {
            continue;
        }
        match e.kind {
            EventKind::WaitStarted if e.invocation == invocation => parked = true,
            EventKind::ActivationResumed if e.invocation == invocation => {
                return parked.then_some(ahead);
            }
            EventKind::ActivationResumed if parked => ahead += 1,
            _ => {}
        }
    }
    panic!("invocation {invocation} never resumed");
}

/// Zero-inversion check reused from the property suite: grant order of
/// parked callers equals park order.
///
/// Under `NotifyOne` the order is exact. Under `NotifyAll` the *grant*
/// is still handed out in ticket order, but a broadcast releases a
/// whole batch of waiters at once, and the racers re-acquiring the cell
/// lock can have their `WaitStarted`/`ActivationResumed` trace events
/// interleave in any order within the batch — so the recorded order may
/// shuffle waiters locally even though none overtook another by more
/// than one batch. Broadcast mode therefore bounds each waiter's
/// displacement from its strict-FIFO slot by the batch size (at most
/// every producer parked at once); anything farther is a real
/// inversion.
fn assert_no_inversions(trace: &MemoryTrace, method: &MethodId, wake_mode: WakeMode) {
    let mut park = Vec::new();
    let mut grant = Vec::new();
    for e in trace.events() {
        if e.method != *method {
            continue;
        }
        match e.kind {
            EventKind::WaitStarted if !park.contains(&e.invocation) => {
                park.push(e.invocation);
            }
            EventKind::ActivationResumed => grant.push(e.invocation),
            _ => {}
        }
    }
    let granted_parked: Vec<u64> = grant.iter().copied().filter(|i| park.contains(i)).collect();
    match wake_mode {
        WakeMode::NotifyOne => {
            assert_eq!(granted_parked, park, "wake-order inversion on {method}");
        }
        WakeMode::NotifyAll => {
            assert_eq!(granted_parked.len(), park.len(), "grant/park mismatch");
            let window = PRODUCERS as usize;
            let slot: std::collections::HashMap<u64, usize> =
                park.iter().enumerate().map(|(i, &inv)| (inv, i)).collect();
            for (i, inv) in granted_parked.iter().enumerate() {
                let j = slot[inv];
                assert!(
                    i.abs_diff(j) <= window,
                    "wake-order inversion beyond one broadcast batch on {method}: \
                     invocation {inv} granted at position {i}, parked at {j} \
                     (window {window})"
                );
            }
        }
    }
}

fn late_arrival_bounded(wake_mode: WakeMode) {
    let (late_inv, buf) = bounded("fifo starvation stress", move || {
        let buf = buffer(FairnessPolicy::Fifo, wake_mode);
        let late_inv = thread::scope(|s| {
            for _ in 0..PRODUCERS {
                let moderator = Arc::clone(&buf.moderator);
                let open = buf.open.clone();
                s.spawn(move || {
                    for _ in 0..OPS_PER_PRODUCER {
                        invoke(&moderator, &open);
                    }
                });
            }
            {
                let moderator = Arc::clone(&buf.moderator);
                let take = buf.take.clone();
                s.spawn(move || {
                    for _ in 0..PRODUCERS * OPS_PER_PRODUCER + 1 {
                        invoke(&moderator, &take);
                    }
                });
            }
            // Arrive once the storm is provably under way.
            while buf.moderator.stats().blocks < 50 {
                thread::yield_now();
            }
            invoke(&buf.moderator, &buf.open)
        });
        (late_inv, buf)
    });

    // `None` means the late producer slipped through a momentarily empty
    // queue — the bound holds trivially, but with 8 producers on a
    // capacity-1 buffer that is rare.
    if let Some(ahead) = grants_while_parked(&buf.trace, buf.open.id(), late_inv) {
        assert!(
            ahead <= PRODUCERS as usize,
            "late producer waited behind {ahead} grants; strict FIFO bounds it by {PRODUCERS}"
        );
    }
    assert_no_inversions(&buf.trace, buf.open.id(), wake_mode);
    assert_no_inversions(&buf.trace, buf.take.id(), wake_mode);

    let s = buf.moderator.stats();
    assert_eq!(s.resumes, 2 * (PRODUCERS * OPS_PER_PRODUCER + 1), "{s:?}");
    assert_eq!(s.tickets_issued, s.tickets_served, "{s:?}");
    assert_eq!(s.timeouts, 0, "{s:?}");
    assert_eq!(
        (
            buf.slots.load(Ordering::SeqCst),
            buf.items.load(Ordering::SeqCst)
        ),
        (1, 0),
        "buffer must be quiescent"
    );
}

#[test]
fn late_producer_served_within_bounded_grants_notify_all() {
    late_arrival_bounded(WakeMode::NotifyAll);
}

#[test]
fn late_producer_served_within_bounded_grants_notify_one() {
    late_arrival_bounded(WakeMode::NotifyOne);
}

/// The deterministic overtake `Barging` admits (and `Fifo` forbids): a
/// waiter parks on `open` with no token; a token is minted *without
/// notifying* `open`'s queue; a newcomer then barges straight past the
/// parked waiter and takes it. This is the unbounded-starvation seed —
/// under load, every freed slot can be claimed by a fresh arrival
/// before a parked waiter reaches it.
#[test]
fn barging_newcomer_overtakes_parked_waiter() {
    bounded("barging overtake demo", || {
        let tokens = Arc::new(AtomicU64::new(0));
        let trace = MemoryTrace::shared();
        let moderator = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Barging)
                .trace(trace.clone())
                .build(),
        );
        let open = moderator.declare_method(MethodId::new("open"));
        let tick = moderator.declare_method(MethodId::new("tick"));
        {
            let tokens = Arc::clone(&tokens);
            moderator
                .register(
                    &open,
                    Concern::synchronization(),
                    Box::new(FnAspect::new("token-gate").on_precondition(move |_| {
                        if tokens.load(Ordering::SeqCst) > 0 {
                            tokens.fetch_sub(1, Ordering::SeqCst);
                            Verdict::Resume
                        } else {
                            Verdict::Block
                        }
                    })),
                )
                .unwrap();
        }
        {
            let tokens = Arc::clone(&tokens);
            moderator
                .register(
                    &tick,
                    Concern::new("mint"),
                    Box::new(FnAspect::new("mint").on_postaction(move |_| {
                        tokens.fetch_add(1, Ordering::SeqCst);
                    })),
                )
                .unwrap();
        }
        // The mint deliberately notifies nobody: the token sits there
        // while the early waiter stays parked.
        moderator.wire_wakes(&tick, &[]);
        moderator.wire_wakes(&open, &[]);

        let early = {
            let moderator = Arc::clone(&moderator);
            let open = open.clone();
            thread::spawn(move || invoke(&moderator, &open))
        };
        while moderator.stats().blocks < 1 {
            thread::yield_now();
        }
        invoke(&moderator, &tick);

        // The newcomer resumes immediately — past the parked waiter.
        let newcomer_inv = invoke(&moderator, &open);
        assert!(!early.is_finished(), "early waiter should still be parked");
        let resumed: Vec<u64> = trace
            .events()
            .into_iter()
            .filter(|e| e.method == *open.id() && matches!(e.kind, EventKind::ActivationResumed))
            .map(|e| e.invocation)
            .collect();
        assert_eq!(resumed, vec![newcomer_inv], "the overtake, in the trace");

        // Rescue the early waiter: wire the mint to open's queue and
        // mint again.
        moderator.wire_wakes(&tick, std::slice::from_ref(&open));
        invoke(&moderator, &tick);
        early.join().unwrap();
        assert_eq!(moderator.stats().resumes, 4);
    });
}

//! Cross-crate composition tests: many concerns on one component, the
//! situations the paper's "composition anomalies" discussion worries
//! about.

use std::sync::Arc;
use std::time::Duration;

use aspect_moderator::aspects::audit::{AuditAspect, AuditLog, AuditPhase};
use aspect_moderator::aspects::auth::{AuthToken, AuthenticationAspect, Authenticator};
use aspect_moderator::aspects::fault::{CircuitBreakerAspect, CircuitState};
use aspect_moderator::aspects::metrics::{MetricsAspect, MetricsHub};
use aspect_moderator::aspects::quota::QuotaAspect;
use aspect_moderator::aspects::sched::{RateLimitAspect, ThrottleMode};
use aspect_moderator::aspects::sync::ExclusionGroup;
use aspect_moderator::concurrency::{ManualClock, RateLimiter, RateLimiterConfig};
use aspect_moderator::core::{
    AspectModerator, Concern, InvocationContext, MethodId, Moderated, Outcome,
};

/// A five-concern stack (sync, audit, metrics, quota, auth) behaves as
/// the intersection of its parts.
#[test]
fn five_concern_stack_end_to_end() {
    let moderator = AspectModerator::shared();
    let op = moderator.declare_method(MethodId::new("op"));

    let auth = Authenticator::shared();
    auth.add_user("alice", "pw");
    let audit = AuditLog::shared();
    let hub = MetricsHub::new();
    let group = ExclusionGroup::new();

    moderator
        .register(&op, Concern::synchronization(), Box::new(group.aspect()))
        .unwrap();
    moderator
        .register(
            &op,
            Concern::audit(),
            Box::new(AuditAspect::new(Arc::clone(&audit))),
        )
        .unwrap();
    moderator
        .register(
            &op,
            Concern::metrics(),
            Box::new(MetricsAspect::new(hub.clone())),
        )
        .unwrap();
    moderator
        .register(&op, Concern::quota(), Box::new(QuotaAspect::new(3)))
        .unwrap();
    moderator
        .register(
            &op,
            Concern::authentication(),
            Box::new(AuthenticationAspect::new(Arc::clone(&auth))),
        )
        .unwrap();

    let proxy = Moderated::new(0_u64, Arc::clone(&moderator));
    let token = auth.login("alice", "pw").unwrap();
    let run = |token: AuthToken| {
        let mut ctx = InvocationContext::new(op.id().clone(), moderator.next_invocation());
        ctx.insert(token);
        proxy.enter_with(&op, ctx).map(|guard| {
            *guard.component() += 1;
            guard.complete();
        })
    };

    // Three quota'd successes...
    for _ in 0..3 {
        run(token).unwrap();
    }
    // ...then the quota vetoes (auth passed, quota aborted).
    let err = run(token).unwrap_err();
    assert_eq!(err.concern().unwrap(), &Concern::quota());
    // Anonymous: authentication vetoes before quota is even consulted.
    let err = run(AuthToken(0)).unwrap_err();
    assert_eq!(err.concern().unwrap(), &Concern::authentication());

    assert_eq!(proxy.with_component(|c| *c), 3);
    assert_eq!(hub.method("op").unwrap().invocations, 3);
    let completed = audit
        .records()
        .iter()
        .filter(|r| r.phase == AuditPhase::Completed)
        .count();
    assert_eq!(completed, 3);
    // Every audited record carries the resolved principal.
    assert!(audit
        .records()
        .iter()
        .all(|r| r.principal.as_deref() == Some("alice")));
}

/// Circuit breaker composes with the proxy's outcome reporting: domain
/// failures trip it, and while open it vetoes without running the body.
#[test]
fn circuit_breaker_composes_with_fallible_invocations() {
    let clock = ManualClock::new();
    let moderator = AspectModerator::shared();
    let op = moderator.declare_method(MethodId::new("flaky"));
    moderator
        .register(
            &op,
            Concern::fault_tolerance(),
            Box::new(CircuitBreakerAspect::with_clock(
                2,
                Duration::from_secs(10),
                Arc::new(clock.clone()),
            )),
        )
        .unwrap();
    let proxy = Moderated::new(0_u32, Arc::clone(&moderator));

    // Two domain failures trip the breaker.
    for _ in 0..2 {
        let r: Result<(), &str> = proxy.invoke_fallible(&op, |_| Err("boom")).unwrap();
        assert!(r.is_err());
    }
    // Open: vetoed, body does not run.
    let attempts = Arc::new(std::sync::atomic::AtomicU32::new(0));
    let a = Arc::clone(&attempts);
    let veto = proxy.invoke(&op, move |_| {
        a.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    });
    assert!(veto.is_err());
    assert_eq!(attempts.load(std::sync::atomic::Ordering::SeqCst), 0);
    assert_eq!(
        veto.unwrap_err().concern().unwrap(),
        &Concern::fault_tolerance()
    );
    // After the cooldown, a successful probe closes it again.
    clock.advance(Duration::from_secs(10));
    let ok: Result<(), &str> = proxy.invoke_fallible(&op, |_| Ok(())).unwrap();
    assert!(ok.is_ok());
    moderator
        .with_aspect(&op, &Concern::fault_tolerance(), |a| {
            // Downcast-free check via describe; state itself verified by
            // behavior below.
            assert_eq!(a.describe(), "circuit breaker");
        })
        .unwrap();
    let ok2: Result<(), &str> = proxy.invoke_fallible(&op, |_| Ok(())).unwrap();
    assert!(ok2.is_ok());
    let _ = CircuitState::Closed; // states exercised behaviorally above
}

/// Rate limiting composes with blocking synchronization: the throttle
/// vetoes while the bucket is empty even though the sync aspect would
/// admit the call.
#[test]
fn throttle_and_exclusion_compose() {
    let clock = ManualClock::new();
    let limiter = Arc::new(RateLimiter::new(
        RateLimiterConfig {
            burst: 2,
            tokens_per_second: 1.0,
        },
        Arc::new(clock.clone()),
    ));
    let moderator = AspectModerator::shared();
    let op = moderator.declare_method(MethodId::new("op"));
    let group = ExclusionGroup::new();
    moderator
        .register(&op, Concern::synchronization(), Box::new(group.aspect()))
        .unwrap();
    moderator
        .register(
            &op,
            Concern::throttling(),
            Box::new(RateLimitAspect::new(limiter, ThrottleMode::Abort)),
        )
        .unwrap();
    let proxy = Moderated::new(0_u32, Arc::clone(&moderator));

    proxy.invoke(&op, |c| *c += 1).unwrap();
    proxy.invoke(&op, |c| *c += 1).unwrap();
    let err = proxy.invoke(&op, |c| *c += 1).unwrap_err();
    assert_eq!(err.concern().unwrap(), &Concern::throttling());
    // The vetoed attempt must not have left the exclusion group busy.
    assert!(!group.is_busy());
    clock.advance(Duration::from_secs(1));
    proxy.invoke(&op, |c| *c += 1).unwrap();
    assert_eq!(proxy.with_component(|c| *c), 3);
}

/// Readers–writer aspects under real threads: readers run concurrently,
/// writers exclusively, and no torn reads are observable.
#[test]
fn readers_writer_composition_under_threads() {
    use aspect_moderator::aspects::sync::ReadersWriterGroup;
    use std::sync::atomic::{AtomicU32, Ordering};

    let moderator = AspectModerator::shared();
    let read = moderator.declare_method(MethodId::new("read"));
    let write = moderator.declare_method(MethodId::new("write"));
    let group = ReadersWriterGroup::new();
    moderator
        .register(
            &read,
            Concern::synchronization(),
            Box::new(group.read_aspect()),
        )
        .unwrap();
    moderator
        .register(
            &write,
            Concern::synchronization(),
            Box::new(group.write_aspect()),
        )
        .unwrap();
    // The "document": two fields a writer keeps equal. The component
    // itself is behind the proxy's mutex, so to let readers actually
    // overlap we share it via an Arc *outside* the proxy and keep unit
    // state inside — the aspects alone provide the RW discipline.
    #[derive(Default)]
    struct Doc {
        a: AtomicU32,
        b: AtomicU32,
    }
    let doc = Arc::new(Doc::default());
    let proxy = Arc::new(Moderated::new((), Arc::clone(&moderator)));
    let max_readers = Arc::new(AtomicU32::new(0));
    let readers_now = Arc::new(AtomicU32::new(0));

    std::thread::scope(|s| {
        for _ in 0..3 {
            let proxy = Arc::clone(&proxy);
            let read = read.clone();
            let doc = Arc::clone(&doc);
            let readers_now = Arc::clone(&readers_now);
            let max_readers = Arc::clone(&max_readers);
            s.spawn(move || {
                for _ in 0..300 {
                    let guard = proxy.enter(&read).unwrap();
                    let now = readers_now.fetch_add(1, Ordering::SeqCst) + 1;
                    max_readers.fetch_max(now, Ordering::SeqCst);
                    let a = doc.a.load(Ordering::SeqCst);
                    std::thread::yield_now();
                    let b = doc.b.load(Ordering::SeqCst);
                    assert_eq!(a, b, "torn read: writer ran during a read");
                    readers_now.fetch_sub(1, Ordering::SeqCst);
                    guard.complete();
                }
            });
        }
        for _ in 0..2 {
            let proxy = Arc::clone(&proxy);
            let write = write.clone();
            let doc = Arc::clone(&doc);
            s.spawn(move || {
                for _ in 0..150 {
                    let guard = proxy.enter(&write).unwrap();
                    let v = doc.a.load(Ordering::SeqCst) + 1;
                    doc.a.store(v, Ordering::SeqCst);
                    std::thread::yield_now();
                    doc.b.store(v, Ordering::SeqCst);
                    guard.complete();
                }
            });
        }
    });
    assert_eq!(doc.a.load(Ordering::SeqCst), 300);
    assert_eq!(group.load(), (0, false), "group fully released");
    assert!(
        max_readers.load(Ordering::SeqCst) >= 2,
        "readers must actually have overlapped"
    );
}

/// Outcome visibility: a failing functional method is reported to every
/// post-activation aspect in the stack.
#[test]
fn failure_outcome_reaches_all_aspects() {
    let moderator = AspectModerator::shared();
    let op = moderator.declare_method(MethodId::new("op"));
    let audit = AuditLog::shared();
    let hub = MetricsHub::new();
    moderator
        .register(
            &op,
            Concern::audit(),
            Box::new(AuditAspect::new(Arc::clone(&audit))),
        )
        .unwrap();
    moderator
        .register(
            &op,
            Concern::metrics(),
            Box::new(MetricsAspect::new(hub.clone())),
        )
        .unwrap();
    let proxy = Moderated::new(0_u32, Arc::clone(&moderator));
    let r: Result<(), String> = proxy
        .invoke_fallible(&op, |_| Err("domain".to_string()))
        .unwrap();
    assert!(r.is_err());
    assert_eq!(hub.method("op").unwrap().failures, 1);
    let completed: Vec<_> = audit
        .records()
        .into_iter()
        .filter(|r| r.phase == AuditPhase::Completed)
        .collect();
    assert_eq!(
        completed[0].outcome,
        Some(aspect_moderator::aspects::audit::AuditOutcome::Failure)
    );
    let _ = Outcome::Failure;
}

//! Figure-conformance tests: the UML sequence diagrams of the paper
//! (Figure 2: initialization, Figure 3: method invocation) asserted
//! against the moderator's protocol trace.

use std::sync::Arc;
use std::thread;

use aspect_moderator::core::trace::{EventKind, MemoryTrace};
use aspect_moderator::core::{AspectModerator, Concern, MethodId};
use aspect_moderator::ticketing::{Ticket, TicketServerProxy};

fn traced_proxy(capacity: usize) -> (TicketServerProxy, Arc<MemoryTrace>) {
    let trace = MemoryTrace::shared();
    let moderator = Arc::new(AspectModerator::builder().trace(trace.clone()).build());
    let proxy = TicketServerProxy::new(capacity, moderator).unwrap();
    (proxy, trace)
}

/// Figure 2 — initialization: for each participating method the proxy
/// asks the factory to *create* the aspect and the moderator to
/// *register* it, in that order, open before assign.
#[test]
fn fig2_initialization_sequence() {
    let (_proxy, trace) = traced_proxy(4);
    let events = trace.events();
    let kinds: Vec<(&EventKind, &str)> = events
        .iter()
        .map(|e| (&e.kind, e.method.as_str()))
        .collect();
    assert_eq!(
        kinds,
        vec![
            (&EventKind::AspectCreated, "open"),
            (&EventKind::AspectRegistered, "open"),
            (&EventKind::AspectCreated, "assign"),
            (&EventKind::AspectRegistered, "assign"),
        ]
    );
    // Registration-time events carry no invocation number.
    assert!(events.iter().all(|e| e.invocation == 0));
    // And both registrations are under the SYNC concern.
    assert!(events
        .iter()
        .all(|e| e.concern.as_ref() == Some(&Concern::synchronization())));
}

/// Figure 3 — method invocation: preactivation → precondition →
/// functional method → postactivation → postaction → notify, in exactly
/// that order.
#[test]
fn fig3_invocation_sequence() {
    let (proxy, trace) = traced_proxy(4);
    trace.clear();
    proxy.open(Ticket::new(1, "printer jam")).unwrap();
    let events = trace.events();
    let compact: Vec<String> = events.iter().map(|e| e.compact()).collect();
    let invocation = events[0].invocation;
    assert_eq!(
        compact,
        vec![
            format!("#{invocation} preactivation open"),
            format!("#{invocation} precondition-resumed open/sync"),
            format!("#{invocation} resumed open"),
            format!("#{invocation} method-invoked open"),
            format!("#{invocation} postactivation open"),
            format!("#{invocation} postaction open/sync"),
            format!("#{invocation} notify->assign open"),
        ]
    );
}

/// Figure 3's assign side, including the guarded wait: an assign on an
/// empty buffer parks on its queue and resumes only after an open's
/// post-activation notifies it.
#[test]
fn fig3_blocked_assign_waits_then_resumes() {
    let (proxy, trace) = traced_proxy(1);
    trace.clear();
    let proxy = Arc::new(proxy);
    let consumer = {
        let proxy = Arc::clone(&proxy);
        thread::spawn(move || proxy.assign().unwrap())
    };
    while proxy.moderator().stats().blocks == 0 {
        thread::yield_now();
    }
    proxy.open(Ticket::new(9, "vpn down")).unwrap();
    let got = consumer.join().unwrap();
    assert_eq!(got.id.0, 9);

    // Find the assign invocation's event stream.
    let events = trace.events();
    let assign_inv = events
        .iter()
        .find(|e| e.method == MethodId::new("assign"))
        .unwrap()
        .invocation;
    let assign_kinds: Vec<EventKind> = events
        .iter()
        .filter(|e| e.invocation == assign_inv)
        .map(|e| e.kind.clone())
        .collect();
    assert_eq!(
        assign_kinds,
        vec![
            EventKind::PreactivationStarted,
            EventKind::PreconditionBlocked,
            EventKind::WaitStarted,
            EventKind::WaitWoken,
            EventKind::PreconditionResumed,
            EventKind::ActivationResumed,
            EventKind::MethodInvoked,
            EventKind::PostactivationStarted,
            EventKind::PostactionRun,
            EventKind::NotificationSent(MethodId::new("open")),
        ]
    );

    // The wakeup must have come from open's post-activation: open's
    // notify->assign appears between assign's WaitStarted and WaitWoken.
    let pos = |pred: &dyn Fn(&aspect_moderator::core::trace::TraceEvent) -> bool| {
        events.iter().position(pred).unwrap()
    };
    let wait_started = pos(&|e| e.invocation == assign_inv && e.kind == EventKind::WaitStarted);
    let woken = pos(&|e| e.invocation == assign_inv && e.kind == EventKind::WaitWoken);
    let notify = pos(&|e| {
        e.method == MethodId::new("open")
            && e.kind == EventKind::NotificationSent(MethodId::new("assign"))
    });
    assert!(wait_started < notify && notify < woken);
}

/// The paper's wake wiring (Figure 11): open's post-activation notifies
/// only assign's queue and vice versa — never its own.
#[test]
fn wake_graph_matches_paper() {
    let (proxy, trace) = traced_proxy(2);
    trace.clear();
    proxy.open(Ticket::new(1, "a")).unwrap();
    proxy.assign().unwrap();
    let notifications: Vec<(String, String)> = trace
        .events()
        .into_iter()
        .filter_map(|e| match e.kind {
            EventKind::NotificationSent(target) => {
                Some((e.method.as_str().to_string(), target.as_str().to_string()))
            }
            _ => None,
        })
        .collect();
    assert_eq!(
        notifications,
        vec![
            ("open".to_string(), "assign".to_string()),
            ("assign".to_string(), "open".to_string()),
        ]
    );
}

/// Aborted activations (no aspect in the base system aborts, so drive
/// the moderator directly): the method body must never run and the
/// trace must end with the abort.
#[test]
fn aborted_activation_trace() {
    use aspect_moderator::core::{FnAspect, InvocationContext, Moderated, Verdict};
    let trace = MemoryTrace::shared();
    let moderator = Arc::new(AspectModerator::builder().trace(trace.clone()).build());
    let m = moderator.declare_method(MethodId::new("op"));
    moderator
        .register(
            &m,
            Concern::authentication(),
            Box::new(FnAspect::new("deny").on_precondition(|_| Verdict::abort("denied"))),
        )
        .unwrap();
    let proxy = Moderated::new(0_u32, Arc::clone(&moderator));
    let mut ctx = InvocationContext::new(m.id().clone(), moderator.next_invocation());
    ctx.insert(());
    assert!(proxy.enter_with(&m, ctx).is_err());
    let kinds: Vec<EventKind> = trace.events().into_iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            EventKind::AspectRegistered,
            EventKind::PreactivationStarted,
            EventKind::PreconditionAborted,
            EventKind::ActivationAborted,
        ]
    );
}

//! End-to-end coordination aspects under real threads: rendezvous
//! barriers, resource leases and deadlines flowing through the
//! moderator's blocking machinery.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use aspect_moderator::aspects::coordination::{
    BarrierAspect, Deadline, DeadlineAspect, Lease, ResourceLeaseAspect,
};
use aspect_moderator::concurrency::{ManualClock, ResourcePool};
use aspect_moderator::core::{AspectModerator, Concern, InvocationContext, MethodId, Moderated};

#[test]
fn barrier_releases_threads_in_cohorts() {
    let moderator = AspectModerator::shared();
    let commit = moderator.declare_method(MethodId::new("commit"));
    moderator
        .register(
            &commit,
            Concern::new("rendezvous"),
            Box::new(BarrierAspect::new(3)),
        )
        .unwrap();
    let proxy = Arc::new(Moderated::new(0_u32, Arc::clone(&moderator)));

    let done = Arc::new(AtomicU32::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let proxy = Arc::clone(&proxy);
        let commit = commit.clone();
        let done = Arc::clone(&done);
        handles.push(thread::spawn(move || {
            proxy.invoke(&commit, |c| *c += 1).unwrap();
            done.fetch_add(1, Ordering::SeqCst);
        }));
    }
    // Two arrivals are not enough.
    while moderator.stats().blocks < 2 {
        thread::yield_now();
    }
    thread::sleep(Duration::from_millis(20));
    assert_eq!(
        done.load(Ordering::SeqCst),
        0,
        "cohort must wait for the third"
    );

    // The third arrival releases everyone.
    proxy.invoke(&commit, |c| *c += 1).unwrap();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(done.load(Ordering::SeqCst), 2);
    assert_eq!(proxy.with_component(|c| *c), 3);
}

#[test]
fn leases_bound_concurrency_to_pool_size() {
    let moderator = AspectModerator::shared();
    let query = moderator.declare_method(MethodId::new("query"));
    let pool = Arc::new(ResourcePool::new(vec!["conn-a", "conn-b"]));
    moderator
        .register(
            &query,
            Concern::new("lease"),
            Box::new(ResourceLeaseAspect::new(Arc::clone(&pool))),
        )
        .unwrap();
    let proxy = Arc::new(Moderated::new((), Arc::clone(&moderator)));

    let completed = Arc::new(AtomicU32::new(0));
    let mut handles = Vec::new();
    for _ in 0..6 {
        let proxy = Arc::clone(&proxy);
        let query = query.clone();
        let completed = Arc::clone(&completed);
        handles.push(thread::spawn(move || {
            for _ in 0..50 {
                let mut guard = proxy.enter(&query).unwrap();
                // The leased connection is visible to the method body.
                let lease = guard.context().get::<Lease<&str>>().expect("leased");
                assert!(lease.get().is_some());
                guard.complete();
                completed.fetch_add(1, Ordering::SeqCst);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(completed.load(Ordering::SeqCst), 300);
    assert_eq!(pool.available(), 2, "every lease returned");
}

#[test]
fn deadline_aborts_caller_stuck_behind_a_dry_pool() {
    let clock = ManualClock::new();
    let moderator = AspectModerator::shared();
    let query = moderator.declare_method(MethodId::new("query"));
    let pool: Arc<ResourcePool<u8>> = Arc::new(ResourcePool::new(vec![]));
    // Deadline registered second => evaluated first (nested ordering),
    // so a parked caller re-checks its budget on every wakeup.
    moderator
        .register(
            &query,
            Concern::new("lease"),
            Box::new(ResourceLeaseAspect::new(Arc::clone(&pool))),
        )
        .unwrap();
    moderator
        .register(
            &query,
            Concern::new("deadline"),
            Box::new(DeadlineAspect::with_clock(Arc::new(clock.clone()))),
        )
        .unwrap();
    let proxy = Arc::new(Moderated::new((), Arc::clone(&moderator)));

    // Caller with an already-expired deadline: immediate abort.
    let mut ctx = InvocationContext::new(query.id().clone(), moderator.next_invocation());
    clock.advance(Duration::from_millis(10));
    ctx.insert(Deadline(Duration::from_millis(5)));
    let err = proxy.enter_with(&query, ctx).unwrap_err();
    assert_eq!(err.concern().unwrap(), &Concern::new("deadline"));

    // A caller with budget left blocks on the dry pool instead.
    let mut ctx = InvocationContext::new(query.id().clone(), moderator.next_invocation());
    ctx.insert(Deadline(Duration::from_secs(60)));
    let err = proxy
        .enter_timeout(&query, ctx, Duration::from_millis(30))
        .unwrap_err();
    assert!(err.is_timeout(), "blocked on the pool, not the deadline");
}

#[test]
fn lease_survives_rollback_and_timeout_without_capacity_loss() {
    use aspect_moderator::core::{FnAspect, Verdict};
    // Chain on `op` (registration order): gate first (innermost),
    // lease second (outermost — evaluated FIRST under nesting). The
    // closed gate blocks *after* the lease resumed, exercising the
    // rollback/reuse path; the timeout then drops the context,
    // exercising the destructor path.
    let moderator = AspectModerator::shared();
    let op = moderator.declare_method(MethodId::new("op"));
    let pool: Arc<ResourcePool<u8>> = Arc::new(ResourcePool::new(vec![7]));
    moderator
        .register(
            &op,
            Concern::new("gate"),
            Box::new(FnAspect::new("closed").on_precondition(|_| Verdict::Block)),
        )
        .unwrap();
    moderator
        .register(
            &op,
            Concern::new("lease"),
            Box::new(ResourceLeaseAspect::new(Arc::clone(&pool))),
        )
        .unwrap();
    let proxy = Moderated::new((), Arc::clone(&moderator));
    let err = proxy
        .invoke_timeout(&op, Duration::from_millis(40), |()| ())
        .unwrap_err();
    assert!(err.is_timeout());
    assert_eq!(
        pool.available(),
        1,
        "the leased item must be back after rollback + timeout"
    );
}

#[test]
fn barrier_with_timeout_does_not_poison_future_cohorts() {
    let moderator = AspectModerator::shared();
    let commit = moderator.declare_method(MethodId::new("commit"));
    moderator
        .register(
            &commit,
            Concern::new("rendezvous"),
            Box::new(BarrierAspect::new(2)),
        )
        .unwrap();
    let proxy = Arc::new(Moderated::new(0_u32, Arc::clone(&moderator)));

    // A lone caller gives up.
    let err = proxy
        .invoke_timeout(&commit, Duration::from_millis(30), |c| *c += 1)
        .unwrap_err();
    assert!(err.is_timeout());

    // Two fresh callers still form a working cohort (the ghost was
    // cancelled out of the barrier).
    let t = {
        let proxy = Arc::clone(&proxy);
        let commit = commit.clone();
        thread::spawn(move || proxy.invoke(&commit, |c| *c += 1))
    };
    while moderator.stats().blocks < 2 {
        thread::yield_now();
    }
    proxy.invoke(&commit, |c| *c += 1).unwrap();
    t.join().unwrap().unwrap();
    assert_eq!(proxy.with_component(|c| *c), 2);
}

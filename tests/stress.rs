//! Soak tests: sustained mixed workloads across proxies, with
//! accounting invariants over the moderator's statistics.
//!
//! Stats invariants checked throughout:
//! * `preactivations == resumes + aborts + timeouts` once quiescent,
//! * `postactivations == resumes` when every guard is completed,
//! * aspect reservation counters return to zero.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use aspect_moderator::aspects::auth::{AuthToken, Authenticator};
use aspect_moderator::core::AspectModerator;
use aspect_moderator::scenarios::{CheckoutService, ReservationService};
use aspect_moderator::ticketing::{ExtendedTicketServerProxy, Ticket, TicketServerProxy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_quiescent_stats(moderator: &AspectModerator) {
    let s = moderator.stats();
    assert_eq!(
        s.preactivations,
        s.resumes + s.aborts + s.timeouts,
        "every preactivation must terminate: {s:?}"
    );
    assert_eq!(
        s.postactivations, s.resumes,
        "every resumed guard must have completed: {s:?}"
    );
}

#[test]
fn ticketing_soak_under_heavy_contention() {
    let proxy = Arc::new(TicketServerProxy::new(3, AspectModerator::shared()).unwrap());
    let producers = 6;
    let consumers = 6;
    let per: u64 = 400;
    thread::scope(|s| {
        for p in 0..producers {
            let proxy = Arc::clone(&proxy);
            s.spawn(move || {
                for i in 0..per {
                    proxy.open(Ticket::new(p * 10_000 + i, "x")).unwrap();
                }
            });
        }
        for _ in 0..consumers {
            let proxy = Arc::clone(&proxy);
            s.spawn(move || {
                for _ in 0..per {
                    proxy.assign().unwrap();
                }
            });
        }
    });
    assert_eq!(proxy.totals(), (producers * per, consumers * per));
    assert!(proxy.is_empty());
    let snap = proxy.buffer_handle().snapshot();
    assert_eq!((snap.reserved, snap.produced), (0, 0));
    assert!(!snap.producing && !snap.consuming);
    assert_quiescent_stats(proxy.moderator());
}

#[test]
fn extended_ticketing_soak_with_hostile_traffic() {
    let auth = Authenticator::shared();
    auth.add_user("good", "pw");
    let proxy = Arc::new(
        ExtendedTicketServerProxy::new(4, AspectModerator::shared(), Arc::clone(&auth)).unwrap(),
    );
    let token = auth.login("good", "pw").unwrap();
    let per: u64 = 300;
    thread::scope(|s| {
        // Legitimate producer/consumer pair.
        {
            let proxy = Arc::clone(&proxy);
            s.spawn(move || {
                for i in 0..per {
                    proxy.open(token, Ticket::new(i, "x")).unwrap();
                }
            });
        }
        {
            let proxy = Arc::clone(&proxy);
            s.spawn(move || {
                for _ in 0..per {
                    proxy.assign(token).unwrap();
                }
            });
        }
        // Hostile traffic: bad tokens hammering both methods.
        for seed in 0..3u64 {
            let proxy = Arc::clone(&proxy);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                for _ in 0..per {
                    let bogus = AuthToken(rng.gen());
                    if rng.gen_bool(0.5) {
                        assert!(proxy.open(bogus, Ticket::new(0, "evil")).is_err());
                    } else {
                        assert!(proxy.assign(bogus).is_err());
                    }
                }
            });
        }
    });
    assert!(proxy.is_empty());
    let snap = proxy.base().buffer_handle().snapshot();
    assert_eq!((snap.reserved, snap.produced), (0, 0));
    let stats = proxy.base().moderator().stats();
    assert_eq!(stats.aborts, 3 * per, "every hostile call aborted");
    assert_quiescent_stats(proxy.base().moderator());
}

#[test]
fn reservation_soak_with_random_cancel_rebook() {
    let auth = Authenticator::shared();
    for u in 0..4 {
        auth.add_user(&format!("u{u}"), "pw");
    }
    let svc = Arc::new(
        ReservationService::new(AspectModerator::shared(), Arc::clone(&auth), 64, u64::MAX)
            .unwrap(),
    );
    thread::scope(|s| {
        for u in 0..4u64 {
            let svc = Arc::clone(&svc);
            let token = auth.login(&format!("u{u}"), "pw").unwrap();
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(u);
                for _ in 0..500 {
                    let seat = rng.gen_range(0..64);
                    if rng.gen_bool(0.6) {
                        let _ = svc.reserve(token, seat);
                    } else {
                        let _ = svc.cancel(token, seat);
                    }
                }
            });
        }
    });
    // Seat-map consistency: every held seat is held by exactly one
    // principal (the map structure guarantees it; verify via counts).
    let mut held = 0;
    for u in 0..4 {
        held += svc.held_by(&format!("u{u}")).len();
    }
    assert_eq!(held + svc.available(), 64);
}

#[test]
fn checkout_soak_with_mixed_failures() {
    use amf_concurrency::SystemClock;
    let auth = Authenticator::shared();
    auth.add_user("cust", "pw");
    let svc = Arc::new(
        CheckoutService::new(
            AspectModerator::shared(),
            Arc::clone(&auth),
            3,
            Arc::new(SystemClock::new()),
        )
        .unwrap(),
    );
    let token = auth.login("cust", "pw").unwrap();
    thread::scope(|s| {
        for t in 0..6u64 {
            let svc = Arc::clone(&svc);
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(t);
                for _ in 0..200 {
                    // Mostly good charges; occasional empty carts. No
                    // gateway declines (would trip the breaker, which
                    // has its own focused test).
                    let amount = if rng.gen_bool(0.1) {
                        0
                    } else {
                        rng.gen_range(1..999)
                    };
                    let budget = if rng.gen_bool(0.5) {
                        Some(Duration::from_secs(30))
                    } else {
                        None
                    };
                    let r = svc.charge(token, amount, budget);
                    if amount == 0 {
                        assert!(r.is_err());
                    } else {
                        r.unwrap();
                    }
                }
            });
        }
    });
    assert_eq!(svc.free_connections(), 3, "no leaked gateway connections");
    assert_quiescent_stats(svc.moderator());
}

//! The chaos battery: randomized panic injection against the ticketing
//! pipeline under heavy contention. A seeded [`PanicInjectionAspect`]
//! rides on both methods' chains while producers and consumers hammer a
//! small buffer from 8 threads; the suite asserts the containment
//! contract end to end — the run stays live (watchdog-bounded), every
//! injected panic is caught and counted (`panics_caught` equals the
//! injectors' own tally), no reservation leaks (a canary aspect keeps a
//! resume/release balance), and the buffer quiesces empty.
//!
//! Seeds mirror the fairness battery: set `AMF_CHAOS_SEED` to replay a
//! particular storm; the default below is what CI pins.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::thread;
use std::time::Duration;

use aspect_moderator::aspects::fault::{chaos_seed, PanicInjectionAspect};
use aspect_moderator::core::{
    AspectModerator, Concern, FairnessPolicy, FnAspect, PanicPolicy, Verdict,
};
use aspect_moderator::ticketing::{Ticket, TicketId, TicketServerProxy};

const WATCHDOG: Duration = Duration::from_secs(120);
const DEFAULT_SEED: u64 = 0xC4A0_5BA7;

/// Contained panics still run the panic hook; silence it for this
/// binary so a storm of injected unwinds does not flood the test log.
fn silence_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

/// Runs `f` on its own thread and fails the test if it does not finish
/// within [`WATCHDOG`] — a stranded waiter shows up as a hang.
fn bounded<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("{label}: stranded waiter suspected (no completion in time)"));
    handle.join().unwrap();
    out
}

/// A balance-keeping canary: `pre` increments, postaction *and*
/// rollback decrement. Registered after the injector it evaluates
/// before it (nested ordering), so every injected precondition panic
/// leaves a resumed canary behind — if the prefix unwind ever skipped,
/// the balance ends positive.
fn canary(balance: &Arc<AtomicI64>) -> FnAspect {
    let up = Arc::clone(balance);
    let down = Arc::clone(balance);
    let undo = Arc::clone(balance);
    FnAspect::new("canary")
        .on_precondition(move |_| {
            up.fetch_add(1, Ordering::SeqCst);
            Verdict::Resume
        })
        .on_postaction(move |_| {
            down.fetch_sub(1, Ordering::SeqCst);
        })
        .on_release_do(move |_, _| {
            undo.fetch_sub(1, Ordering::SeqCst);
        })
}

/// 4 producers and 4 consumers push `per` tickets each through a
/// capacity-4 buffer while seeded injectors panic in preconditions and
/// postactions of both methods. Asserts liveness, exact panic
/// accounting and quiescence.
fn chaos_run(fairness: FairnessPolicy) {
    silence_panic_hook();
    let per: u64 = 300;
    let workers = 4;
    let seed = chaos_seed(DEFAULT_SEED);
    let balance = Arc::new(AtomicI64::new(0));

    let (proxy, open_fired, assign_fired) = {
        let moderator = Arc::new(
            AspectModerator::builder()
                .fairness(fairness)
                .panic_policy(PanicPolicy::AbortInvocation)
                .build(),
        );
        let proxy = Arc::new(TicketServerProxy::new(4, moderator).unwrap());
        let open_inj = PanicInjectionAspect::new(0.15, 0.05, seed);
        let assign_inj = PanicInjectionAspect::new(0.15, 0.05, seed.wrapping_add(1));
        let (open_fired, assign_fired) = (open_inj.counter(), assign_inj.counter());
        let m = proxy.moderator();
        m.register(
            proxy.open_handle(),
            Concern::new("panic-injection"),
            Box::new(open_inj),
        )
        .unwrap();
        m.register(
            proxy.assign_handle(),
            Concern::new("panic-injection"),
            Box::new(assign_inj),
        )
        .unwrap();
        m.register(
            proxy.open_handle(),
            Concern::new("canary"),
            Box::new(canary(&balance)),
        )
        .unwrap();
        m.register(
            proxy.assign_handle(),
            Concern::new("canary"),
            Box::new(canary(&balance)),
        )
        .unwrap();
        (proxy, open_fired, assign_fired)
    };

    let proxy = bounded("chaos storm", {
        let proxy = Arc::clone(&proxy);
        move || {
            thread::scope(|s| {
                for p in 0..workers {
                    let proxy = Arc::clone(&proxy);
                    s.spawn(move || {
                        for i in 0..per {
                            // Retry through contained panics: an
                            // aborted activation must leave the system
                            // ready to accept the same op again.
                            loop {
                                match proxy.open(Ticket::new(p * 1_000_000 + i, "chaos")) {
                                    Ok(()) => break,
                                    Err(e) if e.is_panic() => continue,
                                    Err(e) => panic!("unexpected abort: {e}"),
                                }
                            }
                        }
                    });
                }
                for _ in 0..workers {
                    let proxy = Arc::clone(&proxy);
                    s.spawn(move || {
                        for _ in 0..per {
                            loop {
                                match proxy.assign() {
                                    Ok(_) => break,
                                    Err(e) if e.is_panic() => continue,
                                    Err(e) => panic!("unexpected abort: {e}"),
                                }
                            }
                        }
                    });
                }
            });
            proxy
        }
    });

    let fired = open_fired.load(Ordering::SeqCst) + assign_fired.load(Ordering::SeqCst);
    assert!(fired >= 100, "storm too mild: only {fired} panics injected");

    // Every successful op landed: totals balance and the buffer is
    // empty again.
    assert_eq!(proxy.totals(), (workers * per, workers * per));
    assert!(proxy.is_empty());
    let snap = proxy.buffer_handle().snapshot();
    assert_eq!(
        (snap.reserved, snap.produced),
        (0, 0),
        "reservations must be conserved across panics"
    );

    // The canary balance proves the prefix unwind ran for every
    // contained panic: each resumed canary was compensated exactly once
    // (postaction on success, release on rollback).
    assert_eq!(
        balance.load(Ordering::SeqCst),
        0,
        "leaked canary reservation after the storm"
    );

    // Exact panic accounting: everything the injectors fired was
    // caught, nothing else was.
    let s = proxy.moderator().stats();
    assert_eq!(s.panics_caught, fired, "{s:?}");
    assert_eq!(s.quarantined_aspects, 0, "{s:?}");
    assert_eq!(
        s.preactivations,
        s.resumes + s.aborts + s.timeouts,
        "every preactivation must terminate: {s:?}"
    );
    assert_eq!(s.postactivations, s.resumes, "{s:?}");
}

#[test]
fn chaos_storm_is_contained_under_barging() {
    chaos_run(FairnessPolicy::Barging);
}

#[test]
fn chaos_storm_is_contained_under_fifo() {
    chaos_run(FairnessPolicy::Fifo);
}

/// Satellite regression: a panic inside one method's coordination cell
/// must never strand the *other* method's waiters. A consumer parks on
/// the empty buffer; the producer's postaction then panics — the
/// contained unwind must still deliver the cross-cell notification, or
/// the consumer hangs forever.
#[test]
fn postaction_panic_still_wakes_the_other_cell() {
    silence_panic_hook();
    let moderator = Arc::new(
        AspectModerator::builder()
            .panic_policy(PanicPolicy::AbortInvocation)
            .build(),
    );
    let proxy = Arc::new(TicketServerProxy::new(1, moderator).unwrap());
    let armed = Arc::new(AtomicBool::new(true));
    let bomb = {
        let armed = Arc::clone(&armed);
        FnAspect::new("post-bomb").on_postaction(move |_| {
            if armed.swap(false, Ordering::SeqCst) {
                panic!("injected postaction panic");
            }
        })
    };
    proxy
        .moderator()
        .register(
            proxy.open_handle(),
            Concern::new("post-bomb"),
            Box::new(bomb),
        )
        .unwrap();

    let ticket = bounded("cross-cell wake after postaction panic", {
        let proxy = Arc::clone(&proxy);
        move || {
            let consumer = {
                let proxy = Arc::clone(&proxy);
                thread::spawn(move || proxy.assign().unwrap())
            };
            // Let the consumer park before the faulty open runs.
            while proxy.moderator().stats().blocks == 0 {
                thread::yield_now();
            }
            proxy.open(Ticket::new(7, "chaos")).unwrap();
            consumer.join().unwrap()
        }
    });
    assert_eq!(ticket.id, TicketId(7));
    assert!(!armed.load(Ordering::SeqCst), "the bomb must have fired");
    let s = proxy.moderator().stats();
    assert_eq!(s.panics_caught, 1, "{s:?}");
    assert!(proxy.is_empty());
}

/// Quarantine unclogs a hot aspect: an injector with certainty-one
/// precondition panic rate blocks every open until its panic budget is
/// spent, after which the slot is disabled and the pipeline flows.
#[test]
fn quarantine_retires_a_permanently_faulty_aspect() {
    silence_panic_hook();
    let moderator = Arc::new(
        AspectModerator::builder()
            .panic_policy(PanicPolicy::Quarantine { after: 3 })
            .build(),
    );
    let proxy = Arc::new(TicketServerProxy::new(2, moderator).unwrap());
    let inj = PanicInjectionAspect::new(1.0, 0.0, chaos_seed(DEFAULT_SEED));
    let fired = inj.counter();
    proxy
        .moderator()
        .register(
            proxy.open_handle(),
            Concern::new("panic-injection"),
            Box::new(inj),
        )
        .unwrap();

    let mut failures = 0;
    for i in 0..10 {
        loop {
            match proxy.open(Ticket::new(i, "chaos")) {
                Ok(()) => break,
                Err(e) if e.is_panic() => failures += 1,
                Err(e) => panic!("unexpected abort: {e}"),
            }
        }
        proxy.assign().unwrap();
    }
    assert_eq!(failures, 3, "exactly the quarantine budget fails");
    assert_eq!(fired.load(Ordering::SeqCst), 3);
    let s = proxy.moderator().stats();
    assert_eq!(s.panics_caught, 3, "{s:?}");
    assert_eq!(s.quarantined_aspects, 1, "{s:?}");
}

//! Cross-method wakeup races under the sharded moderator: heavy
//! producer/consumer contention on a capacity-1 buffer, where every
//! wakeup must cross from one method's coordination cell to another's.
//! A lost wakeup shows up as a hang, so completion is bounded by a
//! watchdog; reservation conservation is asserted afterwards.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use aspect_moderator::core::{
    AspectModerator, Concern, FairnessPolicy, FnAspect, InvocationContext, MethodId, Verdict,
    WakeMode,
};
use aspect_moderator::ticketing::{Ticket, TicketServerProxy};

const WATCHDOG: Duration = Duration::from_secs(120);

/// Runs `f` on its own thread and fails the test if it does not finish
/// within [`WATCHDOG`] — the shape a lost wakeup takes at runtime.
fn bounded<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("{label}: lost wakeup suspected (no completion in time)"));
    handle.join().unwrap();
    out
}

/// 4 producers and 4 consumers hammer a capacity-1 buffer: every open
/// must wake an assign across cells and vice versa. Asserts bounded
/// completion, conserved reservations and quiescent stats.
fn capacity_one_stress(wake_mode: WakeMode) {
    let per: u64 = 250;
    let producers = 4;
    let consumers = 4;
    let proxy = bounded("capacity-1 stress", move || {
        let moderator = Arc::new(AspectModerator::builder().wake_mode(wake_mode).build());
        let proxy = Arc::new(TicketServerProxy::new(1, moderator).unwrap());
        thread::scope(|s| {
            for p in 0..producers {
                let proxy = Arc::clone(&proxy);
                s.spawn(move || {
                    for i in 0..per {
                        proxy.open(Ticket::new(p * 100_000 + i, "stress")).unwrap();
                    }
                });
            }
            for _ in 0..consumers {
                let proxy = Arc::clone(&proxy);
                s.spawn(move || {
                    for _ in 0..per {
                        proxy.assign().unwrap();
                    }
                });
            }
        });
        proxy
    });
    assert_eq!(proxy.totals(), (producers * per, consumers * per));
    assert!(proxy.is_empty());
    let snap = proxy.buffer_handle().snapshot();
    assert_eq!(
        (snap.reserved, snap.produced),
        (0, 0),
        "reservations must be conserved"
    );
    let s = proxy.moderator().stats();
    assert_eq!(
        s.preactivations,
        s.resumes + s.aborts + s.timeouts,
        "every preactivation must terminate: {s:?}"
    );
    assert_eq!(s.postactivations, s.resumes, "{s:?}");
    assert_eq!(s.would_blocks, 0, "blocking API never would-blocks");
}

#[test]
fn capacity_one_no_lost_wakeups_notify_all() {
    capacity_one_stress(WakeMode::NotifyAll);
}

#[test]
fn capacity_one_no_lost_wakeups_notify_one() {
    capacity_one_stress(WakeMode::NotifyOne);
}

/// Deregistering the blocking aspect must wake callers parked on that
/// method's cell: they re-evaluate the shortened chain and resume.
#[test]
fn deregister_while_blocked_releases_waiters() {
    bounded("deregister while blocked", || {
        let moderator = Arc::new(AspectModerator::new());
        let m = moderator.declare_method(MethodId::new("gated"));
        moderator
            .register(
                &m,
                Concern::synchronization(),
                Box::new(FnAspect::new("closed-gate").on_precondition(|_| Verdict::Block)),
            )
            .unwrap();

        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let moderator = Arc::clone(&moderator);
                let m = m.clone();
                thread::spawn(move || {
                    let mut ctx =
                        InvocationContext::new(m.id().clone(), moderator.next_invocation());
                    moderator.preactivation(&m, &mut ctx).unwrap();
                    moderator.postactivation(&m, &mut ctx);
                })
            })
            .collect();
        while moderator.stats().blocks < 4 {
            thread::yield_now();
        }

        moderator
            .deregister(&m, &Concern::synchronization())
            .unwrap();
        for w in waiters {
            w.join().unwrap();
        }
        assert_eq!(moderator.stats().resumes, 4);
    });
}

/// Deregistering the gate while FIFO waiters are parked and a *batched
/// sweep* is draining them: a refill frees two units at once under
/// `NotifyOne` (one signal, the second admission rides the grant
/// extension) while a racing thread removes the gating aspect
/// mid-sweep. Every ticketed waiter must still be released, in bounded
/// time, whichever of the sweep cursor or the deregistration full-queue
/// sweep reaches it first. Iterated to vary the interleaving.
#[test]
fn deregister_during_batched_sweep_releases_fifo_waiters() {
    for round in 0..20 {
        bounded("deregister during batched sweep", move || {
            let moderator = Arc::new(
                AspectModerator::builder()
                    .fairness(FairnessPolicy::Fifo)
                    .wake_mode(WakeMode::NotifyOne)
                    .build(),
            );
            let gated = moderator.declare_method(MethodId::new("gated"));
            let refill = moderator.declare_method(MethodId::new("refill"));
            moderator.wire_wakes(&refill, std::slice::from_ref(&gated));
            moderator.wire_wakes(&gated, &[]);

            let capacity = Arc::new(parking_lot::Mutex::new(0u32));
            {
                let capacity = Arc::clone(&capacity);
                moderator
                    .register(
                        &gated,
                        Concern::synchronization(),
                        Box::new(FnAspect::new("capacity").on_precondition(move |_| {
                            let mut c = capacity.lock();
                            if *c > 0 {
                                *c -= 1;
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })),
                    )
                    .unwrap();
            }
            {
                let capacity = Arc::clone(&capacity);
                moderator
                    .register(
                        &refill,
                        Concern::new("mint"),
                        Box::new(FnAspect::new("mint").on_postaction(move |_| {
                            *capacity.lock() += 2;
                        })),
                    )
                    .unwrap();
            }

            let waiters: Vec<_> = (0..6)
                .map(|_| {
                    let moderator = Arc::clone(&moderator);
                    let gated = gated.clone();
                    thread::spawn(move || {
                        let mut ctx =
                            InvocationContext::new(gated.id().clone(), moderator.next_invocation());
                        moderator.preactivation(&gated, &mut ctx).unwrap();
                        moderator.postactivation(&gated, &mut ctx);
                    })
                })
                .collect();
            while moderator.stats().blocks < 6 {
                thread::yield_now();
            }

            // Refill (starts a batched sweep over the parked tickets)
            // and deregister race; alternate the head start per round.
            let refiller = {
                let moderator = Arc::clone(&moderator);
                let refill = refill.clone();
                thread::spawn(move || {
                    let mut ctx =
                        InvocationContext::new(refill.id().clone(), moderator.next_invocation());
                    moderator.preactivation(&refill, &mut ctx).unwrap();
                    moderator.postactivation(&refill, &mut ctx);
                })
            };
            if round % 2 == 0 {
                thread::yield_now();
            }
            moderator
                .deregister(&gated, &Concern::synchronization())
                .unwrap();
            refiller.join().unwrap();
            for w in waiters {
                w.join().unwrap();
            }

            let s = moderator.stats();
            // 6 gated + 1 refill, all resumed — nobody stranded.
            assert_eq!(s.resumes, 7, "{s:?}");
            assert_eq!(s.preactivations, s.resumes + s.aborts + s.timeouts, "{s:?}");
            assert_eq!(s.postactivations, s.resumes, "{s:?}");
            let gs = moderator.method_stats(&gated);
            assert_eq!(gs.tickets_issued, gs.tickets_served, "{gs:?}");
        });
    }
}

//! Differential tests: the moderated systems against the hand-tangled
//! oracles under identical workloads. The paper claims the framework
//! *separates* concerns without *changing* semantics; these tests check
//! exactly that.

use std::sync::Arc;
use std::thread;

use aspect_moderator::aspects::auth::Authenticator;
use aspect_moderator::baseline::{TangledBuffer, TangledSecureBuffer};
use aspect_moderator::core::AspectModerator;
use aspect_moderator::ticketing::{ExtendedTicketServerProxy, Ticket, TicketServerProxy};

/// Runs `producers` producer threads (each sending `per` items tagged by
/// thread) through `put` while one consumer drains via `take`; returns
/// the consumed sequence.
fn drive(
    producers: u64,
    per: u64,
    put: impl Fn(u64) + Sync,
    take: impl Fn() -> u64 + Sync,
) -> Vec<u64> {
    let mut consumed = Vec::new();
    thread::scope(|s| {
        for p in 0..producers {
            let put = &put;
            s.spawn(move || {
                for i in 0..per {
                    put(p * 1_000_000 + i);
                }
            });
        }
        let take = &take;
        let total = producers * per;
        let handle = s.spawn(move || (0..total).map(|_| take()).collect::<Vec<u64>>());
        consumed = handle.join().unwrap();
    });
    consumed
}

/// Both systems must deliver exactly the produced multiset, preserving
/// per-producer FIFO order.
fn check_semantics(consumed: &[u64], producers: u64, per: u64) {
    assert_eq!(consumed.len() as u64, producers * per);
    // Multiset equality.
    let mut sorted = consumed.to_vec();
    sorted.sort_unstable();
    let expected: Vec<u64> = (0..producers)
        .flat_map(|p| (0..per).map(move |i| p * 1_000_000 + i))
        .collect();
    let mut expected_sorted = expected.clone();
    expected_sorted.sort_unstable();
    assert_eq!(sorted, expected_sorted, "no loss, no duplication");
    // Per-producer FIFO.
    for p in 0..producers {
        let seq: Vec<u64> = consumed
            .iter()
            .copied()
            .filter(|v| v / 1_000_000 == p)
            .collect();
        assert!(
            seq.windows(2).all(|w| w[0] < w[1]),
            "producer {p} order violated"
        );
    }
}

#[test]
fn moderated_matches_tangled_buffer_semantics() {
    for capacity in [1_usize, 4, 64] {
        let producers = 3;
        let per = 200;

        let moderated = TicketServerProxy::new(capacity, AspectModerator::shared()).unwrap();
        let consumed_m = drive(
            producers,
            per,
            |v| moderated.open(Ticket::new(v, "t")).unwrap(),
            || moderated.assign().unwrap().id.0,
        );
        check_semantics(&consumed_m, producers, per);

        let tangled = TangledBuffer::new(capacity);
        let consumed_t = drive(producers, per, |v| tangled.put(v), || tangled.take());
        check_semantics(&consumed_t, producers, per);
    }
}

#[test]
fn extended_matches_tangled_secure_semantics() {
    let capacity = 4;
    let producers = 2;
    let per = 150;

    let auth = Authenticator::shared();
    auth.add_user("u", "pw");
    let moderated =
        ExtendedTicketServerProxy::new(capacity, AspectModerator::shared(), Arc::clone(&auth))
            .unwrap();
    let token = auth.login("u", "pw").unwrap();
    let consumed_m = drive(
        producers,
        per,
        |v| moderated.open(token, Ticket::new(v, "t")).unwrap(),
        || moderated.assign(token).unwrap().id.0,
    );
    check_semantics(&consumed_m, producers, per);

    let tangled = TangledSecureBuffer::new(capacity);
    tangled.add_user("u", "pw");
    let ttoken = tangled.login("u", "pw").unwrap();
    let consumed_t = drive(
        producers,
        per,
        |v| tangled.put(ttoken, v).unwrap(),
        || tangled.take(ttoken).unwrap(),
    );
    check_semantics(&consumed_t, producers, per);
}

/// Totals reported by the two worlds agree after identical traffic.
#[test]
fn totals_agree() {
    let n = 500_u64;
    let moderated = TicketServerProxy::new(8, AspectModerator::shared()).unwrap();
    let tangled = TangledBuffer::new(8);
    thread::scope(|s| {
        s.spawn(|| {
            for i in 0..n {
                moderated.open(Ticket::new(i, "t")).unwrap();
                tangled.put(i);
            }
        });
        s.spawn(|| {
            for _ in 0..n {
                moderated.assign().unwrap();
                tangled.take();
            }
        });
    });
    assert_eq!(moderated.totals(), (n, n));
    assert_eq!(tangled.totals(), (n, n));
    assert!(moderated.is_empty());
    assert!(tangled.is_empty());
}

//! Figures 13–18 — the adaptability showcase: authentication layered
//! onto the ticketing system without touching functional code, with the
//! exact pre/post nesting the paper prescribes in Figure 14.

use std::sync::Arc;

use aspect_moderator::aspects::auth::{AuthToken, Authenticator};
use aspect_moderator::core::trace::{EventKind, MemoryTrace};
use aspect_moderator::core::{AspectModerator, Concern, MethodId};
use aspect_moderator::ticketing::{ExtendedTicketServerProxy, Ticket, TicketServerProxy};

fn extended_with_trace() -> (
    ExtendedTicketServerProxy,
    Arc<Authenticator>,
    Arc<MemoryTrace>,
) {
    let trace = MemoryTrace::shared();
    let moderator = Arc::new(AspectModerator::builder().trace(trace.clone()).build());
    let auth = Authenticator::shared();
    auth.add_user("alice", "pw");
    let proxy = ExtendedTicketServerProxy::new(4, moderator, Arc::clone(&auth)).unwrap();
    (proxy, auth, trace)
}

/// Figure 14 — "a request to a participating method will now have to be
/// guarded by preactivation of authentication followed by preactivation
/// of synchronization ... followed by the postactivation of
/// synchronization followed by postactivation of authentication."
#[test]
fn fig14_nesting_order() {
    let (proxy, auth, trace) = extended_with_trace();
    let token = auth.login("alice", "pw").unwrap();
    trace.clear();
    proxy.open(token, Ticket::new(1, "x")).unwrap();
    let per_aspect: Vec<(EventKind, String)> = trace
        .events()
        .into_iter()
        .filter(|e| e.concern.is_some())
        .map(|e| (e.kind, e.concern.unwrap().as_str().to_string()))
        .collect();
    assert_eq!(
        per_aspect,
        vec![
            (EventKind::PreconditionResumed, "authenticate".to_string()),
            (EventKind::PreconditionResumed, "sync".to_string()),
            (EventKind::PostactionRun, "sync".to_string()),
            (EventKind::PostactionRun, "authenticate".to_string()),
        ]
    );
}

/// Figure 16's effect — the authentication aspects are registered into
/// new bank cells; the synchronization cells are untouched.
#[test]
fn fig16_bank_contains_both_concerns() {
    let (proxy, _auth, _trace) = extended_with_trace();
    let moderator = proxy.base().moderator();
    for name in ["open", "assign"] {
        let handle = moderator.method(&MethodId::new(name)).unwrap();
        assert_eq!(
            moderator.concerns(&handle),
            vec![Concern::synchronization(), Concern::authentication()],
            "bank row for {name}"
        );
    }
}

/// Figures 17–18 — a failed authentication precondition aborts the
/// activation; the functional method and the synchronization postaction
/// never run.
#[test]
fn fig17_failed_authentication_aborts_before_sync() {
    let (proxy, _auth, trace) = extended_with_trace();
    trace.clear();
    let err = proxy.open(AuthToken(123), Ticket::new(1, "x")).unwrap_err();
    assert_eq!(err.concern().unwrap(), &Concern::authentication());
    let kinds: Vec<EventKind> = trace.events().into_iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        vec![
            EventKind::PreactivationStarted,
            EventKind::PreconditionAborted,
            EventKind::ActivationAborted,
        ],
        "sync precondition must never have been consulted"
    );
}

/// The headline claim: adding the concern changes zero functional code
/// and zero base-aspect code — demonstrated by upgrading a *live* base
/// proxy whose buffer already has traffic in flight.
#[test]
fn live_upgrade_preserves_state_and_adds_guard() {
    let auth = Authenticator::shared();
    auth.add_user("ops", "pw");
    let base = TicketServerProxy::new(4, AspectModerator::shared()).unwrap();
    base.open(Ticket::new(1, "before upgrade")).unwrap();
    base.open(Ticket::new(2, "also before")).unwrap();

    let extended = ExtendedTicketServerProxy::upgrade(base, Arc::clone(&auth)).unwrap();
    // Anonymous access now fails...
    assert!(extended.assign(AuthToken(0)).is_err());
    // ...but the pre-upgrade tickets are intact and ordered.
    let token = auth.login("ops", "pw").unwrap();
    assert_eq!(extended.assign(token).unwrap().id.0, 1);
    assert_eq!(extended.assign(token).unwrap().id.0, 2);
}

/// Concurrency and authentication compose: a consumer blocked on an
/// empty buffer holds a *validated* session; a producer with a bad
/// token cannot unblock it, a valid producer can.
#[test]
fn auth_and_blocking_compose() {
    use std::thread;
    use std::time::Duration;
    let (proxy, auth, _trace) = extended_with_trace();
    let token = auth.login("alice", "pw").unwrap();
    let proxy = Arc::new(proxy);

    let consumer = {
        let proxy = Arc::clone(&proxy);
        thread::spawn(move || proxy.assign_timeout(token, Duration::from_secs(10)))
    };
    while proxy.base().moderator().stats().blocks == 0 {
        thread::yield_now();
    }
    // An invalid producer aborts; the consumer must stay blocked.
    assert!(proxy.open(AuthToken(7), Ticket::new(1, "evil")).is_err());
    thread::sleep(Duration::from_millis(30));
    assert!(!consumer.is_finished(), "bad producer must not unblock");
    // A valid producer supplies the item.
    proxy.open(token, Ticket::new(2, "legit")).unwrap();
    assert_eq!(consumer.join().unwrap().unwrap().id.0, 2);
}

/// Dynamic de-adaptation (framework extension): removing the
/// authentication concern returns the system to open access.
#[test]
fn deregistering_auth_reopens_the_system() {
    let (proxy, _auth, _trace) = extended_with_trace();
    let moderator = Arc::clone(proxy.base().moderator());
    assert!(proxy.open(AuthToken(0), Ticket::new(1, "x")).is_err());
    for name in ["open", "assign"] {
        let h = moderator.method(&MethodId::new(name)).unwrap();
        moderator
            .deregister(&h, &Concern::authentication())
            .unwrap();
    }
    // The *extended* proxy still attaches tokens, but with no
    // authentication aspect the bogus token is simply ignored.
    proxy.open(AuthToken(0), Ticket::new(1, "x")).unwrap();
    assert_eq!(proxy.assign(AuthToken(0)).unwrap().id.0, 1);
}

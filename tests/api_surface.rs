//! Class-diagram conformance (paper Figures 4 and 12): the roles the
//! paper assigns to each participant exist with the prescribed
//! relationships, and the public types satisfy the thread-safety bounds
//! a concurrent framework requires.

use std::sync::Arc;

use aspect_moderator::core::{
    Aspect, AspectBank, AspectFactory, AspectModerator, ChainedFactory, Concern, FnAspect,
    InvocationContext, MemoryTrace, MethodHandle, MethodId, Moderated, ModeratorStats, NoopAspect,
    Principal, RegistryFactory, Verdict,
};

#[test]
fn thread_safety_bounds() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<AspectModerator>();
    assert_sync::<AspectModerator>();
    assert_send::<Moderated<Vec<u8>>>();
    assert_sync::<Moderated<Vec<u8>>>();
    assert_send::<Box<dyn Aspect>>();
    assert_send::<Box<dyn AspectFactory>>();
    assert_sync::<Box<dyn AspectFactory>>();
    assert_send::<MethodHandle>();
    assert_sync::<MemoryTrace>();
    assert_send::<InvocationContext>();
    assert_send::<ModeratorStats>();
}

/// Figure 4's Factory Method roles: a *requestor* asks a *creator*
/// (through the factory interface) for a product implementing the
/// aspect interface, then registers it — all through trait objects,
/// i.e. the open extension points of the framework.
#[test]
fn fig4_factory_method_roles_are_trait_objects() {
    struct CustomAspect;
    impl Aspect for CustomAspect {
        fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
            Verdict::Resume
        }
        fn postaction(&mut self, _ctx: &mut InvocationContext) {}
        fn describe(&self) -> &str {
            "custom"
        }
    }

    struct CustomFactory;
    impl AspectFactory for CustomFactory {
        fn create(&self, _method: &MethodId, concern: &Concern) -> Option<Box<dyn Aspect>> {
            (concern == &Concern::new("custom")).then(|| Box::new(CustomAspect) as Box<dyn Aspect>)
        }
    }

    // The requestor (a proxy, here by hand) drives creation through the
    // interface only.
    let factory: Box<dyn AspectFactory> = Box::new(CustomFactory);
    let moderator = AspectModerator::new();
    let m = moderator.declare_method(MethodId::new("op"));
    moderator
        .register_from(factory.as_ref(), &m, Concern::new("custom"))
        .unwrap();
    assert_eq!(moderator.concerns(&m), vec![Concern::new("custom")]);
}

/// Figure 12's composite: the moderator interface exposes exactly the
/// paper's three operations (preactivation, postactivation,
/// registerAspect) plus the declared extensions.
#[test]
fn fig12_moderator_protocol_surface() {
    let moderator = AspectModerator::new();
    let m = moderator.declare_method(MethodId::new("op"));
    moderator
        .register(&m, Concern::audit(), Box::new(NoopAspect))
        .unwrap();
    let mut ctx = InvocationContext::new(m.id().clone(), moderator.next_invocation());
    moderator.preactivation(&m, &mut ctx).unwrap(); // paper: preactivation()
    moderator.postactivation(&m, &mut ctx); // paper: postactivation()
    let removed = moderator.deregister(&m, &Concern::audit()).unwrap(); // extension
    assert_eq!(removed.describe(), "noop");
}

/// Factories chain as the paper's inheritance-based extension did:
/// `ChainedFactory` plays `ExtendedAspectFactory`.
#[test]
fn extended_factory_is_a_factory() {
    let mut base = RegistryFactory::new();
    base.provide_for_concern(Concern::synchronization(), || Box::new(NoopAspect));
    let chained = ChainedFactory::new().with(base);
    // The chain itself satisfies the factory interface, so proxies are
    // oblivious to the extension.
    let as_factory: &dyn AspectFactory = &chained;
    assert!(as_factory
        .create(&MethodId::new("x"), &Concern::synchronization())
        .is_some());
}

/// The bank is usable standalone (the paper presents it as its own
/// abstraction, not private moderator state).
#[test]
fn aspect_bank_is_public_and_standalone() {
    let mut bank = AspectBank::new();
    let open = bank.declare(MethodId::new("open"));
    bank.register(open, Concern::synchronization(), Box::new(NoopAspect))
        .unwrap();
    assert_eq!(bank.method_count(), 1);
    assert_eq!(bank.aspect_count(), 1);
    assert_eq!(bank.method_id(open), &MethodId::new("open"));
}

/// Closure aspects, principals and contexts interoperate without
/// naming any concrete aspect type — the "aspects are first-class
/// values" claim.
#[test]
fn aspects_are_first_class_values() {
    let moderator = AspectModerator::shared();
    let m = moderator.declare_method(MethodId::new("op"));
    // Build an aspect at runtime, pass it around as a value, store it.
    let aspect: Box<dyn Aspect> =
        Box::new(FnAspect::new("dynamic").on_precondition(|ctx| {
            Verdict::resume_or_abort(ctx.principal().is_some(), "anonymous")
        }));
    moderator.register(&m, Concern::new("dyn"), aspect).unwrap();
    let proxy = Moderated::new((), Arc::clone(&moderator));
    assert!(proxy.invoke(&m, |()| ()).is_err());
    assert!(proxy
        .invoke_as(&m, Principal::new("alice"), |()| ())
        .is_ok());
}

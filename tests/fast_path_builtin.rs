//! The built-in observability sinks ride the fast lane.
//!
//! `AuditAspect` and `MetricsAspect` declare the full
//! [`AspectCapabilities`] contract (they are pure observability sinks:
//! always-resume preconditions, no moderator-visible state, bounded
//! internal locks), so a row built from them is fast-lane eligible out
//! of the box — no `FnAspect::declare_capabilities` wrapper needed.
//! This file proves the declaration end to end: the contract itself,
//! single-threaded eligibility with exact sink accounting (CAS-admitted
//! activations skip the chain, so the log and the hub see exactly the
//! locked-path remainder), and a seeded mixed fast/slow storm with the
//! same conservation laws `tests/fast_path.rs` checks for hand-declared
//! rows.
//!
//! Set `AMF_FAST_PATH_SEED` to replay a particular mix.

use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use aspect_moderator::aspects::audit::{AuditAspect, AuditLog, AuditPhase};
use aspect_moderator::aspects::metrics::{MetricsAspect, MetricsHub};
use aspect_moderator::core::{
    Aspect, AspectModerator, Concern, FnAspect, InvocationContext, MethodHandle, MethodId,
    PanicPolicy, Verdict, WakeMode,
};
use aspect_moderator::verify::seed_from_env;

const WATCHDOG: Duration = Duration::from_secs(120);
const DEFAULT_SEED: u64 = 0xFA57_1A4E;

/// Runs `f` on its own thread and fails the test if it does not finish
/// within [`WATCHDOG`].
fn bounded<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("{label}: lost wakeup suspected (no completion in time)"));
    handle.join().unwrap();
    out
}

/// SplitMix64, as in `tests/fast_path.rs`.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One full protocol round trip on `method`.
fn invoke(moderator: &AspectModerator, method: &MethodHandle) {
    let mut ctx = InvocationContext::new(method.id().clone(), moderator.next_invocation());
    moderator.preactivation(method, &mut ctx).unwrap();
    moderator.postactivation(method, &mut ctx);
}

#[test]
fn builtin_sinks_declare_the_full_contract() {
    let audit = AuditAspect::new(AuditLog::shared());
    assert!(audit.capabilities().fast_path_eligible(), "audit");
    let metrics = MetricsAspect::new(MetricsHub::new());
    assert!(metrics.capabilities().fast_path_eligible(), "metrics");
}

/// A row of nothing but the built-in sinks is fast-lane eligible, and
/// the sinks account exactly for the locked-path remainder: every
/// invocation either fast-admits (skipping both callbacks) or runs the
/// chain (one attempt/completed pair in the log, one hub sample).
#[test]
fn audit_metrics_row_is_fast_lane_eligible() {
    let moderator = AspectModerator::builder()
        .panic_policy(PanicPolicy::AbortInvocation)
        .build();
    let observe = moderator.declare_method(MethodId::new("observe"));
    moderator.wire_wakes(&observe, &[]);
    let log = AuditLog::shared();
    let hub = MetricsHub::new();
    moderator
        .register(
            &observe,
            Concern::new("audit"),
            Box::new(AuditAspect::new(Arc::clone(&log))),
        )
        .unwrap();
    moderator
        .register(
            &observe,
            Concern::new("metrics"),
            Box::new(MetricsAspect::new(hub.clone())),
        )
        .unwrap();

    let n: u64 = 64;
    for _ in 0..n {
        invoke(&moderator, &observe);
    }

    let s = moderator.stats();
    assert!(s.fast_path_admits > 0, "built-in row never admitted: {s:?}");
    assert!(s.fast_path_admits <= n, "{s:?}");
    assert_eq!(s.preactivations, n, "{s:?}");
    assert_eq!(s.resumes, n, "{s:?}");

    // Sink accounting: fast admits skip the chain, everything else ran
    // it exactly once.
    let slow = n - s.fast_path_admits;
    assert_eq!(log.len() as u64, 2 * slow, "{s:?}");
    for pair in log.records().chunks(2) {
        assert_eq!(pair[0].phase, AuditPhase::Attempt);
        assert_eq!(pair[1].phase, AuditPhase::Completed);
    }
    let timed = hub.method("observe").map_or(0, |m| m.invocations);
    assert_eq!(timed, slow, "{s:?}");
}

/// Builds the mixed system of `tests/fast_path.rs`, but the fast-lane
/// row carries the *real* library sinks instead of a hand-declared
/// `FnAspect`.
fn sink_system(
    wake_mode: WakeMode,
) -> (
    Arc<AspectModerator>,
    MethodHandle,
    MethodHandle,
    MethodHandle,
    Arc<AuditLog>,
    MetricsHub,
) {
    let moderator = Arc::new(
        AspectModerator::builder()
            .wake_mode(wake_mode)
            .panic_policy(PanicPolicy::AbortInvocation)
            .build(),
    );
    let put = moderator.declare_method(MethodId::new("put"));
    let take = moderator.declare_method(MethodId::new("take"));
    let observe = moderator.declare_method(MethodId::new("observe"));
    moderator.wire_wakes(&put, std::slice::from_ref(&take));
    moderator.wire_wakes(&take, &[]);
    moderator.wire_wakes(&observe, &[]);

    let tokens = Arc::new(parking_lot::Mutex::new(0u64));
    {
        let tokens = Arc::clone(&tokens);
        moderator
            .register(
                &put,
                Concern::new("mint"),
                Box::new(FnAspect::new("mint").on_postaction(move |_| {
                    *tokens.lock() += 1;
                })),
            )
            .unwrap();
    }
    {
        let tokens = Arc::clone(&tokens);
        moderator
            .register(
                &take,
                Concern::synchronization(),
                Box::new(FnAspect::new("guard").on_precondition(move |_| {
                    let mut t = tokens.lock();
                    if *t > 0 {
                        *t -= 1;
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
    }
    let log = AuditLog::shared();
    let hub = MetricsHub::new();
    moderator
        .register(
            &observe,
            Concern::new("audit"),
            Box::new(AuditAspect::new(Arc::clone(&log))),
        )
        .unwrap();
    moderator
        .register(
            &observe,
            Concern::new("metrics"),
            Box::new(MetricsAspect::new(hub.clone())),
        )
        .unwrap();
    (moderator, put, take, observe, log, hub)
}

/// Seeded storm: blocking put/take traffic on the locked path, random
/// bursts of `observe` calls riding the lane, and the sink-accounting
/// law checked at the end — `fast_path_admits` is the regression
/// counter this test pins above zero.
fn sink_storm(wake_mode: WakeMode) {
    let per: u64 = 200;
    let workers = 4;
    let seed = seed_from_env("AMF_FAST_PATH_SEED", DEFAULT_SEED).wrapping_add(0xB111);

    let (moderator, put, take, observe, log, hub) = sink_system(wake_mode);
    let observes = bounded("built-in sink storm", {
        let moderator = Arc::clone(&moderator);
        let (put, take, observe) = (put.clone(), take.clone(), observe.clone());
        move || {
            thread::scope(|s| {
                let mut handles = Vec::new();
                for w in 0..workers * 2 {
                    let moderator = Arc::clone(&moderator);
                    let slow = if w < workers {
                        put.clone()
                    } else {
                        take.clone()
                    };
                    let observe = observe.clone();
                    handles.push(s.spawn(move || {
                        let mut rng = SplitMix(seed.wrapping_add(w));
                        let mut observes = 0u64;
                        for _ in 0..per {
                            for _ in 0..rng.next() % 4 {
                                invoke(&moderator, &observe);
                                observes += 1;
                            }
                            invoke(&moderator, &slow);
                        }
                        observes
                    }));
                }
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
        }
    });

    let s = moderator.stats();
    assert_eq!(s.preactivations, s.resumes + s.aborts + s.timeouts, "{s:?}");
    assert_eq!(s.postactivations, s.resumes, "{s:?}");
    assert_eq!(s.aborts, 0, "{s:?}");
    assert_eq!(s.preactivations, workers * 2 * per + observes, "{s:?}");
    assert!(s.fast_path_admits > 0, "lane never admitted: {s:?}");
    assert!(s.fast_path_admits <= observes, "{s:?}");

    // Every observe either fast-admitted (sinks skipped) or ran the
    // chain exactly once; no record is lost or duplicated under load.
    let slow_observes = observes - s.fast_path_admits;
    assert_eq!(log.len() as u64, 2 * slow_observes, "{s:?}");
    let m = hub.method("observe");
    assert_eq!(m.as_ref().map_or(0, |m| m.invocations), slow_observes);
    assert_eq!(m.map_or(0, |m| m.failures), 0);
}

#[test]
fn builtin_sink_storm_notify_all() {
    sink_storm(WakeMode::NotifyAll);
}

#[test]
fn builtin_sink_storm_notify_one() {
    sink_storm(WakeMode::NotifyOne);
}

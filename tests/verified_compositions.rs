//! Exhaustive verification of the compositions this repository actually
//! ships, answering the paper's closing question ("should it further
//! enable formal verification of system properties?") in the
//! affirmative: the model checker explores *every* interleaving of the
//! moderation protocol for small configurations.

use aspect_moderator::verify::{aspects, Checker, ModelSystem, ModelVerdict, Outcome};

/// Shared state of the bounded-buffer model — the same counters the
/// real `ProducerSync`/`ConsumerSync` aspects keep.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
struct Buf {
    reserved: usize,
    produced: usize,
    producing: bool,
    consuming: bool,
}

fn buffer_system(
    capacity: usize,
) -> (
    ModelSystem<Buf>,
    aspect_moderator::verify::MethodIx,
    aspect_moderator::verify::MethodIx,
) {
    let mut sys = ModelSystem::new();
    let put = sys.method("put");
    let take = sys.method("take");
    sys.add_aspect(
        put,
        "sync",
        aspects::buffer_producer(
            capacity,
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.producing,
        ),
    );
    sys.add_aspect(
        take,
        "sync",
        aspects::buffer_consumer(
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.consuming,
        ),
    );
    (sys, put, take)
}

/// The paper's producer/consumer composition is deadlock-free and never
/// violates the buffer invariants, for every interleaving of balanced
/// workloads across several capacities and thread counts.
#[test]
fn bounded_buffer_verified_exhaustively() {
    for capacity in [1usize, 2] {
        for (producers, consumers, ops) in [(1, 1, 3), (2, 1, 2), (2, 2, 2)] {
            let (sys, put, take) = buffer_system(capacity);
            let mut checker = Checker::new(sys)
                .invariant(move |s: &Buf| s.reserved <= capacity && s.produced <= s.reserved)
                .final_invariant(|s: &Buf| {
                    // Balanced workload: buffer fully drained, nothing
                    // reserved, nobody mid-flight.
                    *s == Buf::default()
                });
            // Balanced scripts: total puts == total takes.
            let total = producers * ops;
            assert_eq!(total % consumers, 0);
            for _ in 0..producers {
                checker = checker.thread(vec![put; ops]);
            }
            for _ in 0..consumers {
                checker = checker.thread(vec![take; total / consumers]);
            }
            let result = checker.run(Buf::default());
            assert_eq!(
                result.outcome,
                Outcome::Ok,
                "cap={capacity} p={producers} c={consumers} ops={ops}: {result:?}"
            );
            assert!(result.states > 0);
        }
    }
}

/// An *unbalanced* workload (more takes than puts) must deadlock — the
/// checker proves the blocking is real, not vacuous.
#[test]
fn starved_consumer_is_detected() {
    let (sys, put, take) = buffer_system(1);
    let result = Checker::new(sys)
        .thread(vec![put])
        .thread(vec![take, take])
        .run(Buf::default());
    match result.outcome {
        Outcome::Deadlock(trace) => {
            let last = trace.last().unwrap().to_string();
            assert!(
                last.contains("blocked") || last.contains("post"),
                "{trace:?}"
            );
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

/// The E7 composition anomaly, proven exhaustively: with the paper's
/// literal (no-rollback) semantics there EXISTS an interleaving that
/// deadlocks; with the framework's rollback there exists none.
#[test]
fn rollback_fixes_the_anomaly_in_all_interleavings() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct S {
        pool_busy: bool,
        gate_open: bool,
    }
    let build = || {
        let mut sys = ModelSystem::<S>::new();
        let a = sys.method("a");
        let b = sys.method("b");
        sys.add_aspect(a, "gate", aspects::guard(|s: &S| s.gate_open));
        sys.add_aspect(
            a,
            "pool",
            aspects::reserve(
                |s: &S| !s.pool_busy,
                |s: &mut S| s.pool_busy = true,
                |s: &mut S| s.pool_busy = false,
            ),
        );
        sys.add_aspect(
            b,
            "pool",
            aspects::reserve(
                |s: &S| !s.pool_busy,
                |s: &mut S| s.pool_busy = true,
                |s: &mut S| s.pool_busy = false,
            ),
        );
        // b's completion opens a's gate.
        sys.set_body(b, |s: &mut S| s.gate_open = true);
        (sys, a, b)
    };

    let (sys, a, b) = build();
    let with_rollback = Checker::new(sys.rollback(true))
        .thread(vec![a])
        .thread(vec![b])
        .run(S::default());
    assert_eq!(with_rollback.outcome, Outcome::Ok);

    let (sys, a, b) = build();
    let without = Checker::new(sys.rollback(false))
        .thread(vec![a])
        .thread(vec![b])
        .run(S::default());
    assert!(
        matches!(without.outcome, Outcome::Deadlock(_)),
        "paper-literal semantics must exhibit the leak: {without:?}"
    );
}

/// Authentication-style aborting aspects never deadlock a system — they
/// fail activations instead of parking them (verified over the mixed
/// composition of the extended ticketing system).
#[test]
fn aborting_aspects_terminate() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct S {
        authenticated: bool,
        reserved: usize,
        produced: usize,
        producing: bool,
        consuming: bool,
    }
    let mut sys = ModelSystem::new();
    let open = sys.method("open");
    let assign = sys.method("assign");
    sys.add_aspect(
        open,
        "sync",
        aspects::buffer_producer(
            1,
            |s: &mut S| &mut s.reserved,
            |s: &mut S| &mut s.produced,
            |s: &mut S| &mut s.producing,
        ),
    );
    sys.add_aspect(
        assign,
        "sync",
        aspects::buffer_consumer(
            |s: &mut S| &mut s.reserved,
            |s: &mut S| &mut s.produced,
            |s: &mut S| &mut s.consuming,
        ),
    );
    // AUTH registered second => outermost (Figure 14). Nobody is
    // authenticated, so every op aborts — and must terminate without
    // touching the buffer.
    for m in [open, assign] {
        sys.add_aspect(m, "auth", aspects::abort_unless(|s: &S| s.authenticated));
    }
    let result = Checker::new(sys)
        .thread(vec![open, open])
        .thread(vec![assign])
        .invariant(|s: &S| s.reserved == 0 && s.produced == 0)
        .run(S::default());
    assert_eq!(result.outcome, Outcome::Ok);
}

/// The checkout-style stacked composition — counting gate wrapping a
/// resource pool (modeled as a second counting gate of the same size)
/// — is deadlock-free and never over-admits, in every interleaving.
#[test]
fn stacked_gates_verified() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct S {
        leases: usize,
        running: usize,
        peak: usize,
    }
    let mut sys = ModelSystem::new();
    let charge = sys.method("charge");
    // Inner: lease (registered first). Outer: concurrency gate.
    sys.add_aspect(
        charge,
        "lease",
        aspects::counting_gate(2, |s: &mut S| &mut s.leases),
    );
    sys.add_aspect(
        charge,
        "limit",
        aspects::counting_gate(2, |s: &mut S| &mut s.running),
    );
    sys.set_body(charge, |s: &mut S| s.peak = s.peak.max(s.leases));
    let result = Checker::new(sys)
        .thread(vec![charge, charge])
        .thread(vec![charge, charge])
        .thread(vec![charge])
        .invariant(|s: &S| s.leases <= 2 && s.running <= 2)
        .run(S::default());
    assert_eq!(result.outcome, Outcome::Ok, "{result:?}");
}

/// Mismatched stacked gates — an inner gate *smaller* than the outer
/// one — leak outer admissions without rollback: the blocked caller's
/// outer reservation is never returned. The outer gate's spare
/// capacity masks the leak from deadlock detection, but the quiescence
/// invariant ("every reservation returned") catches it.
#[test]
fn mismatched_gates_leak_without_rollback() {
    #[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
    struct S {
        inner: usize,
        outer: usize,
    }
    let build = || {
        let mut sys = ModelSystem::new();
        let op = sys.method("op");
        sys.add_aspect(
            op,
            "inner",
            aspects::counting_gate(1, |s: &mut S| &mut s.inner),
        );
        sys.add_aspect(
            op,
            "outer",
            aspects::counting_gate(2, |s: &mut S| &mut s.outer),
        );
        (sys, op)
    };
    let quiescent = |s: &S| s.inner == 0 && s.outer == 0;

    let (sys, op) = build();
    let ok = Checker::new(sys.rollback(true))
        .thread(vec![op, op])
        .thread(vec![op, op])
        .thread(vec![op])
        .final_invariant(quiescent)
        .run(S::default());
    assert_eq!(ok.outcome, Outcome::Ok, "{ok:?}");

    let (sys, op) = build();
    let bad = Checker::new(sys.rollback(false))
        .thread(vec![op, op])
        .thread(vec![op, op])
        .thread(vec![op])
        .final_invariant(quiescent)
        .run(S::default());
    assert!(
        matches!(bad.outcome, Outcome::FinalInvariantViolation(_)),
        "outer-gate leak must be caught at quiescence: {bad:?}"
    );
}

/// Differential check: the model's buffer aspects and the real
/// `amf-aspects` implementations make identical decisions on identical
/// schedules.
#[test]
fn model_matches_real_sync_aspects() {
    use amf_aspects::sync::bounded_buffer_sync;
    use amf_core::{Aspect, InvocationContext, MethodId};

    let capacity = 2;
    let model_p = aspects::buffer_producer(
        capacity,
        |s: &mut Buf| &mut s.reserved,
        |s: &mut Buf| &mut s.produced,
        |s: &mut Buf| &mut s.producing,
    );
    let model_c = aspects::buffer_consumer(
        |s: &mut Buf| &mut s.reserved,
        |s: &mut Buf| &mut s.produced,
        |s: &mut Buf| &mut s.consuming,
    );
    let (mut real_p, mut real_c, handle) = bounded_buffer_sync(capacity);
    let mut model_state = Buf::default();
    let mut ctx = InvocationContext::new(MethodId::new("m"), 1);

    // A deterministic pseudo-random schedule of admissible steps.
    let mut in_p = false;
    let mut in_c = false;
    let mut seed = 0x2545_f491_4f6c_dd1d_u64;
    for _ in 0..500 {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        match seed % 4 {
            0 if !in_p => {
                let model_v = model_p.pre(&mut model_state);
                let real_v = real_p.precondition(&mut ctx);
                assert_eq!(model_v == ModelVerdict::Resume, real_v.is_resume());
                if real_v.is_resume() {
                    in_p = true;
                }
            }
            1 if in_p => {
                model_p.post(&mut model_state);
                real_p.postaction(&mut ctx);
                in_p = false;
            }
            2 if !in_c => {
                let model_v = model_c.pre(&mut model_state);
                let real_v = real_c.precondition(&mut ctx);
                assert_eq!(model_v == ModelVerdict::Resume, real_v.is_resume());
                if real_v.is_resume() {
                    in_c = true;
                }
            }
            3 if in_c => {
                model_c.post(&mut model_state);
                real_c.postaction(&mut ctx);
                in_c = false;
            }
            _ => {}
        }
        let real = handle.snapshot();
        assert_eq!(model_state.reserved, real.reserved);
        assert_eq!(model_state.produced, real.produced);
        assert_eq!(model_state.producing, real.producing);
        assert_eq!(model_state.consuming, real.consuming);
    }
}

//! Property tests of the moderation protocol itself: for *random*
//! aspect chains and workloads, the framework's accounting balances.
//!
//! The central invariant is **reservation balance**: every precondition
//! that resumed is matched by exactly one postaction (the activation
//! completed) or exactly one release (a later aspect blocked/aborted
//! and the chain rolled back). An unbalanced aspect is precisely the
//! leak of experiment E7.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use aspect_moderator::core::{
    Aspect, AspectModerator, Concern, InvocationContext, MethodId, Moderated, ReleaseCause, Verdict,
};
use proptest::prelude::*;

/// What a chain position does, chosen by proptest.
#[derive(Debug, Clone, Copy)]
enum Behavior {
    /// Always resume.
    Resume,
    /// Block this many times per invocation, then resume.
    BlockThen(u8),
    /// Abort every `n`-th invocation it sees, resume otherwise.
    AbortEvery(u8),
}

fn behavior() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        Just(Behavior::Resume),
        (1..3u8).prop_map(Behavior::BlockThen),
        (2..5u8).prop_map(Behavior::AbortEvery),
    ]
}

/// Counters shared with the test harness.
#[derive(Debug, Default)]
struct Accounting {
    resumed: AtomicU64,
    posted: AtomicU64,
    released: AtomicU64,
}

/// An instrumented aspect implementing one [`Behavior`].
struct Probe {
    behavior: Behavior,
    accounting: Arc<Accounting>,
    /// Per-invocation remaining blocks (keyed by invocation id).
    pending_blocks: std::collections::HashMap<u64, u8>,
    seen: u64,
}

impl Aspect for Probe {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        match self.behavior {
            Behavior::Resume => {
                self.accounting.resumed.fetch_add(1, Ordering::SeqCst);
                Verdict::Resume
            }
            Behavior::BlockThen(n) => {
                let left = self.pending_blocks.entry(ctx.invocation()).or_insert(n);
                if *left > 0 {
                    *left -= 1;
                    Verdict::Block
                } else {
                    self.pending_blocks.remove(&ctx.invocation());
                    self.accounting.resumed.fetch_add(1, Ordering::SeqCst);
                    Verdict::Resume
                }
            }
            Behavior::AbortEvery(n) => {
                self.seen += 1;
                if self.seen.is_multiple_of(u64::from(n)) {
                    Verdict::abort("scripted abort")
                } else {
                    self.accounting.resumed.fetch_add(1, Ordering::SeqCst);
                    Verdict::Resume
                }
            }
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {
        self.accounting.posted.fetch_add(1, Ordering::SeqCst);
    }

    fn on_release(&mut self, _ctx: &InvocationContext, _cause: ReleaseCause) {
        self.accounting.released.fetch_add(1, Ordering::SeqCst);
    }

    fn on_cancel(&mut self, ctx: &InvocationContext) {
        self.pending_blocks.remove(&ctx.invocation());
    }

    fn describe(&self) -> &str {
        "instrumented probe"
    }
}

/// Drives the chain with **bounded waits**: blocking probes can leave
/// every thread parked at once (nobody left to notify), which is a
/// legitimate protocol outcome — the caller times out, `on_cancel`
/// cleans up enrollments, and the balance invariant must still hold.
fn run_chain(behaviors: &[Behavior], invocations: u64, threads: u64) -> Vec<Arc<Accounting>> {
    let moderator = AspectModerator::shared();
    let op = moderator.declare_method(MethodId::new("op"));
    let mut accounts = Vec::new();
    for (i, b) in behaviors.iter().enumerate() {
        let accounting = Arc::new(Accounting::default());
        accounts.push(Arc::clone(&accounting));
        moderator
            .register(
                &op,
                Concern::new(format!("probe-{i}")),
                Box::new(Probe {
                    behavior: *b,
                    accounting,
                    pending_blocks: std::collections::HashMap::new(),
                    seen: 0,
                }),
            )
            .unwrap();
    }
    let proxy = Arc::new(Moderated::new(0_u64, Arc::clone(&moderator)));
    std::thread::scope(|s| {
        for _ in 0..threads {
            let proxy = Arc::clone(&proxy);
            let op = op.clone();
            s.spawn(move || {
                for _ in 0..invocations {
                    // Aborts and timeouts are both expected outcomes.
                    let _ = proxy
                        .invoke_timeout(&op, std::time::Duration::from_millis(50), |c| *c += 1);
                }
            });
        }
    });
    accounts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Reservation balance: resumed == posted + released for every
    /// aspect in the chain, whatever the chain shape and thread count.
    #[test]
    fn reservation_balance_holds(
        behaviors in proptest::collection::vec(behavior(), 1..5),
        threads in 1..3u64,
    ) {
        let accounts = run_chain(&behaviors, 12, threads);
        for (i, a) in accounts.iter().enumerate() {
            let resumed = a.resumed.load(Ordering::SeqCst);
            let posted = a.posted.load(Ordering::SeqCst);
            let released = a.released.load(Ordering::SeqCst);
            prop_assert_eq!(
                resumed,
                posted + released,
                "probe {} (behavior {:?}) unbalanced: resumed={} posted={} released={}",
                i, behaviors[i], resumed, posted, released
            );
        }
    }
}

/// Deterministic corner: an all-blocking chain with two threads — the
/// pathological ping-pong — still balances and completes.
#[test]
fn ping_pong_blockers_balance() {
    let accounts = run_chain(&[Behavior::BlockThen(2), Behavior::BlockThen(1)], 25, 2);
    for a in &accounts {
        assert_eq!(
            a.resumed.load(Ordering::SeqCst),
            a.posted.load(Ordering::SeqCst) + a.released.load(Ordering::SeqCst)
        );
    }
}

/// Stats-level balance for the same random-ish workload.
#[test]
fn moderator_stats_balance_under_aborts() {
    let moderator = AspectModerator::shared();
    let op = moderator.declare_method(MethodId::new("op"));
    moderator
        .register(
            &op,
            Concern::new("flaky"),
            Box::new(Probe {
                behavior: Behavior::AbortEvery(3),
                accounting: Arc::new(Accounting::default()),
                pending_blocks: std::collections::HashMap::new(),
                seen: 0,
            }),
        )
        .unwrap();
    let proxy = Moderated::new(0_u32, Arc::clone(&moderator));
    let mut ok = 0;
    let mut failed = 0;
    for _ in 0..99 {
        match proxy.invoke(&op, |c| *c += 1) {
            Ok(()) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    assert_eq!(ok, 66);
    assert_eq!(failed, 33);
    let s = moderator.stats();
    assert_eq!(s.preactivations, 99);
    assert_eq!(s.resumes, 66);
    assert_eq!(s.aborts, 33);
    assert_eq!(s.postactivations, 66);
}

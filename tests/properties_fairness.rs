//! Fairness property: under `FairnessPolicy::Fifo` the grant order of
//! blocked callers equals their park order — zero wake-order
//! inversions — across randomized interleavings and both `WakeMode`s.
//!
//! Each iteration runs a token-gated method (`open` blocks until `tick`
//! mints a token, the minimal shape in which wake order is observable)
//! with randomized thread counts and arrival jitter, then replays the
//! protocol trace: the first `WaitStarted` per invocation fixes park
//! order, `ActivationResumed` fixes grant order, and both are recorded
//! under the method's cell lock so trace order is queue order.
//!
//! Together the two tests explore ≥ 1000 randomized interleavings
//! (500 per wake mode). The jitter schedule is driven by a seeded RNG;
//! set `AMF_FAIRNESS_SEED` to reproduce a failing schedule (CI pins
//! it).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use aspect_moderator::core::trace::EventKind;
use aspect_moderator::core::{
    AspectModerator, Concern, FairnessPolicy, FnAspect, InvocationContext, MemoryTrace, MethodId,
    Verdict, WakeMode,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITERATIONS: usize = 500;
const DEFAULT_SEED: u64 = 0x5eed_fa18;
const WATCHDOG: Duration = Duration::from_secs(300);

fn seed() -> u64 {
    aspect_moderator::verify::seed_from_env("AMF_FAIRNESS_SEED", DEFAULT_SEED)
}

/// Runs `f` on its own thread and fails the test if it does not finish
/// within [`WATCHDOG`] — a lost wakeup (or a fairness bug that strands
/// a queued caller) shows up as a hang, not just an inversion.
fn bounded<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    let out = rx
        .recv_timeout(WATCHDOG)
        .unwrap_or_else(|_| panic!("{label}: hang (seed {})", seed()));
    handle.join().unwrap();
    out
}

/// Declares the token gate: `open` consumes a token or blocks; `tick`
/// mints one in its postaction and its completion notifies `open`'s
/// queue.
fn gated(
    m: &AspectModerator,
    tokens: &Arc<AtomicU64>,
) -> (
    aspect_moderator::core::MethodHandle,
    aspect_moderator::core::MethodHandle,
) {
    let open = m.declare_method(MethodId::new("open"));
    let tick = m.declare_method(MethodId::new("tick"));
    {
        let tokens = Arc::clone(tokens);
        m.register(
            &open,
            Concern::synchronization(),
            Box::new(FnAspect::new("token-gate").on_precondition(move |_| {
                if tokens.load(Ordering::SeqCst) > 0 {
                    tokens.fetch_sub(1, Ordering::SeqCst);
                    Verdict::Resume
                } else {
                    Verdict::Block
                }
            })),
        )
        .unwrap();
    }
    {
        let tokens = Arc::clone(tokens);
        m.register(
            &tick,
            Concern::new("mint"),
            Box::new(FnAspect::new("mint").on_postaction(move |_| {
                tokens.fetch_add(1, Ordering::SeqCst);
            })),
        )
        .unwrap();
    }
    m.wire_wakes(&tick, std::slice::from_ref(&open));
    m.wire_wakes(&open, &[]);
    (open, tick)
}

fn invoke(m: &AspectModerator, h: &aspect_moderator::core::MethodHandle) {
    let mut ctx = InvocationContext::new(h.id().clone(), m.next_invocation());
    m.preactivation(h, &mut ctx).unwrap();
    m.postactivation(h, &mut ctx);
}

/// Replays `trace` for `method`: (park order, grant order restricted to
/// invocations that parked). Zero inversions ⇔ the two are equal.
fn park_and_grant_order(trace: &MemoryTrace, method: &MethodId) -> (Vec<u64>, Vec<u64>) {
    let mut park = Vec::new();
    let mut grant = Vec::new();
    for e in trace.events() {
        if e.method != *method {
            continue;
        }
        match e.kind {
            // Re-blocks emit further WaitStarted events; the first one
            // per invocation is where its ticket was issued.
            EventKind::WaitStarted if !park.contains(&e.invocation) => {
                park.push(e.invocation);
            }
            EventKind::ActivationResumed => grant.push(e.invocation),
            _ => {}
        }
    }
    let granted_parked = grant.iter().copied().filter(|i| park.contains(i)).collect();
    (park, granted_parked)
}

/// One randomized interleaving; returns how many callers actually
/// parked (the interesting subset).
fn one_interleaving(mode: WakeMode, rng: &mut StdRng) -> usize {
    let tokens = Arc::new(AtomicU64::new(0));
    let trace = MemoryTrace::shared();
    let moderator = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .wake_mode(mode)
            .trace(trace.clone())
            .build(),
    );
    let (open, tick) = gated(&moderator, &tokens);

    let waiters = rng.gen_range(2..6usize);
    let open_jitter: Vec<u32> = (0..waiters).map(|_| rng.gen_range(0..1500)).collect();
    let tick_jitter: Vec<u32> = (0..waiters).map(|_| rng.gen_range(0..1500)).collect();
    thread::scope(|s| {
        for spins in open_jitter {
            let moderator = Arc::clone(&moderator);
            let open = open.clone();
            s.spawn(move || {
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
                invoke(&moderator, &open);
            });
        }
        let moderator = Arc::clone(&moderator);
        let tick = tick.clone();
        s.spawn(move || {
            for spins in tick_jitter {
                for _ in 0..spins {
                    std::hint::spin_loop();
                }
                invoke(&moderator, &tick);
            }
        });
    });

    let (park, granted_parked) = park_and_grant_order(&trace, open.id());
    assert_eq!(
        granted_parked,
        park,
        "wake-order inversion under {mode:?} (seed {})",
        seed()
    );
    let s = moderator.stats();
    assert_eq!(s.resumes, 2 * waiters as u64);
    assert_eq!(s.tickets_issued, s.tickets_served, "{s:?}");
    assert_eq!(s.tickets_issued, park.len() as u64, "{s:?}");
    park.len()
}

fn zero_inversions(mode: WakeMode) {
    let parked_total = bounded("fairness property", move || {
        let mut rng = StdRng::seed_from_u64(seed() ^ mode as u64);
        (0..ITERATIONS)
            .map(|_| one_interleaving(mode, &mut rng))
            .sum::<usize>()
    });
    // The scenario must actually exercise queued wakeups, not resolve
    // every call on its first pass.
    assert!(
        parked_total >= ITERATIONS / 2,
        "only {parked_total} parked callers across {ITERATIONS} interleavings"
    );
}

#[test]
fn grant_order_equals_park_order_notify_all() {
    zero_inversions(WakeMode::NotifyAll);
}

#[test]
fn grant_order_equals_park_order_notify_one() {
    zero_inversions(WakeMode::NotifyOne);
}

//! Multi-process ring topology: three `peer_node` OS processes wired
//! over real TCP, one of them killed with SIGKILL mid-circulation.
//!
//! This is the integration level above `crates/service/tests/
//! peer_wire.rs` (in-process nodes) — here every node is a separate
//! process speaking the harness protocol of `src/bin/peer_node.rs`
//! (`READY` line, successor address on stdin, periodic `STATS` lines),
//! and the fault is a real `kill -9`: no destructors, no FIN, just a
//! peer that stops answering. The survivors must expire the in-flight
//! handoff, reclaim the lease, moderate it locally in degraded mode,
//! and re-sync when a replacement process takes the dead node's seat.

#![cfg(unix)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct NodeProc {
    child: Child,
    addr: String,
    lines: Arc<Mutex<Vec<String>>>,
}

impl NodeProc {
    /// Spawns a `peer_node` process and waits for its `READY` line.
    fn spawn(node: u64, listen: &str, seed_leases: u64, visits: u64) -> NodeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_peer_node"))
            .args([
                "--node",
                &node.to_string(),
                "--listen",
                listen,
                "--seed-leases",
                &seed_leases.to_string(),
                "--visits",
                &visits.to_string(),
                "--expiry-ms",
                "150",
                "--visit-delay-ms",
                "50",
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn peer_node");
        let mut reader = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut ready = String::new();
        reader.read_line(&mut ready).expect("read READY");
        let addr = ready
            .trim()
            .strip_prefix("READY ")
            .unwrap_or_else(|| panic!("expected READY line, got {ready:?}"))
            .to_string();
        let lines = Arc::new(Mutex::new(Vec::new()));
        {
            let lines = Arc::clone(&lines);
            std::thread::spawn(move || {
                for line in reader.lines() {
                    match line {
                        Ok(l) => lines.lock().unwrap().push(l),
                        Err(_) => break,
                    }
                }
            });
        }
        NodeProc { child, addr, lines }
    }

    /// Sends the successor address (the one stdin line the node waits
    /// for) and keeps stdin open so the node runs until told otherwise.
    fn wire(&mut self, next: &str) {
        let stdin = self.child.stdin.as_mut().expect("child stdin");
        writeln!(stdin, "{next}").expect("write successor");
        stdin.flush().expect("flush successor");
    }

    /// The most recent `STATS` line, parsed to a key → value map.
    fn stats(&self) -> Option<HashMap<String, String>> {
        let lines = self.lines.lock().unwrap();
        let last = lines.iter().rev().find(|l| l.starts_with("STATS "))?;
        Some(
            last["STATS ".len()..]
                .split_whitespace()
                .filter_map(|kv| kv.split_once('='))
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        )
    }

    fn stat_u64(&self, key: &str) -> u64 {
        self.stats()
            .and_then(|s| s.get(key).and_then(|v| v.parse().ok()))
            .unwrap_or(0)
    }

    fn retired_ids(&self) -> Vec<u64> {
        self.stats()
            .and_then(|s| s.get("retired_ids").cloned())
            .map(|ids| ids.split(',').filter_map(|i| i.parse().ok()).collect())
            .unwrap_or_default()
    }

    /// `kill -9`: the fault under test. No destructors run in the
    /// child; its sockets simply vanish.
    fn kill9(&mut self) {
        self.child.kill().expect("SIGKILL peer_node");
        let _ = self.child.wait();
    }

    /// Clean shutdown: close stdin (EOF) and wait for exit.
    fn shutdown(&mut self) {
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }
}

impl Drop for NodeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn wait_until(what: &str, deadline: Duration, mut pred: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !pred() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn ring_survives_kill_dash_nine_of_one_node() {
    // One lease, twelve visits, paced at 50 ms per visit so the parent
    // can place the kill while the lease is provably *not* at the
    // victim: after the lease completes a full lap (delivered at node
    // 0), it sits through node 0's and node 1's visit delays — a
    // ≥100 ms window our 10 ms poll easily hits — before it can reach
    // node 2 again.
    let visits = 12;
    let mut n0 = NodeProc::spawn(0, "127.0.0.1:0", 1, visits);
    let mut n1 = NodeProc::spawn(1, "127.0.0.1:0", 0, 0);
    let mut n2 = NodeProc::spawn(2, "127.0.0.1:0", 0, 0);
    let (a0, a1, a2) = (n0.addr.clone(), n1.addr.clone(), n2.addr.clone());
    n0.wire(&a1);
    n1.wire(&a2);
    n2.wire(&a0);

    // Phase 1: the ring circulates — the lease makes it all the way
    // around and back to node 0.
    wait_until("a full lap of the ring", Duration::from_secs(30), || {
        n0.stat_u64("delivered") >= 1
    });

    // Phase 2: SIGKILL node 2 mid-circulation. Node 1's next handoff
    // has no receiver: it must retransmit, expire, reclaim the lease,
    // and go degraded — while continuing to moderate visits locally.
    n2.kill9();
    wait_until(
        "node 1 to reclaim the severed handoff and degrade",
        Duration::from_secs(30),
        || n1.stat_u64("reclaimed") >= 1 && n1.stats().is_some_and(|s| s["degraded_now"] == "true"),
    );
    wait_until(
        "degraded admissions to be counted at node 1",
        Duration::from_secs(30),
        || n1.stat_u64("degraded_entries") >= 1,
    );
    assert!(
        n1.stat_u64("retransmits") >= 1,
        "the lost handoff must be retransmitted before it expires"
    );

    // Phase 3: a replacement process takes the dead node's seat (same
    // address). Node 1 must re-sync — pending releases get acked, the
    // degraded spell ends — and the ring circulates again.
    let mut n2b = NodeProc::spawn(2, &a2, 0, 0);
    n2b.wire(&a0);
    wait_until(
        "node 1 to rejoin once the replacement is up",
        Duration::from_secs(30),
        || n1.stat_u64("rejoins") >= 1 && n1.stats().is_some_and(|s| s["degraded_now"] == "false"),
    );

    // Phase 4: the lease retires exactly once, somewhere.
    wait_until("the lease to retire", Duration::from_secs(60), || {
        n0.stat_u64("retired") + n1.stat_u64("retired") + n2b.stat_u64("retired") >= 1
    });
    let mut retired: Vec<u64> = n0.retired_ids();
    retired.extend(n1.retired_ids());
    retired.extend(n2b.retired_ids());
    retired.sort_unstable();
    assert_eq!(
        retired,
        vec![0],
        "the lease retires exactly once, nowhere twice"
    );

    n0.shutdown();
    n1.shutdown();
    n2b.shutdown();
}

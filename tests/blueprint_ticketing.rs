//! Blueprint × real factories: the paper's ticketing composition wired
//! declaratively, validated up front, then driven under threads.

use std::sync::Arc;

use aspect_moderator::aspects::auth::Authenticator;
use aspect_moderator::concurrency::RingBuffer;
use aspect_moderator::core::{
    AspectModerator, Blueprint, ChainedFactory, Concern, InvocationContext, Moderated,
    RegistrationError,
};
use aspect_moderator::ticketing::{TicketAuthFactory, TicketSyncFactory};

fn ticketing_blueprint() -> Blueprint {
    Blueprint::new()
        .method("open", [Concern::synchronization()])
        .method("assign", [Concern::synchronization()])
        .wake("open", ["assign"])
        .wake("assign", ["open"])
}

#[test]
fn blueprint_builds_the_paper_composition() {
    let factory = TicketSyncFactory::new(4);
    let moderator = AspectModerator::shared();
    let handles = ticketing_blueprint()
        .apply(&moderator, &factory)
        .expect("factory covers both cells");

    // Drive a tiny producer/consumer workload over a raw ring buffer.
    let proxy = Arc::new(Moderated::new(
        RingBuffer::<u64>::with_capacity(4),
        Arc::clone(&moderator),
    ));
    let open = handles["open"].clone();
    let assign = handles["assign"].clone();
    std::thread::scope(|s| {
        let producer = Arc::clone(&proxy);
        s.spawn(move || {
            for i in 0..200 {
                producer
                    .invoke(&open, |rb| rb.push_back(i).expect("guarded"))
                    .unwrap();
            }
        });
        let consumer = Arc::clone(&proxy);
        s.spawn(move || {
            let mut prev = None;
            for _ in 0..200 {
                let v = consumer
                    .invoke(&assign, |rb| rb.pop_front().expect("guarded"))
                    .unwrap();
                if let Some(p) = prev {
                    assert!(v > p, "FIFO order");
                }
                prev = Some(v);
            }
        });
    });
    assert!(proxy.with_component(|rb| rb.is_empty()));
    let snap = factory.buffer_handle().snapshot();
    assert_eq!((snap.reserved, snap.produced), (0, 0));
}

#[test]
fn blueprint_validation_catches_missing_auth_cells() {
    // Ask for authentication too, but supply only the sync factory:
    // both auth cells are reported, nothing is registered.
    let blueprint = Blueprint::new()
        .method(
            "open",
            [Concern::synchronization(), Concern::authentication()],
        )
        .method(
            "assign",
            [Concern::synchronization(), Concern::authentication()],
        );
    let moderator = AspectModerator::shared();
    let problems = blueprint
        .apply(&moderator, &TicketSyncFactory::new(4))
        .unwrap_err();
    assert_eq!(problems.len(), 2);
    assert!(problems
        .iter()
        .all(|p| matches!(p, RegistrationError::FactoryRefused { .. })));
    assert!(moderator.methods().is_empty());
}

#[test]
fn blueprint_with_chained_factory_covers_the_extension() {
    // Figure 15 via blueprint: chain auth over sync, ask for both
    // concerns per method, everything validates.
    let auth = Authenticator::shared();
    auth.add_user("ops", "pw");
    let sync = TicketSyncFactory::new(2);
    let buffer = sync.buffer_handle();
    let chained = ChainedFactory::new()
        .with(TicketAuthFactory::new(Arc::clone(&auth)))
        .with(sync);
    let blueprint = Blueprint::new()
        .method(
            "open",
            [Concern::synchronization(), Concern::authentication()],
        )
        .method(
            "assign",
            [Concern::synchronization(), Concern::authentication()],
        )
        .wake("open", ["assign"])
        .wake("assign", ["open"]);
    let moderator = AspectModerator::shared();
    let handles = blueprint.apply(&moderator, &chained).unwrap();

    let proxy = Moderated::new(RingBuffer::<u64>::with_capacity(2), Arc::clone(&moderator));
    // Anonymous: vetoed by the outermost auth aspect.
    let veto = proxy
        .invoke(&handles["open"], |rb| rb.push_back(1).unwrap())
        .unwrap_err();
    assert_eq!(veto.concern().unwrap(), &Concern::authentication());

    // Authenticated: flows through both concerns.
    let token = auth.login("ops", "pw").unwrap();
    let mut ctx = InvocationContext::new(handles["open"].id().clone(), moderator.next_invocation());
    ctx.insert(token);
    let guard = proxy.enter_with(&handles["open"], ctx).unwrap();
    guard.component().push_back(9).unwrap();
    guard.complete();
    assert_eq!(buffer.snapshot().produced, 1);
}

//! The composition anomaly and its fix (experiment E7 as a test): with
//! two aspects on one method, a reservation made by an outer aspect
//! must be released when an inner aspect blocks or aborts — otherwise
//! unrelated methods sharing the reserved resource starve.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use aspect_moderator::aspects::sync::ExclusionGroup;
use aspect_moderator::core::{
    AspectModerator, Concern, FnAspect, MethodId, Moderated, RollbackPolicy, Verdict,
};

struct Anomaly {
    moderator: Arc<AspectModerator>,
    proxy: Arc<Moderated<u64>>,
    a: aspect_moderator::core::MethodHandle,
    b: aspect_moderator::core::MethodHandle,
    gate: Arc<AtomicBool>,
    pool: ExclusionGroup,
}

/// Methods `a` and `b` share a capacity-1 pool; `a` additionally blocks
/// on a gate that starts closed. Nested ordering on `a`: pool (newest)
/// reserves first, then the gate blocks.
fn build(policy: RollbackPolicy) -> Anomaly {
    let moderator = Arc::new(AspectModerator::builder().rollback(policy).build());
    let a = moderator.declare_method(MethodId::new("a"));
    let b = moderator.declare_method(MethodId::new("b"));
    let pool = ExclusionGroup::new();
    let gate = Arc::new(AtomicBool::new(false));
    {
        let gate = Arc::clone(&gate);
        moderator
            .register(
                &a,
                Concern::new("gate"),
                Box::new(
                    FnAspect::new("gate")
                        .on_precondition(move |_| Verdict::resume_if(gate.load(Ordering::SeqCst))),
                ),
            )
            .unwrap();
    }
    moderator
        .register(&a, Concern::new("pool"), Box::new(pool.aspect()))
        .unwrap();
    moderator
        .register(&b, Concern::new("pool"), Box::new(pool.aspect()))
        .unwrap();
    let proxy = Arc::new(Moderated::new(0, Arc::clone(&moderator)));
    Anomaly {
        moderator,
        proxy,
        a,
        b,
        gate,
        pool,
    }
}

fn block_a(anomaly: &Anomaly) -> thread::JoinHandle<()> {
    let proxy = Arc::clone(&anomaly.proxy);
    let a = anomaly.a.clone();
    let t = thread::spawn(move || {
        proxy.invoke(&a, |c| *c += 1).unwrap();
    });
    while anomaly.moderator.stats().blocks == 0 {
        thread::yield_now();
    }
    t
}

#[test]
fn with_rollback_blocked_reservation_is_released() {
    let anomaly = build(RollbackPolicy::Release);
    let blocked = block_a(&anomaly);
    // `a` is parked on the gate; its pool reservation must be undone.
    assert!(!anomaly.pool.is_busy(), "reservation rolled back");
    // So `b` runs immediately.
    anomaly
        .proxy
        .invoke_timeout(&anomaly.b, Duration::from_secs(5), |c| *c += 10)
        .unwrap();
    // Open the gate; b's postactivation already notified, but send one
    // more completion to be deterministic about the wakeup.
    anomaly.gate.store(true, Ordering::SeqCst);
    anomaly
        .proxy
        .invoke_timeout(&anomaly.b, Duration::from_secs(5), |_| ())
        .unwrap();
    blocked.join().unwrap();
    assert_eq!(anomaly.proxy.with_component(|c| *c), 11);
    assert!(anomaly.moderator.stats().releases >= 1);
}

#[test]
fn without_rollback_the_pool_leaks_and_b_starves() {
    let anomaly = build(RollbackPolicy::None);
    let blocked = block_a(&anomaly);
    // The paper-literal semantics: `a` reserved the pool, then blocked
    // on the gate; the reservation leaks.
    assert!(anomaly.pool.is_busy(), "reservation leaked");
    let err = anomaly
        .proxy
        .invoke_timeout(&anomaly.b, Duration::from_millis(200), |c| *c += 10)
        .unwrap_err();
    assert!(err.is_timeout(), "b starves on the leaked pool");
    // Even worse: `a` deadlocks against its own stale reservation once
    // the gate opens. Break the cycle by removing the pool aspect.
    anomaly.gate.store(true, Ordering::SeqCst);
    anomaly
        .moderator
        .deregister(&anomaly.a, &Concern::new("pool"))
        .unwrap();
    blocked.join().unwrap();
    assert_eq!(anomaly.moderator.stats().releases, 0);
}

/// Rollback also fires on aborts: an inner abort releases the outer
/// reservation, so the pool is immediately reusable.
#[test]
fn abort_releases_outer_reservation() {
    let moderator = Arc::new(
        AspectModerator::builder()
            .rollback(RollbackPolicy::Release)
            .build(),
    );
    let m = moderator.declare_method(MethodId::new("m"));
    let pool = ExclusionGroup::new();
    // Inner (registered first, evaluated last): always aborts.
    moderator
        .register(
            &m,
            Concern::new("deny"),
            Box::new(FnAspect::new("deny").on_precondition(|_| Verdict::abort("no"))),
        )
        .unwrap();
    moderator
        .register(&m, Concern::new("pool"), Box::new(pool.aspect()))
        .unwrap();
    let proxy = Moderated::new(0_u32, Arc::clone(&moderator));
    for _ in 0..3 {
        assert!(proxy.invoke(&m, |_| ()).is_err());
        assert!(!pool.is_busy(), "abort must release the reservation");
    }
    assert_eq!(moderator.stats().releases, 3);
}

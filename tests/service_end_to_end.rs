//! End-to-end socket tests: concurrent clients against the TCP service,
//! verifying the moderated buffer's invariants survive the wire.

use std::collections::HashSet;
use std::thread;
use std::time::Duration;

use amf_service::{ClientError, ServiceClient, ServiceConfig, ServiceFront, TicketService};
use aspect_moderator::aspects::auth::AuthToken;
use aspect_moderator::core::FairnessPolicy;
use aspect_moderator::ticketing::Severity;

/// `AMF_SERVICE_FRONT=threaded` pins the whole suite to the
/// thread-per-connection front; anything else (including unset) uses
/// the config's front — the task-engine reactor by default. CI runs
/// the suite once per value.
fn spawn_service(mut config: ServiceConfig) -> amf_service::ServiceHandle {
    if std::env::var("AMF_SERVICE_FRONT").as_deref() == Ok("threaded") {
        config.front = ServiceFront::Threaded;
    }
    TicketService::spawn("127.0.0.1:0", config).expect("spawn service")
}

#[test]
fn concurrent_clients_lose_no_tickets_and_assign_each_once() {
    let mut handle = spawn_service(ServiceConfig {
        capacity: 8,
        workers: 12,
        op_timeout: Duration::from_secs(5),
        ..ServiceConfig::default()
    });
    handle.authenticator().add_user("ops", "pw");
    let token = handle.authenticator().login("ops", "pw").unwrap();
    let addr = handle.addr();

    let producers = 4u64;
    let consumers = 4u64;
    let per: u64 = 50;

    let mut assigned: Vec<u64> = Vec::new();
    thread::scope(|s| {
        for p in 0..producers {
            s.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("producer connect");
                for i in 0..per {
                    client
                        .open(token, p * 10_000 + i, Severity::Medium, "e2e")
                        .expect("open");
                }
            });
        }
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                s.spawn(move || {
                    let mut client = ServiceClient::connect(addr).expect("consumer connect");
                    (0..per)
                        .map(|_| client.assign(token).expect("assign").id.0)
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        for h in handles {
            assigned.extend(h.join().expect("consumer thread"));
        }
    });

    // Every opened ticket assigned exactly once: no losses, no doubles.
    let expected: HashSet<u64> = (0..producers)
        .flat_map(|p| (0..per).map(move |i| p * 10_000 + i))
        .collect();
    let got: HashSet<u64> = assigned.iter().copied().collect();
    assert_eq!(assigned.len() as u64, producers * per, "assign count");
    assert_eq!(got, expected, "set of assigned ticket ids");

    let stats = handle.stats();
    assert_eq!(stats.opened, producers * per);
    assert_eq!(stats.assigned, consumers * per);
    assert_eq!(stats.queued, 0);

    // The metrics aspect observed every successful activation.
    let metrics = handle.metrics().all();
    let open = metrics.get("open").expect("open metrics");
    let assign = metrics.get("assign").expect("assign metrics");
    assert_eq!(open.invocations, producers * per);
    assert_eq!(assign.invocations, consumers * per);

    handle.shutdown();
}

#[test]
fn bad_token_is_vetoed_by_the_authentication_aspect() {
    let mut handle = spawn_service(ServiceConfig::default());
    handle.authenticator().add_user("ops", "pw");
    let token = handle.authenticator().login("ops", "pw").unwrap();

    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    match client.open(AuthToken(0xdead), 1, Severity::Low, "evil") {
        Err(ClientError::Aborted(reason)) => {
            assert!(
                reason.contains("authenticate"),
                "reason names the concern: {reason}"
            );
        }
        other => panic!("expected Aborted, got {other:?}"),
    }
    // The veto left the buffer untouched; legitimate traffic flows.
    client.open(token, 1, Severity::Low, "fine").unwrap();
    assert_eq!(client.assign(token).unwrap().id.0, 1);
    assert_eq!(handle.stats().aborts, 1);
    handle.shutdown();
}

#[test]
fn full_buffer_blocks_then_unblocks_across_connections() {
    let mut handle = spawn_service(ServiceConfig {
        capacity: 1,
        op_timeout: Duration::from_millis(50),
        ..ServiceConfig::default()
    });
    handle.authenticator().add_user("ops", "pw");
    let token = handle.authenticator().login("ops", "pw").unwrap();
    let addr = handle.addr();

    let mut a = ServiceClient::connect(addr).unwrap();
    a.open(token, 1, Severity::Low, "fills the buffer").unwrap();
    // Second open times out blocked: the server answers Blocked rather
    // than holding the connection forever.
    match a.open(token, 2, Severity::Low, "waits") {
        Err(ClientError::Blocked) => {}
        other => panic!("expected Blocked, got {other:?}"),
    }
    assert!(handle.stats().timeouts >= 1);

    // A concurrent open unblocks as soon as another connection assigns.
    let blocked_open = thread::spawn(move || {
        let mut b = ServiceClient::connect(addr).unwrap();
        let mut c = ServiceClient::connect(addr).unwrap();
        let opener =
            thread::spawn(move || b.open(token, 3, Severity::Low, "queued behind the drain"));
        thread::sleep(Duration::from_millis(10));
        let drained = c.assign(token).unwrap();
        (opener.join().unwrap(), drained.id.0)
    });
    let (open_result, drained_id) = blocked_open.join().unwrap();
    // Patience was 50ms and the drain came after 10ms, so the open
    // may have succeeded or—under scheduler noise—timed out; both are
    // protocol-correct. The drained ticket must be the first one.
    assert_eq!(drained_id, 1);
    if open_result.is_ok() {
        let mut d = ServiceClient::connect(addr).unwrap();
        assert_eq!(d.assign(token).unwrap().id.0, 3);
    }
    handle.shutdown();
}

#[test]
fn fifo_service_reports_queue_depth_over_the_wire() {
    let mut handle = spawn_service(ServiceConfig {
        capacity: 1,
        workers: 8,
        op_timeout: Duration::from_secs(5),
        fairness: FairnessPolicy::Fifo,
        ..ServiceConfig::default()
    });
    handle.authenticator().add_user("ops", "pw");
    let token = handle.authenticator().login("ops", "pw").unwrap();
    let addr = handle.addr();

    let mut filler = ServiceClient::connect(addr).unwrap();
    filler.open(token, 1, Severity::Low, "fills").unwrap();
    // A second open parks on the full buffer's fifo queue.
    let parked = thread::spawn(move || {
        let mut c = ServiceClient::connect(addr).unwrap();
        c.open(token, 2, Severity::Low, "queued")
    });
    while handle.stats().max_queue_depth == 0 {
        thread::sleep(Duration::from_millis(1));
    }
    let mut drainer = ServiceClient::connect(addr).unwrap();
    assert_eq!(drainer.assign(token).unwrap().id.0, 1);
    parked.join().unwrap().unwrap();
    assert_eq!(drainer.assign(token).unwrap().id.0, 2);

    // The high-water mark survives the wire round trip (6th u64 of the
    // StatsReply frame) and matches the local view.
    let wire = drainer.stats().unwrap();
    assert!(wire.max_queue_depth >= 1, "{wire:?}");
    assert_eq!(wire.max_queue_depth, handle.stats().max_queue_depth);
    assert_eq!(wire.queued, 0);
    assert_eq!(wire.opened, 2);
    handle.shutdown();
}

#[test]
fn per_principal_quota_aborts_the_overdraft() {
    let mut handle = spawn_service(ServiceConfig {
        quota_limit: 3,
        quota_window: Duration::from_secs(3600),
        ..ServiceConfig::default()
    });
    handle.authenticator().add_user("greedy", "pw");
    handle.authenticator().add_user("frugal", "pw");
    let greedy = handle.authenticator().login("greedy", "pw").unwrap();
    let frugal = handle.authenticator().login("frugal", "pw").unwrap();

    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    for i in 0..3 {
        client.open(greedy, i, Severity::Low, "mine").unwrap();
    }
    match client.open(greedy, 99, Severity::Low, "one too many") {
        Err(ClientError::Aborted(reason)) => {
            assert!(
                reason.contains("quota"),
                "reason names the concern: {reason}"
            );
        }
        other => panic!("expected quota abort, got {other:?}"),
    }
    // Quotas are per principal: another user still has headroom.
    client.open(frugal, 100, Severity::Low, "fine").unwrap();
    handle.shutdown();
}

#[test]
fn stats_and_shutdown_opcodes_work_remotely() {
    let handle = spawn_service(ServiceConfig::default());
    handle.authenticator().add_user("ops", "pw");
    let token = handle.authenticator().login("ops", "pw").unwrap();
    let addr = handle.addr();

    let mut client = ServiceClient::connect(addr).unwrap();
    client.open(token, 5, Severity::Critical, "outage").unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.opened, 1);
    assert_eq!(stats.queued, 1);

    client.shutdown_server().unwrap();
    // The server stops serving: a fresh connection can no longer get an
    // answer (either the connect or the call fails).
    let refused = match ServiceClient::connect(addr) {
        Ok(mut c) => c.stats().is_err(),
        Err(_) => true,
    };
    assert!(refused, "server must not answer after remote shutdown");
    drop(handle);
}

#[test]
fn load_generator_round_trips_over_the_wire() {
    let mut handle = spawn_service(ServiceConfig {
        workers: 8,
        op_timeout: Duration::from_secs(5),
        ..ServiceConfig::default()
    });
    handle.authenticator().add_user("load", "pw");
    let token = handle.authenticator().login("load", "pw").unwrap();

    let outcome = amf_service::run_load(&amf_service::LoadConfig {
        clients: 4,
        requests: 400,
        addr: handle.addr(),
        token,
    })
    .expect("load run");
    assert_eq!(outcome.total(), 400);
    assert_eq!(outcome.ok, 400, "no blocks or aborts at this scale");
    assert_eq!(outcome.open_latencies_ns.len(), 200);
    assert_eq!(outcome.assign_latencies_ns.len(), 200);
    assert!(outcome.throughput() > 0.0);
    handle.shutdown();
}

/// Fault containment on the wire: a panicking aspect registered against
/// the *live* service maps to `Response::Err` — the client sees a
/// server error naming the contained panic, the same connection keeps
/// working (the worker thread survived the unwind), and `panics_caught`
/// crosses the wire as the seventh stats counter.
#[test]
fn contained_panic_maps_to_err_and_spares_the_connection() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use aspect_moderator::core::{Concern, FnAspect, Verdict};

    let mut handle = spawn_service(ServiceConfig::default());
    handle.authenticator().add_user("ops", "pw");
    let token = handle.authenticator().login("ops", "pw").unwrap();

    // One-shot bomb on `open`, registered through the live proxy.
    let armed = Arc::new(AtomicBool::new(true));
    let base = handle.proxy().base();
    base.moderator()
        .register(
            base.open_handle(),
            Concern::new("chaos-bomb"),
            Box::new(FnAspect::new("bomb").on_precondition({
                let armed = Arc::clone(&armed);
                move |_| {
                    if armed.swap(false, Ordering::SeqCst) {
                        panic!("wire bomb");
                    }
                    Verdict::Resume
                }
            })),
        )
        .unwrap();

    let mut client = ServiceClient::connect(handle.addr()).unwrap();
    match client.open(token, 1, Severity::Low, "boom") {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("aspect panic contained"), "{msg}");
            assert!(msg.contains("chaos-bomb"), "{msg}");
            assert!(msg.contains("wire bomb"), "{msg}");
        }
        other => panic!("expected contained-panic server error, got {other:?}"),
    }

    // Same connection, next request: the bomb is spent and the worker
    // thread is alive.
    client.open(token, 2, Severity::Low, "fine").unwrap();
    let got = client.assign(token).unwrap();
    assert_eq!(got.id.0, 2);

    let wire = client.stats().unwrap();
    assert_eq!(wire.panics_caught, 1);
    assert_eq!(wire.panics_caught, handle.stats().panics_caught);
    handle.shutdown();
}

//! Property-based tests (proptest) on the framework's core invariants.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use aspect_moderator::aspects::metrics::Histogram;
use aspect_moderator::aspects::sync::bounded_buffer_sync;
use aspect_moderator::concurrency::{RingBuffer, Scheduler, SchedulerPolicy};
use aspect_moderator::core::{
    Aspect, AspectBank, AspectModerator, Concern, InvocationContext, MethodId, Moderated,
    NoopAspect,
};
use aspect_moderator::ticketing::{Ticket, TicketServer};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Aspect bank vs a HashMap model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BankOp {
    Register(u8, u8),
    Replace(u8, u8),
    Deregister(u8, u8),
    Contains(u8, u8),
}

fn bank_op() -> impl Strategy<Value = BankOp> {
    prop_oneof![
        (0..6u8, 0..4u8).prop_map(|(m, c)| BankOp::Register(m, c)),
        (0..6u8, 0..4u8).prop_map(|(m, c)| BankOp::Replace(m, c)),
        (0..6u8, 0..4u8).prop_map(|(m, c)| BankOp::Deregister(m, c)),
        (0..6u8, 0..4u8).prop_map(|(m, c)| BankOp::Contains(m, c)),
    ]
}

proptest! {
    #[test]
    fn bank_matches_hashmap_model(ops in proptest::collection::vec(bank_op(), 1..80)) {
        let mut bank = AspectBank::new();
        let mut model: HashMap<(u8, u8), ()> = HashMap::new();
        let mut handles = Vec::new();
        for m in 0..6u8 {
            handles.push(bank.declare(MethodId::new(format!("m{m}"))));
        }
        for op in ops {
            match op {
                BankOp::Register(m, c) => {
                    let occupied = model.contains_key(&(m, c));
                    let r = bank.register(
                        handles[m as usize],
                        Concern::new(format!("c{c}")),
                        Box::new(NoopAspect),
                    );
                    prop_assert_eq!(r.is_err(), occupied);
                    model.entry((m, c)).or_insert(());
                }
                BankOp::Replace(m, c) => {
                    let occupied = model.contains_key(&(m, c));
                    let old = bank.replace(
                        handles[m as usize],
                        Concern::new(format!("c{c}")),
                        Box::new(NoopAspect),
                    );
                    prop_assert_eq!(old.is_some(), occupied);
                    model.insert((m, c), ());
                }
                BankOp::Deregister(m, c) => {
                    let occupied = model.remove(&(m, c)).is_some();
                    let r = bank.deregister(handles[m as usize], &Concern::new(format!("c{c}")));
                    prop_assert_eq!(r.is_ok(), occupied);
                }
                BankOp::Contains(m, c) => {
                    prop_assert_eq!(
                        bank.contains(handles[m as usize], &Concern::new(format!("c{c}"))),
                        model.contains_key(&(m, c))
                    );
                }
            }
            prop_assert_eq!(bank.aspect_count(), model.len());
        }
    }
}

// ---------------------------------------------------------------------
// Ticket server vs a VecDeque model (sequential).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum BufOp {
    Open(u64),
    Assign,
}

proptest! {
    #[test]
    fn ticket_server_matches_deque_model(
        capacity in 1..12usize,
        ops in proptest::collection::vec(
            prop_oneof![any::<u64>().prop_map(BufOp::Open), Just(BufOp::Assign)],
            1..200,
        )
    ) {
        let mut server = TicketServer::new(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        for op in ops {
            match op {
                BufOp::Open(v) => {
                    let r = server.open(Ticket::new(v, "t"));
                    if model.len() < capacity {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                BufOp::Assign => {
                    let r = server.assign();
                    match model.pop_front() {
                        Some(expected) => prop_assert_eq!(r.unwrap().id.0, expected),
                        None => prop_assert!(r.is_err()),
                    }
                }
            }
            prop_assert_eq!(server.len(), model.len());
            prop_assert_eq!(server.is_empty(), model.is_empty());
            prop_assert_eq!(server.is_full(), model.len() == capacity);
        }
    }
}

// ---------------------------------------------------------------------
// Moderated single-threaded invocations vs direct calls: the framework
// must be semantically transparent when no aspect constrains anything.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn moderation_is_transparent_for_unconstrained_methods(
        values in proptest::collection::vec(any::<u64>(), 1..100)
    ) {
        let moderator = AspectModerator::shared();
        let push = moderator.declare_method(MethodId::new("push"));
        for i in 0..3 {
            moderator
                .register(&push, Concern::new(format!("noop{i}")), Box::new(NoopAspect))
                .unwrap();
        }
        let proxy = Moderated::new(Vec::new(), Arc::clone(&moderator));
        for v in &values {
            proxy.invoke(&push, |vec| vec.push(*v)).unwrap();
        }
        prop_assert_eq!(proxy.into_inner(), values);
    }
}

// ---------------------------------------------------------------------
// Bounded-buffer sync aspects: counters never violate their invariants
// under arbitrary *admissible* schedules.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum SyncStep {
    ProducerPre,
    ProducerPost,
    ConsumerPre,
    ConsumerPost,
}

proptest! {
    #[test]
    fn buffer_sync_invariants_hold(
        capacity in 1..6usize,
        steps in proptest::collection::vec(0..4u8, 1..300)
    ) {
        let (mut producer, mut consumer, handle) = bounded_buffer_sync(capacity);
        let mut ctx = InvocationContext::new(MethodId::new("m"), 1);
        // Track which phase each side is in so we only issue admissible
        // transitions (pre before post).
        let mut producing = false;
        let mut consuming = false;
        for s in steps {
            let step = match s {
                0 => SyncStep::ProducerPre,
                1 => SyncStep::ProducerPost,
                2 => SyncStep::ConsumerPre,
                _ => SyncStep::ConsumerPost,
            };
            match step {
                SyncStep::ProducerPre if !producing
                    && producer.precondition(&mut ctx).is_resume() => {
                        producing = true;
                    }
                SyncStep::ProducerPost if producing => {
                    producer.postaction(&mut ctx);
                    producing = false;
                }
                SyncStep::ConsumerPre if !consuming
                    && consumer.precondition(&mut ctx).is_resume() => {
                        consuming = true;
                    }
                SyncStep::ConsumerPost if consuming => {
                    consumer.postaction(&mut ctx);
                    consuming = false;
                }
                _ => {}
            }
            let snap = handle.snapshot();
            prop_assert!(snap.reserved <= snap.capacity, "reserved {snap:?}");
            prop_assert!(snap.produced <= snap.reserved, "produced {snap:?}");
            prop_assert_eq!(snap.producing, producing);
            prop_assert_eq!(snap.consuming, consuming);
        }
    }
}

// ---------------------------------------------------------------------
// Scheduler policies against reference models.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn fifo_scheduler_is_a_queue(items in proptest::collection::vec(any::<u32>(), 0..50)) {
        let mut s = Scheduler::new(SchedulerPolicy::Fifo);
        for &i in &items {
            s.enqueue(i);
        }
        prop_assert_eq!(s.drain(), items);
    }

    #[test]
    fn lifo_scheduler_is_a_stack(items in proptest::collection::vec(any::<u32>(), 0..50)) {
        let mut s = Scheduler::new(SchedulerPolicy::Lifo);
        for &i in &items {
            s.enqueue(i);
        }
        let mut expected = items.clone();
        expected.reverse();
        prop_assert_eq!(s.drain(), expected);
    }

    #[test]
    fn priority_scheduler_sorts_stably(
        items in proptest::collection::vec((0..5u32, any::<u32>()), 0..50)
    ) {
        let mut s = Scheduler::new(SchedulerPolicy::Priority);
        for (pri, val) in &items {
            s.enqueue_with_priority(*val, *pri);
        }
        // Reference: stable sort by descending priority.
        let mut expected: Vec<(u32, u32)> = items.clone();
        expected.sort_by_key(|e| std::cmp::Reverse(e.0));
        let expected: Vec<u32> = expected.into_iter().map(|(_, v)| v).collect();
        prop_assert_eq!(s.drain(), expected);
    }
}

// ---------------------------------------------------------------------
// Histogram: totals and quantile monotonicity.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn histogram_quantiles_are_monotonic(
        samples in proptest::collection::vec(0..10_000_000u64, 1..200)
    ) {
        let mut h = Histogram::default_latency();
        for s in &samples {
            h.record(std::time::Duration::from_nanos(*s));
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let quantiles: Vec<_> = [0.0, 0.25, 0.5, 0.75, 0.9, 1.0]
            .iter()
            .map(|q| h.quantile(*q).unwrap())
            .collect();
        for w in quantiles.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must not decrease: {quantiles:?}");
        }
    }
}

// ---------------------------------------------------------------------
// RingBuffer never exceeds capacity and preserves order.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn ring_buffer_matches_model(
        capacity in 1..10usize,
        ops in proptest::collection::vec(prop_oneof![
            any::<u8>().prop_map(Some),
            Just(None)
        ], 0..150)
    ) {
        let mut rb = RingBuffer::with_capacity(capacity);
        let mut model: VecDeque<u8> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let r = rb.push_back(v);
                    if model.len() < capacity {
                        prop_assert!(r.is_ok());
                        model.push_back(v);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                None => {
                    prop_assert_eq!(rb.pop_front(), model.pop_front());
                }
            }
            prop_assert_eq!(rb.len(), model.len());
            prop_assert!(rb.len() <= capacity);
        }
    }
}

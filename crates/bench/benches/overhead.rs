//! E1 — moderation overhead: direct mutex counter vs moderated counter
//! with 0/1/2/4/8 no-op aspects.

use amf_bench::pipeline::OverheadTarget;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_overhead");
    g.bench_function("direct_mutex_increment", |b| {
        let counter = parking_lot::Mutex::new(0_u64);
        b.iter(|| {
            *counter.lock() += 1;
        });
    });
    for n in [0_usize, 1, 2, 4, 8] {
        let target = OverheadTarget::new(n);
        g.bench_function(format!("moderated_{n}_noop_aspects"), |b| {
            b.iter(|| target.bump());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);

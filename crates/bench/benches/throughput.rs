//! E2 — producer/consumer throughput: moderated vs tangled monitor vs
//! crossbeam channel.

use std::thread;

use amf_baseline::TangledBuffer;
use amf_bench::pipeline::{ModeratedBuffer, PipelineConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const ITEMS: u64 = 10_000;

fn transfer(put: impl Fn(u64) + Sync, take: impl Fn() + Sync) {
    thread::scope(|s| {
        s.spawn(|| {
            for i in 0..ITEMS {
                put(i);
            }
        });
        s.spawn(|| {
            for _ in 0..ITEMS {
                take();
            }
        });
    });
}

fn bench_throughput(c: &mut Criterion) {
    for capacity in [1_usize, 16, 256] {
        let mut g = c.benchmark_group(format!("e2_throughput_cap{capacity}"));
        g.throughput(Throughput::Elements(ITEMS));
        g.sample_size(10);
        g.bench_function("moderated", |b| {
            let buf = ModeratedBuffer::new(PipelineConfig {
                capacity,
                ..PipelineConfig::default()
            });
            b.iter(|| {
                transfer(
                    |i| buf.put(i),
                    || {
                        buf.take();
                    },
                )
            });
        });
        g.bench_function("tangled_monitor", |b| {
            let buf = TangledBuffer::new(capacity);
            b.iter(|| {
                transfer(
                    |i| buf.put(i),
                    || {
                        buf.take();
                    },
                )
            });
        });
        g.bench_function("crossbeam_channel", |b| {
            let (tx, rx) = crossbeam::channel::bounded::<u64>(capacity);
            b.iter(|| {
                transfer(
                    |i| tx.send(i).unwrap(),
                    || {
                        rx.recv().unwrap();
                    },
                )
            });
        });
        g.finish();
    }
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);

//! E7 — rollback ablation: cost of the release pass on a contended,
//! deep-chained pipeline.

use std::thread;

use amf_bench::pipeline::{ModeratedBuffer, PipelineConfig};
use amf_core::RollbackPolicy;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const ITEMS: u64 = 5_000;

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_rollback");
    g.throughput(Throughput::Elements(ITEMS));
    g.sample_size(10);
    for (name, policy) in [
        ("release", RollbackPolicy::Release),
        ("none", RollbackPolicy::None),
    ] {
        let buf = ModeratedBuffer::new(PipelineConfig {
            capacity: 1,
            rollback: policy,
            extra_noops: 3,
            ..PipelineConfig::default()
        });
        g.bench_function(name, |b| {
            b.iter(|| {
                thread::scope(|s| {
                    s.spawn(|| {
                        for i in 0..ITEMS {
                            buf.put(i);
                        }
                    });
                    s.spawn(|| {
                        for _ in 0..ITEMS {
                            buf.take();
                        }
                    });
                });
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

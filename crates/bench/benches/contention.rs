//! E6 — wake strategies: wired vs broadcast graph × notify-all vs
//! notify-one, under producer/consumer contention.

use std::thread;

use amf_bench::pipeline::{ModeratedBuffer, PipelineConfig};
use amf_core::WakeMode;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const ITEMS: u64 = 5_000;

fn run(buf: &ModeratedBuffer) {
    thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                for i in 0..ITEMS / 2 {
                    buf.put(i);
                }
            });
            s.spawn(|| {
                for _ in 0..ITEMS / 2 {
                    buf.take();
                }
            });
        }
    });
}

fn bench_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_wake_strategies");
    g.throughput(Throughput::Elements(ITEMS));
    g.sample_size(10);
    for (graph, wired) in [("wired", true), ("broadcast", false)] {
        for (mode_name, mode) in [
            ("notify_all", WakeMode::NotifyAll),
            ("notify_one", WakeMode::NotifyOne),
        ] {
            let buf = ModeratedBuffer::new(PipelineConfig {
                capacity: 4,
                wake_mode: mode,
                wired_wakes: wired,
                ..PipelineConfig::default()
            });
            g.bench_function(format!("{graph}_{mode_name}"), |b| b.iter(|| run(&buf)));
        }
    }
    g.finish();
}

criterion_group!(benches, bench_contention);
criterion_main!(benches);

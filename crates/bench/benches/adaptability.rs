//! E8 — adaptability cost: ticketing with and without the
//! authentication extension, framework vs tangled baseline.

use std::sync::Arc;

use amf_aspects::auth::Authenticator;
use amf_baseline::{TangledBuffer, TangledSecureBuffer};
use amf_core::AspectModerator;
use amf_ticketing::{ExtendedTicketServerProxy, Ticket, TicketServerProxy};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_adaptability(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_adaptability");

    let base = TicketServerProxy::new(64, AspectModerator::shared()).unwrap();
    g.bench_function("framework_base_open_assign", |b| {
        b.iter(|| {
            base.open(Ticket::new(0, "t")).unwrap();
            base.assign().unwrap();
        });
    });

    let auth = Authenticator::shared();
    auth.add_user("bench", "pw");
    let extended =
        ExtendedTicketServerProxy::new(64, AspectModerator::shared(), Arc::clone(&auth)).unwrap();
    let token = auth.login("bench", "pw").unwrap();
    g.bench_function("framework_with_auth_open_assign", |b| {
        b.iter(|| {
            extended.open(token, Ticket::new(0, "t")).unwrap();
            extended.assign(token).unwrap();
        });
    });

    let tangled = TangledBuffer::new(64);
    g.bench_function("tangled_base_put_take", |b| {
        b.iter(|| {
            tangled.put(1_u64);
            tangled.take();
        });
    });

    let secure = TangledSecureBuffer::new(64);
    secure.add_user("bench", "pw");
    let stoken = secure.login("bench", "pw").unwrap();
    g.bench_function("tangled_with_auth_put_take", |b| {
        b.iter(|| {
            secure.put(stoken, 1_u64).unwrap();
            secure.take(stoken).unwrap();
        });
    });

    g.finish();
}

criterion_group!(benches, bench_adaptability);
criterion_main!(benches);

//! E5 — scheduling policies under contention.

use amf_bench::experiments::run_scheduling;
use amf_concurrency::SchedulerPolicy;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_scheduling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_scheduling");
    g.sample_size(10);
    for (name, policy) in [
        ("fifo", SchedulerPolicy::Fifo),
        ("lifo", SchedulerPolicy::Lifo),
        ("priority", SchedulerPolicy::Priority),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| run_scheduling(policy, 4, 500));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);

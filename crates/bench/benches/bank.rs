//! E4 — aspect-bank scaling: registration cost and hot-cell invocation
//! cost as the bank grows.

use std::sync::Arc;

use amf_core::{AspectModerator, Concern, MethodId, Moderated, NoopAspect};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn populate(methods: usize, concerns: usize) -> (Arc<AspectModerator>, amf_core::MethodHandle) {
    let moderator = AspectModerator::shared();
    let mut last = None;
    for m in 0..methods {
        let h = moderator.declare_method(MethodId::new(format!("m{m}")));
        for c in 0..concerns {
            moderator
                .register(&h, Concern::new(format!("c{c}")), Box::new(NoopAspect))
                .unwrap();
        }
        last = Some(h);
    }
    (moderator, last.expect("at least one method"))
}

fn bench_bank(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_bank");
    for methods in [4_usize, 64, 1024] {
        g.bench_function(format!("register_{methods}x8"), |b| {
            b.iter_batched(|| (), |()| populate(methods, 8), BatchSize::SmallInput);
        });
        let (moderator, hot) = populate(methods, 8);
        let proxy = Moderated::new(0_u64, moderator);
        g.bench_function(format!("invoke_hot_cell_{methods}x8"), |b| {
            b.iter(|| proxy.invoke(&hot, |v| *v += 1).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bank);
criterion_main!(benches);

//! E3 — concern stacking: cost of each additional real concern.

use amf_bench::pipeline::StackTarget;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_composition(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_composition");
    let stacks: &[(&str, &[&str])] = &[
        ("sync", &["sync"]),
        ("sync_audit", &["sync", "audit"]),
        ("sync_audit_metrics", &["sync", "audit", "metrics"]),
        (
            "sync_audit_metrics_auth",
            &["sync", "audit", "metrics", "auth"],
        ),
        (
            "sync_audit_metrics_auth_quota",
            &["sync", "audit", "metrics", "quota", "auth"],
        ),
    ];
    for (name, stack) in stacks {
        let target = StackTarget::new(stack);
        g.bench_function(*name, |b| b.iter(|| target.run_once()));
    }
    g.finish();
}

criterion_group!(benches, bench_composition);
criterion_main!(benches);

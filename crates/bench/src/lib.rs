//! Benchmark harness for the Aspect Moderator framework.
//!
//! One module per concern: [`pipeline`] builds the systems under test,
//! [`report`] renders markdown tables, [`experiments`] implements
//! E1–E8 from `EXPERIMENTS.md`. The `experiments` binary regenerates
//! every table:
//!
//! ```text
//! cargo run -p amf-bench --release --bin experiments -- all
//! cargo run -p amf-bench --release --bin experiments -- e2 e6
//! ```
//!
//! The Criterion benches under `benches/` wrap the same harness for
//! statistically rigorous single-number comparisons.

#![warn(missing_docs)]

pub mod experiments;
pub mod pipeline;
pub mod report;

//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run -p amf-bench --release --bin experiments -- all
//! cargo run -p amf-bench --release --bin experiments -- e1 e6
//! cargo run -p amf-bench --release --bin experiments -- --quick all
//! ```

fn main() {
    let mut quick = false;
    let mut names = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--help" | "-h" => {
                eprintln!("usage: experiments [--quick] [e1..e16 | v1 | all]...");
                return;
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names.push("all".to_string());
    }
    amf_bench::experiments::run(&names, quick);
}

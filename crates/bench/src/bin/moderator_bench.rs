//! Experiment E9 driver: global-lock vs sharded moderator throughput
//! over two disjoint methods, written to `BENCH_moderator.json`.
//!
//! Three regimes are measured at 1/2/4/8 threads:
//!
//! - `cpu_bound`: a pure no-op chain, isolating the cost of the
//!   coordination path itself.
//! - `io_bound`: each precondition blocks for 200 µs of simulated I/O
//!   (the audit-fsync / remote-auth shape) while its coordination cell
//!   is held. The global lock serializes those waits across *all*
//!   methods; per-method cells overlap them.
//! - `noisy_neighbor`: the I/O-bound chains next to the service's
//!   background coordination traffic — four callers parked on a gated
//!   method plus a ticker whose post-activations broadcast wakeups
//!   (the seed's default wiring). Under the global lock that churn
//!   shares the measured methods' one lock; under sharding it stays on
//!   the gated method's own cell.
//!
//! Each throughput regime contributes its own 8-thread speedup to the
//! top-level `summary` map (`cpu_bound`, `io_bound`, `noisy_neighbor`,
//! `fast_path` — there is deliberately no single headline number: the
//! regimes answer different questions).
//!
//! A fourth section, `fairness_tail` (experiment E10), measures wake
//! fairness: per-activation latency of 8 producers on a capacity-1
//! buffer next to the noisy neighbor, `Barging` vs `Fifo`. The
//! ticketed FIFO queue trades a little median for a bounded tail —
//! `fifo_p99_over_barging_p99 <= 1` is the property the fairness PR
//! claims.
//!
//! A fifth section, `chaos` (experiment E11), prices panic
//! containment: `Propagate` (no `catch_unwind`) vs `AbortInvocation`
//! at panic rate 0 — `containment_p50_overhead_{barging,fifo}` should
//! stay within 5% of 1.0 — plus recovery latency while a seeded
//! injector panics in 1% of preconditions.
//!
//! A sixth section, `convoy` (experiment E12), measures batched FIFO
//! admission: 8 producers on a capacity-4 gate whose slots come free
//! four at a time under `NotifyOne`, `grant_batching` off vs on. The
//! claims are `batched_handoffs < unbatched_handoffs` (the freed
//! prefix drains on one cursor-ordered sweep instead of a wake chain)
//! and `batched_p99_over_unbatched_p99 <= 1` within noise.
//!
//! A seventh section, `simulation` (experiment E13), records the
//! exhaustive explorer's state/schedule counts on the canonical 2×2
//! buffer (asserted stable across two runs), its states/sec at a
//! larger bound, and the `amf-sim` record→replay round-trip on the
//! real moderator (`replay_byte_identical` must be 1).
//!
//! An eighth section, `fast_path` (experiment E14), measures the
//! lock-free two-phase admission lane: two disjoint methods with pure
//! no-op chains, capability-declared (one CAS admit + one CAS release
//! per activation) vs undeclared under the global lock. The claim is
//! `fast_lane_ops_per_sec >= 3 × global_lock_ops_per_sec` at 8
//! threads on a CPU-bound chain.
//!
//! A ninth section, `reduction` (experiment E15), runs the exhaustive
//! explorer over the same bounds under `ReductionPolicy::None` vs
//! `Dpor`. The verdict and reachable-state count must agree at every
//! bound; the payoff is `schedule_reduction_factor` — the sleep-set
//! layer visits strictly fewer interleavings for the same coverage.
//!
//! A tenth section, `topology` (the multi-moderator half of E15),
//! records a 2-node lease-handoff ring — independent moderators wired
//! through the simulated scheduler by a droppable, reorderable
//! channel — replays it byte-identically, and checks that the
//! dropped-handoff ablation ends in a *detected* deadlock.
//!
//! ```text
//! cargo run -p amf-bench --release --bin moderator_bench
//! cargo run -p amf-bench --release --bin moderator_bench -- --quick
//! ```

use std::time::Duration;

use amf_bench::experiments::{
    explore_buffer, run_chaos, run_convoy, run_fairness_tail, run_moderator_fast,
    run_moderator_shard,
};
use amf_bench::report::{fmt_ns, fmt_ops, json_array, JsonObject};
use amf_core::{Coordination, FairnessPolicy, PanicPolicy};

const REPORT_PATH: &str = "BENCH_moderator.json";
const ASPECT_WORK: Duration = Duration::from_micros(200);

fn main() {
    let mut quick = false;
    let mut report = REPORT_PATH.to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "--report" => match args.next() {
                Some(path) => report = path,
                None => {
                    eprintln!("missing value for --report");
                    std::process::exit(1);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: moderator_bench [--quick] [--report FILE]");
                return;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(1);
            }
        }
    }

    // Untimed warmup: the very first measured run otherwise pays the
    // process's cold-start (page faults, lazy allocator state) and
    // skews the 1-thread row of whichever mode goes first.
    for coordination in [Coordination::GlobalLock, Coordination::Sharded] {
        run_moderator_shard(coordination, 2, 2_000, Duration::ZERO, false);
    }

    // Per-regime speedup at 8 threads, keyed by section name — the
    // top-level `summary` map. (The old scalar `speedup_at_8_threads`
    // silently reported only the noisy-neighbor regime.)
    let mut summary = JsonObject::new();
    let run_regime = |label: &str, work: Duration, noisy: bool, per_thread: u64| {
        let mut rows = Vec::new();
        let mut speedup_at_8 = 0.0;
        for threads in [1_usize, 2, 4, 8] {
            let global =
                run_moderator_shard(Coordination::GlobalLock, threads, per_thread, work, noisy);
            let sharded =
                run_moderator_shard(Coordination::Sharded, threads, per_thread, work, noisy);
            let speedup = sharded / global;
            if threads == 8 {
                speedup_at_8 = speedup;
            }
            println!(
                "{label}, {threads} threads: global {} | sharded {} | speedup {speedup:.2}x",
                fmt_ops(global),
                fmt_ops(sharded),
            );
            rows.push(
                JsonObject::new()
                    .field("threads", threads)
                    .field("global_lock_ops_per_sec", global)
                    .field("sharded_ops_per_sec", sharded)
                    .field("speedup", speedup)
                    .build(),
            );
        }
        let section = JsonObject::new()
            .field("aspect_work_us", work.as_micros() as u64)
            .field("noisy_neighbor", u64::from(noisy))
            .field("per_thread_ops", per_thread)
            .field("rows", json_array(rows))
            .build();
        (section, speedup_at_8)
    };

    let (cpu_bound, cpu_speedup) = run_regime(
        "cpu-bound",
        Duration::ZERO,
        false,
        if quick { 20_000 } else { 400_000 },
    );
    summary = summary.field("cpu_bound_speedup_at_8_threads", cpu_speedup);
    let (io_bound, io_speedup) = run_regime(
        "io-bound",
        ASPECT_WORK,
        false,
        if quick { 100 } else { 2_000 },
    );
    summary = summary.field("io_bound_speedup_at_8_threads", io_speedup);
    let (noisy, noisy_speedup) = run_regime(
        "noisy-neighbor",
        ASPECT_WORK,
        true,
        if quick { 100 } else { 2_000 },
    );
    summary = summary.field("noisy_neighbor_speedup_at_8_threads", noisy_speedup);

    // Experiment E14 — the lock-free fast lane on CPU-bound pure
    // chains: capability-declared CAS admission vs the undeclared
    // locked path under the global lock, plus the sharded-but-locked
    // middle ground to separate "no global lock" from "no lock".
    let fast_path = {
        let per_thread = if quick { 20_000 } else { 400_000 };
        let mut rows = Vec::new();
        let mut speedup_at_8 = 0.0;
        for threads in [1_usize, 2, 4, 8] {
            let global = run_moderator_fast(Coordination::GlobalLock, threads, per_thread, false);
            let locked = run_moderator_fast(Coordination::Sharded, threads, per_thread, false);
            let fast = run_moderator_fast(Coordination::Sharded, threads, per_thread, true);
            let speedup = fast / global;
            if threads == 8 {
                speedup_at_8 = speedup;
            }
            println!(
                "fast-path, {threads} threads: global {} | sharded-locked {} | fast lane {} | \
                 speedup {speedup:.2}x",
                fmt_ops(global),
                fmt_ops(locked),
                fmt_ops(fast),
            );
            rows.push(
                JsonObject::new()
                    .field("threads", threads)
                    .field("global_lock_ops_per_sec", global)
                    .field("sharded_locked_ops_per_sec", locked)
                    .field("fast_lane_ops_per_sec", fast)
                    .field("speedup", speedup)
                    .build(),
            );
        }
        summary = summary.field("fast_path_speedup_at_8_threads", speedup_at_8);
        JsonObject::new()
            .field("aspect_work_us", 0_u64)
            .field("per_thread_ops", per_thread)
            .field("rows", json_array(rows))
            .build()
    };

    let fairness_tail = {
        let producers = 8;
        let per_thread = if quick { 500 } else { 20_000 };
        let mut p99 = Vec::new();
        let mut rows = Vec::new();
        for (label, policy) in [
            ("barging", FairnessPolicy::Barging),
            ("fifo", FairnessPolicy::Fifo),
        ] {
            let s = run_fairness_tail(policy, producers, per_thread, true);
            println!(
                "fairness tail ({label}, noisy): p50 {} | p99 {} | max {}",
                fmt_ns(s.p50_ns as f64),
                fmt_ns(s.p99_ns as f64),
                fmt_ns(s.max_ns as f64),
            );
            p99.push(s.p99_ns);
            rows.push(
                JsonObject::new()
                    .field("policy", label)
                    .field("latency", s.to_json())
                    .build(),
            );
        }
        JsonObject::new()
            .field("producers", producers)
            .field("per_thread_ops", per_thread)
            .field("noisy_neighbor", 1_u64)
            .field("rows", json_array(rows))
            .field("fifo_p99_over_barging_p99", p99[1] as f64 / p99[0] as f64)
            .build()
    };

    // Experiment E11 — panic containment: the `catch_unwind` safety net
    // priced at panic rate 0 (`containment_p50_overhead_*` should stay
    // within 5% of the `Propagate` baseline) and recovery throughput at
    // a 1% injected precondition panic rate.
    let chaos = {
        let producers = 8;
        let per_thread = if quick { 500 } else { 20_000 };
        std::panic::set_hook(Box::new(|_| {}));
        let mut rows = Vec::new();
        let mut overhead = Vec::new();
        for (fname, fairness) in [
            ("barging", FairnessPolicy::Barging),
            ("fifo", FairnessPolicy::Fifo),
        ] {
            let mut p50_by_policy = Vec::new();
            for (pname, policy, rate) in [
                ("propagate", PanicPolicy::Propagate, 0.0),
                ("abort_invocation", PanicPolicy::AbortInvocation, 0.0),
                ("abort_invocation", PanicPolicy::AbortInvocation, 0.01),
            ] {
                let (s, panics) = run_chaos(fairness, policy, rate, producers, per_thread);
                println!(
                    "chaos ({fname}, {pname}, rate {rate}): p50 {} | p99 {} | panics {panics}",
                    fmt_ns(s.p50_ns as f64),
                    fmt_ns(s.p99_ns as f64),
                );
                if rate == 0.0 {
                    p50_by_policy.push(s.p50_ns);
                }
                rows.push(
                    JsonObject::new()
                        .field("fairness", fname)
                        .field("policy", pname)
                        .field("panic_rate", rate)
                        .field("panics_caught", panics)
                        .field("latency", s.to_json())
                        .build(),
                );
            }
            overhead.push((fname, p50_by_policy[1] as f64 / p50_by_policy[0] as f64));
        }
        let _ = std::panic::take_hook();
        JsonObject::new()
            .field("producers", producers)
            .field("per_thread_ops", per_thread)
            .field("rows", json_array(rows))
            .field("containment_p50_overhead_barging", overhead[0].1)
            .field("containment_p50_overhead_fifo", overhead[1].1)
            .build()
    };

    // Experiment E12 — batched FIFO admission: handoff count and tail
    // latency of the capacity-4 convoy shape, `grant_batching` off/on.
    let convoy = {
        let producers = 8;
        let per_thread = if quick { 500 } else { 20_000 };
        let batch = 4;
        let mut rows = Vec::new();
        let mut p99 = Vec::new();
        let mut handoffs = Vec::new();
        for (label, batching) in [("off", false), ("on", true)] {
            let (s, served, batched) = run_convoy(batching, producers, per_thread, batch);
            println!(
                "convoy (batching {label}): p50 {} | p99 {} | served {served} | \
                 batched {batched} | handoffs {}",
                fmt_ns(s.p50_ns as f64),
                fmt_ns(s.p99_ns as f64),
                served - batched,
            );
            p99.push(s.p99_ns);
            handoffs.push(served - batched);
            rows.push(
                JsonObject::new()
                    .field("grant_batching", u64::from(batching))
                    .field("tickets_served", served)
                    .field("batched_grants", batched)
                    .field("handoffs", served - batched)
                    .field("latency", s.to_json())
                    .build(),
            );
        }
        JsonObject::new()
            .field("producers", producers)
            .field("per_thread_ops", per_thread)
            .field("batch", batch)
            .field("rows", json_array(rows))
            .field("unbatched_handoffs", handoffs[0])
            .field("batched_handoffs", handoffs[1])
            .field(
                "batched_p99_over_unbatched_p99",
                p99[1] as f64 / p99[0] as f64,
            )
            .build()
    };

    // Experiment E13 — deterministic simulation & exhaustive
    // exploration: schedule-count stability, explorer throughput, and
    // the simulator's byte-identical record→replay round-trip.
    let simulation = {
        use amf_sim::{run_buffer_scenario, ReplayHeader, ScenarioParams};

        let (a, _) = explore_buffer(1, 1, 2);
        let (b, _) = explore_buffer(1, 1, 2);
        let stable = a.states == b.states && a.schedules == b.schedules;
        println!(
            "simulation (exhaustive 2x2): {} states | {} schedules | stable {}",
            a.states, a.schedules, stable
        );
        let (pairs, ops) = if quick { (2, 2) } else { (3, 2) };
        let (big, secs) = explore_buffer(1, pairs, ops);
        let states_per_sec = big.states as f64 / secs;
        println!(
            "simulation (exhaustive {}x{ops}): {} states | {} schedules | {}",
            2 * pairs,
            big.states,
            big.schedules,
            fmt_ops(states_per_sec),
        );
        let params = ScenarioParams {
            seed: 42,
            producers: 2,
            consumers: 1,
            rounds: if quick { 3 } else { 10 },
            fault_permille: 100,
        };
        let recorded = run_buffer_scenario(&params, None);
        let artifact = recorded.to_json();
        let replay_ok = recorded.error.is_none()
            && ReplayHeader::scan(&artifact)
                .map(|h| run_buffer_scenario(&params, Some(h.schedule)).to_json() == artifact)
                .unwrap_or(false);
        println!(
            "simulation (record→replay): {} decisions | {} grants | {} faults | \
             byte-identical {replay_ok}",
            recorded.schedule.len(),
            recorded.grants.len(),
            recorded.faults.len(),
        );
        JsonObject::new()
            .field(
                "canonical_2x2",
                JsonObject::new()
                    .field("states", a.states as u64)
                    .field("schedules", a.schedules as u64)
                    .field("stable_across_runs", u64::from(stable))
                    .build(),
            )
            .field(
                "explore",
                JsonObject::new()
                    .field("threads", (2 * pairs) as u64)
                    .field("ops_per_thread", ops as u64)
                    .field("states", big.states as u64)
                    .field("schedules", big.schedules as u64)
                    .field("seconds", secs)
                    .field("states_per_sec", states_per_sec)
                    .build(),
            )
            .field(
                "replay",
                JsonObject::new()
                    .field("seed", 42_u64)
                    .field("scheduling_decisions", recorded.schedule.len() as u64)
                    .field("grants", recorded.grants.len() as u64)
                    .field("faults_injected", recorded.faults.len() as u64)
                    .field("replay_byte_identical", u64::from(replay_ok))
                    .build(),
            )
            .build()
    };

    // Experiment E15 — DPOR schedule reduction: the exhaustive
    // explorer under `ReductionPolicy::None` vs `Dpor` at the same
    // bounds. Verdict and state count must agree (reduction prunes
    // redundant transition *orders*, never coverage); the headline is
    // the schedule reduction factor at the largest bound.
    let reduction = {
        use amf_bench::experiments::explore_buffer_with;
        use amf_verify::{Outcome, ReductionPolicy};

        let bounds: &[(usize, usize)] = if quick {
            &[(1, 2), (2, 2)]
        } else {
            &[(2, 2), (3, 2)]
        };
        let mut rows = Vec::new();
        let mut all_agree = true;
        let mut last_factor = 0.0;
        for &(pairs, ops) in bounds {
            let (full, full_secs) =
                explore_buffer_with(1, pairs, ops, ReductionPolicy::None, 1 << 22);
            let (red, red_secs) =
                explore_buffer_with(1, pairs, ops, ReductionPolicy::Dpor, 1 << 22);
            let agree = full.outcome == Outcome::Ok
                && red.outcome == Outcome::Ok
                && full.states == red.states;
            all_agree &= agree;
            let factor = full.schedules as f64 / red.schedules.max(1) as f64;
            last_factor = factor;
            println!(
                "reduction ({}x{ops}): none {} schedules | dpor {} schedules | \
                 {factor:.1}x fewer | states & verdict agree {agree}",
                2 * pairs,
                full.schedules,
                red.schedules,
            );
            rows.push(
                JsonObject::new()
                    .field("threads", (2 * pairs) as u64)
                    .field("ops_per_thread", ops as u64)
                    .field("states", full.states as u64)
                    .field("schedules_none", full.schedules as u64)
                    .field("schedules_dpor", red.schedules as u64)
                    .field("schedule_reduction_factor", factor)
                    .field("seconds_none", full_secs)
                    .field("seconds_dpor", red_secs)
                    .field("verdict_and_states_agree", u64::from(agree))
                    .build(),
            );
        }
        summary = summary.field("dpor_schedule_reduction_at_largest_bound", last_factor);
        JsonObject::new()
            .field("rows", json_array(rows))
            .field("all_bounds_agree", u64::from(all_agree))
            .build()
    };

    // The multi-moderator lease-handoff ring: record, replay
    // byte-identically, and confirm the dropped-handoff ablation is a
    // detected deadlock (parked set named) rather than a hang.
    let topology = {
        use amf_sim::{run_topology_scenario, TopologyParams, TopologyReplayHeader};

        let params = TopologyParams {
            seed: 42,
            nodes: 2,
            leases: if quick { 2 } else { 3 },
            hops: if quick { 2 } else { 4 },
            max_delay_ns: 50_000,
            drop_nth: None,
            dup_nth: None,
            expiry_ns: 0,
        };
        let recorded = run_topology_scenario(&params, None);
        let artifact = recorded.to_json();
        let replay_ok = recorded.error.is_none()
            && TopologyReplayHeader::scan(&artifact)
                .map(|h| run_topology_scenario(&params, Some(h.schedule)).to_json() == artifact)
                .unwrap_or(false);
        println!(
            "topology (record→replay): {} decisions | {} handoffs | {} leases retired | \
             {} fast-lane admits | byte-identical {replay_ok}",
            recorded.schedule.len(),
            recorded.handoffs.len(),
            recorded.retired.len(),
            recorded.fast_path_admits,
        );
        let dropped = run_topology_scenario(
            &TopologyParams {
                drop_nth: Some(3),
                ..params.clone()
            },
            None,
        );
        let deadlock_detected = dropped
            .error
            .as_deref()
            .is_some_and(|e| e.contains("deadlock"));
        println!("topology (drop 3rd handoff): detected deadlock {deadlock_detected}");
        JsonObject::new()
            .field("nodes", params.nodes)
            .field("leases", params.leases)
            .field("hops", params.hops)
            .field("max_delay_ns", params.max_delay_ns)
            .field("scheduling_decisions", recorded.schedule.len() as u64)
            .field("handoffs", recorded.handoffs.len() as u64)
            .field("leases_retired", recorded.retired.len() as u64)
            .field("fast_path_admits", recorded.fast_path_admits)
            .field("fast_path_fallbacks", recorded.fast_path_fallbacks)
            .field("replay_byte_identical", u64::from(replay_ok))
            .field(
                "dropped_handoff_detected_deadlock",
                u64::from(deadlock_detected),
            )
            .build()
    };

    let json = JsonObject::new()
        .field("benchmark", "moderator_sharding")
        .field("methods", 2_u64)
        .field("quick", if quick { 1_u64 } else { 0_u64 })
        .field("cpu_bound", cpu_bound)
        .field("io_bound", io_bound)
        .field("noisy_neighbor", noisy)
        .field("fast_path", fast_path)
        .field("summary", summary.build())
        .field("fairness_tail", fairness_tail)
        .field("chaos", chaos)
        .field("convoy", convoy)
        .field("simulation", simulation)
        .field("reduction", reduction)
        .field("topology", topology)
        .build();
    if let Err(e) = std::fs::write(&report, format!("{json}\n")) {
        eprintln!("failed to write {report}: {e}");
        std::process::exit(1);
    }
    println!("report: {report}");
}

//! Experiments E1–E17: the quantitative evaluation of `EXPERIMENTS.md`.
//!
//! Each function runs one experiment and returns its [`Table`]. Pass
//! `quick = true` to shrink workloads (used by unit tests and smoke
//! runs); the recorded numbers in `EXPERIMENTS.md` come from
//! `quick = false` release runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use amf_aspects::auth::Authenticator;
use amf_aspects::sched::{AdmissionGroup, Priority};
use amf_aspects::sync::ExclusionGroup;
use amf_baseline::{TangledBuffer, TangledSecureBuffer};
use amf_concurrency::SchedulerPolicy;
use amf_core::{
    AspectCapabilities, AspectModerator, Concern, Coordination, FairnessPolicy, FnAspect,
    InvocationContext, LeaseConfig, MethodId, Moderated, NoopAspect, PanicPolicy, RollbackPolicy,
    Verdict, WakeMode,
};
use amf_service::codec::{encode_request, read_frame, write_frame, Request};
use amf_service::{
    run_load, FaultProxy, FaultProxyConfig, LoadConfig, PeerConfig, PeerNode, ServiceConfig,
    ServiceFront, TicketService,
};
use amf_ticketing::{ExtendedTicketServerProxy, Ticket, TicketServerProxy};

use crate::pipeline::{ModeratedBuffer, OverheadTarget, PipelineConfig, StackTarget};
use crate::report::{fmt_ns, fmt_ops, time_ns_per_op, LatencySummary, Table};

fn scale(quick: bool, full: u64) -> u64 {
    if quick {
        (full / 100).max(200)
    } else {
        full
    }
}

/// E1 — moderation overhead: direct mutex counter vs moderated counter
/// with 0/1/2/4/8 no-op aspects.
pub fn e1_overhead(quick: bool) -> Table {
    let iters = scale(quick, 2_000_000);
    let mut t = Table::new(
        "E1 — invocation overhead (single thread)",
        &["target", "ns/op", "vs direct"],
    );
    let direct = {
        let counter = parking_lot::Mutex::new(0_u64);
        time_ns_per_op(iters, || {
            *counter.lock() += 1;
        })
    };
    t.row(&[
        "direct mutex increment".into(),
        fmt_ns(direct),
        "1.0×".into(),
    ]);
    for n in [0_usize, 1, 2, 4, 8] {
        let target = OverheadTarget::new(n);
        let ns = time_ns_per_op(iters, || target.bump());
        t.row(&[
            format!("moderated, {n} noop aspects"),
            fmt_ns(ns),
            format!("{:.1}×", ns / direct),
        ]);
    }
    t
}

fn run_pairs(
    pairs: usize,
    per_thread: u64,
    put: impl Fn(u64) + Sync,
    take: impl Fn() + Sync,
) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..pairs {
            s.spawn(|| {
                for i in 0..per_thread {
                    put(i);
                }
            });
            s.spawn(|| {
                for _ in 0..per_thread {
                    take();
                }
            });
        }
    });
    let transferred = pairs as u64 * per_thread;
    transferred as f64 / start.elapsed().as_secs_f64()
}

/// E2 — producer/consumer throughput: moderated vs tangled monitor vs
/// crossbeam channel, across thread pairs and capacities.
pub fn e2_throughput(quick: bool) -> Table {
    let total = scale(quick, 200_000);
    let mut t = Table::new(
        "E2 — producer/consumer throughput (items/s)",
        &[
            "pairs",
            "capacity",
            "moderated",
            "tangled monitor",
            "crossbeam channel",
        ],
    );
    for pairs in [1_usize, 2, 4] {
        for capacity in [1_usize, 16, 256] {
            let per_thread = total / pairs as u64;
            let moderated = {
                let b = ModeratedBuffer::new(PipelineConfig {
                    capacity,
                    ..PipelineConfig::default()
                });
                run_pairs(
                    pairs,
                    per_thread,
                    |i| b.put(i),
                    || {
                        b.take();
                    },
                )
            };
            let tangled = {
                let b = TangledBuffer::new(capacity);
                run_pairs(
                    pairs,
                    per_thread,
                    |i| b.put(i),
                    || {
                        b.take();
                    },
                )
            };
            let channel = {
                let (tx, rx) = crossbeam::channel::bounded::<u64>(capacity);
                run_pairs(
                    pairs,
                    per_thread,
                    |i| tx.send(i).unwrap(),
                    || {
                        rx.recv().unwrap();
                    },
                )
            };
            t.row(&[
                pairs.to_string(),
                capacity.to_string(),
                fmt_ops(moderated),
                fmt_ops(tangled),
                fmt_ops(channel),
            ]);
        }
    }
    t
}

/// E3 — concern stacking: cost of each additional *real* concern on one
/// method.
pub fn e3_composition(quick: bool) -> Table {
    let iters = scale(quick, 500_000);
    let mut t = Table::new(
        "E3 — concern-stacking cost (single thread)",
        &["stack", "aspects", "ns/op"],
    );
    let stacks: Vec<(&str, Vec<&str>)> = vec![
        ("sync", vec!["sync"]),
        ("sync+audit", vec!["sync", "audit"]),
        ("sync+audit+metrics", vec!["sync", "audit", "metrics"]),
        (
            "sync+audit+metrics+auth",
            vec!["sync", "audit", "metrics", "auth"],
        ),
        (
            "sync+audit+metrics+auth+quota",
            vec!["sync", "audit", "metrics", "quota", "auth"],
        ),
    ];
    for (label, stack) in stacks {
        let target = StackTarget::new(&stack);
        let ns = time_ns_per_op(iters, || target.run_once());
        t.row(&[label.to_string(), stack.len().to_string(), fmt_ns(ns)]);
    }
    t
}

/// E4 — aspect-bank scaling: registration and lookup across bank sizes.
pub fn e4_bank(quick: bool) -> Table {
    let invoke_iters = scale(quick, 500_000);
    let mut t = Table::new(
        "E4 — aspect bank scaling",
        &[
            "methods",
            "concerns/method",
            "register total",
            "invoke ns/op (broadcast wakes)",
            "invoke ns/op (wired wakes)",
        ],
    );
    let method_counts: &[usize] = if quick { &[4, 64] } else { &[4, 64, 1024] };
    for &methods in method_counts {
        for concerns in [1_usize, 8] {
            let moderator = AspectModerator::shared();
            let reg_start = Instant::now();
            let mut handles = Vec::with_capacity(methods);
            for m in 0..methods {
                let h = moderator.declare_method(MethodId::new(format!("m{m}")));
                for c in 0..concerns {
                    moderator
                        .register(&h, Concern::new(format!("c{c}")), Box::new(NoopAspect))
                        .unwrap();
                }
                handles.push(h);
            }
            let reg_total = reg_start.elapsed();
            let proxy = Moderated::new(0_u64, Arc::clone(&moderator));
            // Hot cell: the last-declared method (worst case for naive
            // scans).
            let hot = handles.last().unwrap().clone();
            let broadcast_ns = time_ns_per_op(invoke_iters, || {
                proxy.invoke(&hot, |c| *c += 1).unwrap();
            });
            // Wiring the wake graph makes completion cost O(1) in the
            // number of methods.
            moderator.wire_wakes(&hot, std::slice::from_ref(&hot));
            let wired_ns = time_ns_per_op(invoke_iters, || {
                proxy.invoke(&hot, |c| *c += 1).unwrap();
            });
            t.row(&[
                methods.to_string(),
                concerns.to_string(),
                format!("{:.2?}", reg_total),
                fmt_ns(broadcast_ns),
                fmt_ns(wired_ns),
            ]);
        }
    }
    t
}

/// Aggregates from one [`run_scheduling`] round.
#[derive(Debug, Clone, Copy)]
pub struct SchedulingOutcome {
    /// Completed operations per second across all threads.
    pub throughput: f64,
    /// When the highest-priority thread finished its batch (seconds
    /// from round start).
    pub high_finish_s: f64,
    /// When the lowest-priority thread finished its batch.
    pub low_finish_s: f64,
}

/// Runs `threads` contending threads (thread i has priority i, each
/// running `per_thread` ops) through a capacity-1 admission gate under
/// `policy`; records when each thread *finishes its batch*. A
/// priority-honoring policy front-loads high-priority work, so the
/// high-priority thread finishes well before the low one.
pub fn run_scheduling(
    policy: SchedulerPolicy,
    threads: usize,
    per_thread: u64,
) -> SchedulingOutcome {
    let moderator = AspectModerator::shared();
    let op = moderator.declare_method(MethodId::new("op"));
    let gate = AdmissionGroup::new(1, policy);
    moderator
        .register(&op, Concern::scheduling(), Box::new(gate.aspect()))
        .unwrap();
    let proxy = Moderated::new(0_u64, Arc::clone(&moderator));
    // All threads start together, and each op holds the gate for ~2µs of
    // real work, so the admission queue is never empty — the regime
    // where the policy decides who runs.
    let barrier = std::sync::Barrier::new(threads);
    let mut finishes: Vec<(u32, f64)> = Vec::new();
    let start = parking_lot::Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for pri in 0..threads as u32 {
            let proxy = &proxy;
            let moderator = &moderator;
            let op = &op;
            let barrier = &barrier;
            let start = &start;
            joins.push(s.spawn(move || {
                barrier.wait();
                let t0 = *start.lock().get_or_insert_with(Instant::now);
                for _ in 0..per_thread {
                    let mut ctx =
                        InvocationContext::new(op.id().clone(), moderator.next_invocation());
                    ctx.insert(Priority(pri));
                    let guard = proxy.enter_with(op, ctx).unwrap();
                    {
                        let mut c = guard.component();
                        *c += 1;
                        let spin = Instant::now();
                        while spin.elapsed() < Duration::from_micros(2) {
                            std::hint::spin_loop();
                        }
                    }
                    guard.complete();
                }
                (pri, t0.elapsed().as_secs_f64())
            }));
        }
        for j in joins {
            finishes.push(j.join().unwrap());
        }
    });
    let elapsed = finishes.iter().map(|(_, f)| *f).fold(0.0, f64::max);
    let total_ops = threads as u64 * per_thread;
    let high = finishes.iter().max_by_key(|(p, _)| *p).unwrap().1;
    let low = finishes.iter().min_by_key(|(p, _)| *p).unwrap().1;
    SchedulingOutcome {
        throughput: total_ops as f64 / elapsed,
        high_finish_s: high,
        low_finish_s: low,
    }
}

/// E5 — scheduling-aspect policies under contention: FIFO vs LIFO vs
/// priority.
pub fn e5_scheduling(quick: bool) -> Table {
    let per_thread = scale(quick, 5_000);
    let threads = 8;
    let mut t = Table::new(
        "E5 — admission policies (8 threads, gate capacity 1)",
        &[
            "policy",
            "throughput",
            "highest-priority thread finished at",
            "lowest-priority thread finished at",
        ],
    );
    for (name, policy) in [
        ("FIFO", SchedulerPolicy::Fifo),
        ("LIFO", SchedulerPolicy::Lifo),
        ("Priority", SchedulerPolicy::Priority),
    ] {
        let o = run_scheduling(policy, threads, per_thread);
        t.row(&[
            name.to_string(),
            fmt_ops(o.throughput),
            format!("{:.1} ms", o.high_finish_s * 1e3),
            format!("{:.1} ms", o.low_finish_s * 1e3),
        ]);
    }
    t
}

/// E6 — wake strategies: wired vs broadcast wake graph × notify-all vs
/// notify-one.
pub fn e6_wakeup(quick: bool) -> Table {
    let total = scale(quick, 100_000);
    let mut t = Table::new(
        "E6 — wake strategies (2 producer/consumer pairs, capacity 4)",
        &[
            "wake graph",
            "wake mode",
            "throughput",
            "notifications/item",
            "wakeups/item",
        ],
    );
    for (graph, wired) in [("wired (paper)", true), ("broadcast all", false)] {
        for (mode_name, mode) in [
            ("notify-all", WakeMode::NotifyAll),
            ("notify-one", WakeMode::NotifyOne),
        ] {
            let b = ModeratedBuffer::new(PipelineConfig {
                capacity: 4,
                wake_mode: mode,
                wired_wakes: wired,
                ..PipelineConfig::default()
            });
            let pairs = 2;
            let per_thread = total / pairs as u64;
            let ops = run_pairs(
                pairs,
                per_thread,
                |i| b.put(i),
                || {
                    b.take();
                },
            );
            let stats = b.stats();
            let items = (pairs as u64 * per_thread) as f64;
            t.row(&[
                graph.to_string(),
                mode_name.to_string(),
                fmt_ops(ops),
                format!("{:.2}", stats.notifications as f64 / items),
                format!("{:.2}", stats.wakeups as f64 / items),
            ]);
        }
    }
    t
}

/// E7 — rollback ablation: correctness (does a blocked outer reservation
/// strand an unrelated method?) and cost under contention.
pub fn e7_rollback(quick: bool) -> Table {
    let mut t = Table::new(
        "E7 — rollback ablation",
        &[
            "rollback policy",
            "cross-method liveness",
            "contended pipeline throughput",
        ],
    );
    let total = scale(quick, 50_000);
    for (name, policy) in [
        ("Release (ours)", RollbackPolicy::Release),
        ("None (paper literal)", RollbackPolicy::None),
    ] {
        // Correctness probe: methods `a` and `b` share a capacity-1
        // reserving pool aspect; `a` additionally blocks on a closed
        // gate *after* reserving. With rollback, the reservation is
        // released while `a` waits, so `b` can run; without, `b`
        // starves.
        let moderator = Arc::new(AspectModerator::builder().rollback(policy).build());
        let a = moderator.declare_method(MethodId::new("a"));
        let b = moderator.declare_method(MethodId::new("b"));
        let pool = ExclusionGroup::new();
        let gate = Arc::new(AtomicBool::new(false));
        // Registration order on `a`: gate first, pool second — nested
        // ordering evaluates pool (newest) first, then the gate blocks.
        {
            let gate = Arc::clone(&gate);
            moderator
                .register(
                    &a,
                    Concern::new("gate"),
                    Box::new(
                        FnAspect::new("gate").on_precondition(move |_| {
                            Verdict::resume_if(gate.load(Ordering::SeqCst))
                        }),
                    ),
                )
                .unwrap();
        }
        moderator
            .register(&a, Concern::new("pool"), Box::new(pool.aspect()))
            .unwrap();
        moderator
            .register(&b, Concern::new("pool"), Box::new(pool.aspect()))
            .unwrap();
        let proxy = Arc::new(Moderated::new(0_u64, Arc::clone(&moderator)));

        let blocked = {
            let proxy = Arc::clone(&proxy);
            let a = a.clone();
            std::thread::spawn(move || {
                // Will block on the gate (forever, until we open it).
                proxy.invoke(&a, |c| *c += 1).unwrap();
            })
        };
        while moderator.stats().blocks == 0 {
            std::thread::yield_now();
        }
        let b_result = proxy.invoke_timeout(&b, Duration::from_millis(300), |c| *c += 1);
        let liveness = match &b_result {
            Ok(()) => "b ran while a waited ✔",
            Err(e) if e.is_timeout() => "b starved (pool leak) ✘",
            Err(e) => unreachable!("unexpected abort {e}"),
        };
        // Open the gate and drop the pool aspect from `a`'s chain
        // (deregistration wakes its waiters); under RollbackPolicy::None
        // the leaked pool reservation would otherwise deadlock `a`
        // against itself forever.
        gate.store(true, Ordering::SeqCst);
        moderator.deregister(&a, &Concern::new("pool")).unwrap();
        blocked.join().unwrap();

        // Cost probe: contended capacity-1 pipeline with a deeper chain,
        // where every block rolls back the chain prefix.
        let pipe = ModeratedBuffer::new(PipelineConfig {
            capacity: 1,
            rollback: policy,
            extra_noops: 3,
            ..PipelineConfig::default()
        });
        let ops = run_pairs(
            1,
            total,
            |i| pipe.put(i),
            || {
                pipe.take();
            },
        );
        t.row(&[name.to_string(), liveness.to_string(), fmt_ops(ops)]);
    }
    t
}

/// E8 — adaptability: adding authentication in the framework (register
/// two aspects) vs the tangled baseline (rewrite the monitor).
pub fn e8_adaptability(quick: bool) -> Table {
    let iters = scale(quick, 200_000);
    let mut t = Table::new(
        "E8 — cost of adding authentication",
        &[
            "system",
            "base ns/op",
            "with auth ns/op",
            "delta",
            "functional code changed",
        ],
    );

    // Framework: trouble-ticketing proxy, base vs extended.
    let base = TicketServerProxy::new(64, AspectModerator::shared()).unwrap();
    let base_ns = time_ns_per_op(iters, || {
        base.open(Ticket::new(0, "t")).unwrap();
        base.assign().unwrap();
    }) / 2.0;
    let auth = Authenticator::shared();
    auth.add_user("bench", "pw");
    let extended =
        ExtendedTicketServerProxy::new(64, AspectModerator::shared(), Arc::clone(&auth)).unwrap();
    let token = auth.login("bench", "pw").unwrap();
    let ext_ns = time_ns_per_op(iters, || {
        extended.open(token, Ticket::new(0, "t")).unwrap();
        extended.assign(token).unwrap();
    }) / 2.0;
    t.row(&[
        "framework (moderated)".into(),
        fmt_ns(base_ns),
        fmt_ns(ext_ns),
        format!("+{}", fmt_ns(ext_ns - base_ns)),
        "0 lines (2 registrations)".into(),
    ]);

    // Tangled: monitor vs rewritten secure monitor.
    let tangled = TangledBuffer::new(64);
    let tangled_ns = time_ns_per_op(iters, || {
        tangled.put(1_u64);
        tangled.take();
    }) / 2.0;
    let secure = TangledSecureBuffer::new(64);
    secure.add_user("bench", "pw");
    let stoken = secure.login("bench", "pw").unwrap();
    let secure_ns = time_ns_per_op(iters, || {
        secure.put(stoken, 1_u64).unwrap();
        secure.take(stoken).unwrap();
    }) / 2.0;
    t.row(&[
        "tangled monitor".into(),
        fmt_ns(tangled_ns),
        fmt_ns(secure_ns),
        format!("+{}", fmt_ns(secure_ns - tangled_ns)),
        "entire monitor rewritten".into(),
    ]);
    t
}

/// Pre/post-activation cycles driven directly on the moderator — no
/// component lock in the way — with `threads` threads split evenly over
/// two disjoint methods. Each method carries a two-aspect chain and an
/// empty wake set (disjoint methods never block each other), so the
/// measurement isolates the coordination path itself.
///
/// `aspect_work` is blocking time spent inside each precondition while
/// the method's coordination cell is held — the audit-fsync /
/// remote-auth shape, where the aspect waits on something that is not
/// the CPU. Under the global lock that wait stalls *every* method's
/// coordination; under sharded cells it stalls only its own method, so
/// disjoint methods' waits overlap even on a single-CPU host. Pass
/// `Duration::ZERO` to measure the pure (CPU-bound) coordination path.
///
/// `noisy_neighbor` adds the service's background coordination traffic
/// around the measured methods: four callers parked on a gated method
/// (consumers waiting on an empty queue) and one ticker whose
/// post-activations keep the seed's default broadcast wiring
/// (`WakeTargets::All`), so every tick wakes the parked callers and
/// each re-evaluates its I/O-guarded precondition before re-blocking.
/// The topology is identical in both modes — only [`Coordination`]
/// differs: the global lock serializes that churn with the measured
/// methods, sharded cells confine it to the gated method's own cell.
/// Returns measured activations per second (background ops excluded).
pub fn run_moderator_shard(
    coordination: Coordination,
    threads: usize,
    per_thread: u64,
    aspect_work: Duration,
    noisy_neighbor: bool,
) -> f64 {
    let moderator = Arc::new(
        AspectModerator::builder()
            .coordination(coordination)
            .build(),
    );
    let io_aspect = move || {
        FnAspect::new("audit-io").on_precondition(move |_| {
            if !aspect_work.is_zero() {
                std::thread::sleep(aspect_work);
            }
            Verdict::Resume
        })
    };
    let a = moderator.declare_method(MethodId::new("shard_a"));
    let b = moderator.declare_method(MethodId::new("shard_b"));
    for m in [&a, &b] {
        moderator
            .register(m, Concern::new("sync"), Box::new(NoopAspect))
            .unwrap();
        moderator
            .register(m, Concern::new("audit"), Box::new(io_aspect()))
            .unwrap();
        moderator.wire_wakes(m, &[]);
    }
    let gate_open = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let background = noisy_neighbor.then(|| {
        let gated = moderator.declare_method(MethodId::new("gated"));
        let tick = moderator.declare_method(MethodId::new("tick"));
        moderator
            .register(&gated, Concern::new("audit"), Box::new(io_aspect()))
            .unwrap();
        let open = Arc::clone(&gate_open);
        moderator
            .register(
                &gated,
                Concern::new("admission"),
                Box::new(FnAspect::new("closed-gate").on_precondition(move |_| {
                    if open.load(Ordering::Relaxed) {
                        Verdict::Resume
                    } else {
                        Verdict::Block
                    }
                })),
            )
            .unwrap();
        moderator
            .register(&tick, Concern::new("audit"), Box::new(io_aspect()))
            .unwrap();
        // `tick` keeps the default broadcast wiring: no `wire_wakes`.
        (gated, tick)
    });

    let one_op = |m: &amf_core::MethodHandle| {
        let mut ctx = InvocationContext::new(m.id().clone(), moderator.next_invocation());
        moderator.preactivation(m, &mut ctx).unwrap();
        moderator.postactivation(m, &mut ctx);
    };

    let barrier = std::sync::Barrier::new(threads);
    let start = parking_lot::Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        if let Some((gated, tick)) = &background {
            for _ in 0..4 {
                let moderator = &moderator;
                s.spawn(move || {
                    let mut ctx =
                        InvocationContext::new(gated.id().clone(), moderator.next_invocation());
                    moderator.preactivation(gated, &mut ctx).unwrap();
                    moderator.postactivation(gated, &mut ctx);
                });
            }
            while moderator.method_stats(gated).blocks < 4 {
                std::thread::yield_now();
            }
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    one_op(tick);
                }
            });
        }

        let mut joins = Vec::new();
        for t in 0..threads {
            let m = if t % 2 == 0 { a.clone() } else { b.clone() };
            let moderator = &moderator;
            let barrier = &barrier;
            let start = &start;
            joins.push(s.spawn(move || {
                barrier.wait();
                let t0 = *start.lock().get_or_insert_with(Instant::now);
                for _ in 0..per_thread {
                    let mut ctx =
                        InvocationContext::new(m.id().clone(), moderator.next_invocation());
                    moderator.preactivation(&m, &mut ctx).unwrap();
                    moderator.postactivation(&m, &mut ctx);
                }
                t0.elapsed().as_secs_f64()
            }));
        }
        let elapsed = joins
            .into_iter()
            .map(|j| j.join().unwrap())
            .fold(0.0, f64::max);

        // Unwind the background topology: open the gate, then keep
        // ticking until every parked caller has resumed.
        stop.store(true, Ordering::Relaxed);
        gate_open.store(true, Ordering::Relaxed);
        if let Some((gated, tick)) = &background {
            while moderator.method_stats(gated).resumes < 4 {
                one_op(tick);
            }
        }
        (threads as u64 * per_thread) as f64 / elapsed
    })
}

/// E9 — coordination sharding: per-method cells vs the retained global
/// lock at 1/2/4/8 threads over two disjoint methods. Three regimes:
/// a pure CPU-bound chain (`work 0`), chains whose aspects block on
/// simulated I/O while their cell is held, and the I/O-bound chains
/// next to noisy-neighbor background coordination traffic.
pub fn e9_sharding(quick: bool) -> Table {
    let mut t = Table::new(
        "E9 — coordination sharding (two disjoint methods)",
        &[
            "threads",
            "work/op",
            "background",
            "global lock",
            "sharded cells",
            "speedup",
        ],
    );
    let io = Duration::from_micros(200);
    for (work, noisy, per_thread) in [
        (Duration::ZERO, false, scale(quick, 400_000)),
        (io, false, scale(quick, 2_000) / 4),
        (io, true, scale(quick, 2_000) / 4),
    ] {
        for threads in [1_usize, 2, 4, 8] {
            let global =
                run_moderator_shard(Coordination::GlobalLock, threads, per_thread, work, noisy);
            let sharded =
                run_moderator_shard(Coordination::Sharded, threads, per_thread, work, noisy);
            t.row(&[
                threads.to_string(),
                if work.is_zero() {
                    "0".into()
                } else {
                    format!("{} µs", work.as_micros())
                },
                if noisy { "noisy".into() } else { "idle".into() },
                fmt_ops(global),
                fmt_ops(sharded),
                format!("{:.2}×", sharded / global),
            ]);
        }
    }
    t
}

/// Per-activation `open` latency through a capacity-1 gated buffer
/// hammered by `producers` threads under `fairness`, with one consumer
/// draining it. `noisy` adds the E9-style background churn: four
/// callers parked on a closed gate plus a ticker that keeps the seed's
/// default broadcast wiring, so every tick spuriously wakes the
/// measured queues and each parked producer re-evaluates before
/// re-blocking — the regime where a barging queue can starve a waiter
/// (every freed slot is contested by fresh arrivals) while a ticketed
/// queue bounds everyone's wait by queue length.
///
/// Returns the digest of every producer activation's wall-clock latency
/// (preactivation through postactivation, parked time included).
pub fn run_fairness_tail(
    fairness: FairnessPolicy,
    producers: usize,
    per_thread: u64,
    noisy: bool,
) -> LatencySummary {
    let moderator = Arc::new(AspectModerator::builder().fairness(fairness).build());
    let slots = Arc::new(AtomicU64::new(1));
    let items = Arc::new(AtomicU64::new(0));
    let open = moderator.declare_method(MethodId::new("open"));
    let take = moderator.declare_method(MethodId::new("take"));
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &open,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("slot-gate")
                        .on_precondition(move |_| {
                            if slots.load(Ordering::SeqCst) > 0 {
                                slots.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            items.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .unwrap();
    }
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &take,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("item-gate")
                        .on_precondition(move |_| {
                            if items.load(Ordering::SeqCst) > 0 {
                                items.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            slots.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .unwrap();
    }
    moderator.wire_wakes(&open, std::slice::from_ref(&take));
    moderator.wire_wakes(&take, std::slice::from_ref(&open));

    let one_op = |m: &amf_core::MethodHandle| {
        let mut ctx = InvocationContext::new(m.id().clone(), moderator.next_invocation());
        moderator.preactivation(m, &mut ctx).unwrap();
        moderator.postactivation(m, &mut ctx);
    };

    let gate_open = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let background = noisy.then(|| {
        let gated = moderator.declare_method(MethodId::new("gated"));
        let tick = moderator.declare_method(MethodId::new("tick"));
        let open_flag = Arc::clone(&gate_open);
        moderator
            .register(
                &gated,
                Concern::new("admission"),
                Box::new(FnAspect::new("closed-gate").on_precondition(move |_| {
                    Verdict::resume_if(open_flag.load(Ordering::Relaxed))
                })),
            )
            .unwrap();
        // The same audit-fsync shape as E9's background paces the
        // ticker (~5K broadcasts/s): churn on the measured queues, not
        // saturation of their cell locks.
        moderator
            .register(
                &tick,
                Concern::new("audit"),
                Box::new(FnAspect::new("audit-io").on_precondition(move |_| {
                    std::thread::sleep(Duration::from_micros(200));
                    Verdict::Resume
                })),
            )
            .unwrap();
        // `tick` keeps the default broadcast wiring: every completion
        // notifies all cells, including the measured buffer's queues.
        (gated, tick)
    });

    let barrier = std::sync::Barrier::new(producers + 1);
    let mut samples: Vec<u64> = Vec::with_capacity(producers * per_thread as usize);
    std::thread::scope(|s| {
        if let Some((gated, tick)) = &background {
            for _ in 0..4 {
                let moderator = &moderator;
                s.spawn(move || {
                    let mut ctx =
                        InvocationContext::new(gated.id().clone(), moderator.next_invocation());
                    moderator.preactivation(gated, &mut ctx).unwrap();
                    moderator.postactivation(gated, &mut ctx);
                });
            }
            while moderator.method_stats(gated).blocks < 4 {
                std::thread::yield_now();
            }
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    one_op(tick);
                }
            });
        }

        let mut joins = Vec::new();
        for _ in 0..producers {
            let moderator = &moderator;
            let open = &open;
            let barrier = &barrier;
            joins.push(s.spawn(move || {
                let mut local = Vec::with_capacity(per_thread as usize);
                barrier.wait();
                for _ in 0..per_thread {
                    let t0 = Instant::now();
                    let mut ctx =
                        InvocationContext::new(open.id().clone(), moderator.next_invocation());
                    moderator.preactivation(open, &mut ctx).unwrap();
                    moderator.postactivation(open, &mut ctx);
                    local.push(t0.elapsed().as_nanos() as u64);
                }
                local
            }));
        }
        {
            let moderator = &moderator;
            let take = &take;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for _ in 0..producers as u64 * per_thread {
                    let mut ctx =
                        InvocationContext::new(take.id().clone(), moderator.next_invocation());
                    moderator.preactivation(take, &mut ctx).unwrap();
                    moderator.postactivation(take, &mut ctx);
                }
            });
        }
        for j in joins {
            samples.extend(j.join().unwrap());
        }

        stop.store(true, Ordering::Relaxed);
        gate_open.store(true, Ordering::Relaxed);
        if let Some((gated, tick)) = &background {
            while moderator.method_stats(gated).resumes < 4 {
                one_op(tick);
            }
        }
    });
    LatencySummary::from_unsorted(&mut samples)
}

/// E10 — wake fairness: per-activation tail latency of 8 producers on a
/// capacity-1 buffer, `Barging` vs `Fifo`, idle and next to the
/// broadcast-wake noisy neighbor. Barging minimizes the median (a
/// newcomer that finds the slot free skips the queue); ticketed FIFO
/// bounds the tail (no waiter is ever overtaken, so p99 tracks queue
/// length instead of scheduler luck).
pub fn e10_fairness(quick: bool) -> Table {
    let per_thread = scale(quick, 20_000);
    let producers = 8;
    let mut t = Table::new(
        "E10 — wake fairness tail latency (8 producers, capacity-1 buffer)",
        &["policy", "background", "p50", "p99", "max", "mean"],
    );
    for noisy in [false, true] {
        for (name, policy) in [
            ("Barging", FairnessPolicy::Barging),
            ("Fifo", FairnessPolicy::Fifo),
        ] {
            let s = run_fairness_tail(policy, producers, per_thread, noisy);
            t.row(&[
                name.to_string(),
                if noisy { "noisy".into() } else { "idle".into() },
                fmt_ns(s.p50_ns as f64),
                fmt_ns(s.p99_ns as f64),
                fmt_ns(s.max_ns as f64),
                fmt_ns(s.mean_ns as f64),
            ]);
        }
    }
    t
}

/// One chaos-regime run for E11: `producers` threads push `per_thread`
/// ops each through a capacity-16 put/take pipeline (low contention, so
/// the latency measures the coordination path itself, not queueing)
/// under the given panic policy, with a seeded [`PanicInjectionAspect`]
/// firing in `put`'s precondition at `pre_rate` *after* the slot gate
/// has reserved — every injected panic exercises the prefix unwind.
/// Producers retry through contained panics, so the measured latency at
/// a non-zero rate includes recovery. Returns the per-op latency
/// summary and the moderator's `panics_caught`.
///
/// [`PanicInjectionAspect`]: amf_aspects::fault::PanicInjectionAspect
pub fn run_chaos(
    fairness: FairnessPolicy,
    policy: PanicPolicy,
    pre_rate: f64,
    producers: usize,
    per_thread: u64,
) -> (LatencySummary, u64) {
    use amf_aspects::fault::{chaos_seed, PanicInjectionAspect};

    assert!(
        pre_rate == 0.0 || policy != PanicPolicy::Propagate,
        "a propagating run cannot inject panics"
    );
    let moderator = Arc::new(
        AspectModerator::builder()
            .fairness(fairness)
            .panic_policy(policy)
            .build(),
    );
    let capacity: u64 = 16;
    let slots = Arc::new(AtomicU64::new(capacity));
    let items = Arc::new(AtomicU64::new(0));
    let put = moderator.declare_method(MethodId::new("put"));
    let take = moderator.declare_method(MethodId::new("take"));
    // The injector registers first so the slot gate (registered after,
    // hence newest) evaluates before it: a fired panic always finds a
    // reserved slot to unwind.
    moderator
        .register(
            &put,
            Concern::new("panic-injection"),
            Box::new(PanicInjectionAspect::new(pre_rate, 0.0, chaos_seed(0xE11))),
        )
        .unwrap();
    {
        let (dec, undo, done) = (Arc::clone(&slots), Arc::clone(&slots), Arc::clone(&items));
        moderator
            .register(
                &put,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("slot-gate")
                        .on_precondition(move |_| {
                            if dec.load(Ordering::SeqCst) > 0 {
                                dec.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            done.fetch_add(1, Ordering::SeqCst);
                        })
                        .on_release_do(move |_, _| {
                            undo.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .unwrap();
    }
    {
        let (dec, undo, done) = (Arc::clone(&items), Arc::clone(&items), Arc::clone(&slots));
        moderator
            .register(
                &take,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("item-gate")
                        .on_precondition(move |_| {
                            if dec.load(Ordering::SeqCst) > 0 {
                                dec.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            done.fetch_add(1, Ordering::SeqCst);
                        })
                        .on_release_do(move |_, _| {
                            undo.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .unwrap();
    }
    moderator.wire_wakes(&put, std::slice::from_ref(&take));
    moderator.wire_wakes(&take, std::slice::from_ref(&put));

    let barrier = std::sync::Barrier::new(producers + 1);
    let mut samples: Vec<u64> = Vec::with_capacity(producers * per_thread as usize);
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for _ in 0..producers {
            let moderator = &moderator;
            let put = &put;
            let barrier = &barrier;
            joins.push(s.spawn(move || {
                let mut local = Vec::with_capacity(per_thread as usize);
                barrier.wait();
                for _ in 0..per_thread {
                    let t0 = Instant::now();
                    // Retry through contained panics: at a non-zero
                    // rate the sample includes the recovery cost.
                    loop {
                        let mut ctx =
                            InvocationContext::new(put.id().clone(), moderator.next_invocation());
                        match moderator.preactivation(put, &mut ctx) {
                            Ok(()) => {
                                moderator.postactivation(put, &mut ctx);
                                break;
                            }
                            Err(e) if e.is_panic() => continue,
                            Err(e) => panic!("unexpected abort: {e}"),
                        }
                    }
                    local.push(t0.elapsed().as_nanos() as u64);
                }
                local
            }));
        }
        {
            let moderator = &moderator;
            let take = &take;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for _ in 0..producers as u64 * per_thread {
                    let mut ctx =
                        InvocationContext::new(take.id().clone(), moderator.next_invocation());
                    moderator.preactivation(take, &mut ctx).unwrap();
                    moderator.postactivation(take, &mut ctx);
                }
            });
        }
        for j in joins {
            samples.extend(j.join().unwrap());
        }
    });
    let panics = moderator.stats().panics_caught;
    (LatencySummary::from_unsorted(&mut samples), panics)
}

/// E11 — containment overhead and recovery: the put/take pipeline under
/// `Propagate` (no `catch_unwind` anywhere) vs `AbortInvocation` at
/// panic rate 0 — the price of the safety net when nothing panics —
/// then `AbortInvocation` riding out a 1% precondition panic rate, with
/// producers retrying through every contained abort.
pub fn e11_containment(quick: bool) -> Table {
    let per_thread = scale(quick, 20_000);
    let producers = 8;
    let mut t = Table::new(
        "E11 — panic containment overhead and recovery (8 producers, capacity-16 buffer)",
        &[
            "fairness",
            "policy",
            "panic rate",
            "p50",
            "p99",
            "mean",
            "panics caught",
        ],
    );
    // Contained panics run the (default, printing) panic hook; silence
    // it for the storm rows so release runs do not flood stderr.
    let _ = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    for (fname, fairness) in [
        ("Barging", FairnessPolicy::Barging),
        ("Fifo", FairnessPolicy::Fifo),
    ] {
        for (pname, policy, rate) in [
            ("Propagate", PanicPolicy::Propagate, 0.0),
            ("AbortInvocation", PanicPolicy::AbortInvocation, 0.0),
            ("AbortInvocation", PanicPolicy::AbortInvocation, 0.01),
        ] {
            let (s, panics) = run_chaos(fairness, policy, rate, producers, per_thread);
            t.row(&[
                fname.to_string(),
                pname.to_string(),
                format!("{:.0}%", rate * 100.0),
                fmt_ns(s.p50_ns as f64),
                fmt_ns(s.p99_ns as f64),
                fmt_ns(s.mean_ns as f64),
                panics.to_string(),
            ]);
        }
    }
    let _ = std::panic::take_hook();
    t
}

/// One convoy run for E12: `producers` FIFO threads contend for slots
/// that a single drainer frees `batch` at a time — each drain
/// postaction returns `batch` slots in one sweep-triggering settle, the
/// capacity-`k` shape batched admission exists for. Under `NotifyOne`
/// the drain sends *one* signal; without batching every admission past
/// the signalled head needs a fresh wake handoff (the convoy), with
/// batching the freed prefix rides the grant-extension chain. Returns
/// the per-`open` latency summary plus `open`'s
/// (`tickets_served`, `batched_grants`) — handoffs are their
/// difference.
pub fn run_convoy(
    grant_batching: bool,
    producers: usize,
    per_thread: u64,
    batch: u64,
) -> (LatencySummary, u64, u64) {
    let moderator = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .wake_mode(WakeMode::NotifyOne)
            .grant_batching(grant_batching)
            .build(),
    );
    let slots = Arc::new(AtomicU64::new(batch));
    let items = Arc::new(AtomicU64::new(0));
    let open = moderator.declare_method(MethodId::new("open"));
    let drain = moderator.declare_method(MethodId::new("drain"));
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &open,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("slot-gate")
                        .on_precondition(move |_| {
                            if slots.load(Ordering::SeqCst) > 0 {
                                slots.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            items.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .unwrap();
    }
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &drain,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("batch-gate")
                        .on_precondition(move |_| {
                            if items.load(Ordering::SeqCst) >= batch {
                                items.fetch_sub(batch, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            // The convoy trigger: `batch` slots come
                            // free in this one postactivation.
                            slots.fetch_add(batch, Ordering::SeqCst);
                        }),
                ),
            )
            .unwrap();
    }
    moderator.wire_wakes(&open, std::slice::from_ref(&drain));
    moderator.wire_wakes(&drain, std::slice::from_ref(&open));

    let total = producers as u64 * per_thread;
    assert_eq!(total % batch, 0, "drains must consume the run exactly");
    let barrier = std::sync::Barrier::new(producers + 1);
    let mut samples: Vec<u64> = Vec::with_capacity(total as usize);
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for _ in 0..producers {
            let moderator = &moderator;
            let open = &open;
            let barrier = &barrier;
            joins.push(s.spawn(move || {
                let mut local = Vec::with_capacity(per_thread as usize);
                barrier.wait();
                for _ in 0..per_thread {
                    let t0 = Instant::now();
                    let mut ctx =
                        InvocationContext::new(open.id().clone(), moderator.next_invocation());
                    moderator.preactivation(open, &mut ctx).unwrap();
                    moderator.postactivation(open, &mut ctx);
                    local.push(t0.elapsed().as_nanos() as u64);
                }
                local
            }));
        }
        {
            let moderator = &moderator;
            let drain = &drain;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for _ in 0..total / batch {
                    let mut ctx =
                        InvocationContext::new(drain.id().clone(), moderator.next_invocation());
                    moderator.preactivation(drain, &mut ctx).unwrap();
                    moderator.postactivation(drain, &mut ctx);
                }
            });
        }
        for j in joins {
            samples.extend(j.join().unwrap());
        }
    });
    let ms = moderator.method_stats(&open);
    (
        LatencySummary::from_unsorted(&mut samples),
        ms.tickets_served,
        ms.batched_grants,
    )
}

/// E12 — batched FIFO admission: convoy cost on a capacity-4 gate whose
/// slots are freed four at a time under `NotifyOne`, `grant_batching`
/// off vs on. Handoffs (`tickets_served − batched_grants`) must drop
/// strictly when batching is on — the freed prefix drains on one
/// cursor-ordered sweep instead of a wake chain — while p99 stays no
/// worse.
pub fn e12_convoy(quick: bool) -> Table {
    let per_thread = scale(quick, 10_000);
    let producers = 8;
    let batch = 4;
    let mut t = Table::new(
        "E12 — batched admission convoy (8 producers, 4 slots freed per drain, NotifyOne)",
        &[
            "batching", "p50", "p99", "max", "served", "batched", "handoffs",
        ],
    );
    for (name, on) in [("off", false), ("on", true)] {
        let (s, served, batched) = run_convoy(on, producers, per_thread, batch);
        t.row(&[
            name.to_string(),
            fmt_ns(s.p50_ns as f64),
            fmt_ns(s.p99_ns as f64),
            fmt_ns(s.max_ns as f64),
            served.to_string(),
            batched.to_string(),
            (served - batched).to_string(),
        ]);
    }
    t
}

/// V1 — exhaustive verification of the producer/consumer composition:
/// states explored and verdicts across configurations, including the
/// E7 anomaly as a machine-checked counterexample.
pub fn v1_verification(quick: bool) -> Table {
    use amf_verify::{aspects, Checker, ModelSystem, Outcome};

    #[derive(Clone, PartialEq, Eq, Hash, Default)]
    struct Buf {
        reserved: usize,
        produced: usize,
        producing: bool,
        consuming: bool,
    }

    let mut t = Table::new(
        "V1 — exhaustive verification (model checker)",
        &["composition", "threads×ops", "states", "verdict"],
    );

    let configs: &[(usize, usize, usize)] = if quick {
        &[(1, 1, 2), (2, 2, 2)]
    } else {
        &[(1, 1, 2), (1, 2, 2), (2, 2, 2), (2, 2, 3), (1, 3, 2)]
    };
    for &(capacity, pairs, ops) in configs {
        let mut sys = ModelSystem::new();
        let put = sys.method("put");
        let take = sys.method("take");
        sys.add_aspect(
            put,
            "sync",
            aspects::buffer_producer(
                capacity,
                |s: &mut Buf| &mut s.reserved,
                |s: &mut Buf| &mut s.produced,
                |s: &mut Buf| &mut s.producing,
            ),
        );
        sys.add_aspect(
            take,
            "sync",
            aspects::buffer_consumer(
                |s: &mut Buf| &mut s.reserved,
                |s: &mut Buf| &mut s.produced,
                |s: &mut Buf| &mut s.consuming,
            ),
        );
        let mut checker = Checker::new(sys)
            .invariant(move |s: &Buf| s.reserved <= capacity && s.produced <= s.reserved);
        for _ in 0..pairs {
            checker = checker.thread(vec![put; ops]);
            checker = checker.thread(vec![take; ops]);
        }
        let r = checker.run(Buf::default());
        let verdict = match r.outcome {
            Outcome::Ok => "deadlock-free + invariants hold".to_string(),
            other => format!("{other:?}"),
        };
        t.row(&[
            format!("buffer cap {capacity}"),
            format!("{}×{ops}", 2 * pairs),
            r.states.to_string(),
            verdict,
        ]);
    }

    // The E7 anomaly, both ways.
    #[derive(Clone, PartialEq, Eq, Hash, Default)]
    struct Pool {
        busy: bool,
        gate_open: bool,
    }
    for (label, rollback) in [
        ("anomaly w/ rollback", true),
        ("anomaly w/o rollback", false),
    ] {
        let mut sys = ModelSystem::<Pool>::new();
        let a = sys.method("a");
        let b = sys.method("b");
        sys.add_aspect(a, "gate", aspects::guard(|s: &Pool| s.gate_open));
        for m in [a, b] {
            sys.add_aspect(
                m,
                "pool",
                aspects::reserve(
                    |s: &Pool| !s.busy,
                    |s: &mut Pool| s.busy = true,
                    |s: &mut Pool| s.busy = false,
                ),
            );
        }
        sys.set_body(b, |s: &mut Pool| s.gate_open = true);
        let r = Checker::new(sys.rollback(rollback))
            .thread(vec![a])
            .thread(vec![b])
            .run(Pool::default());
        let verdict = match r.outcome {
            Outcome::Ok => "deadlock-free".to_string(),
            Outcome::Deadlock(trace) => format!("DEADLOCK after {} steps", trace.len()),
            other => format!("{other:?}"),
        };
        t.row(&[
            label.to_string(),
            "2×1".to_string(),
            r.states.to_string(),
            verdict,
        ]);
    }
    t
}

/// Exhaustively explores the producer/consumer model at the given
/// bounds and returns the exploration report plus the wall time it
/// took, for E13's states/sec accounting.
pub fn explore_buffer(capacity: usize, pairs: usize, ops: usize) -> (amf_verify::Exploration, f64) {
    explore_buffer_with(
        capacity,
        pairs,
        ops,
        amf_verify::ReductionPolicy::None,
        1_000_000,
    )
}

/// [`explore_buffer`] with an explicit [`ReductionPolicy`] and state
/// budget — the A/B harness behind E15's reduction-factor rows. The
/// scenario keeps its per-step invariant, so the persistent-set layer
/// is inert here and the measured reduction is the sleep sets' alone.
///
/// [`ReductionPolicy`]: amf_verify::ReductionPolicy
pub fn explore_buffer_with(
    capacity: usize,
    pairs: usize,
    ops: usize,
    policy: amf_verify::ReductionPolicy,
    max_states: usize,
) -> (amf_verify::Exploration, f64) {
    use amf_verify::{aspects, Checker, ModelSystem, Strategy};

    #[derive(Clone, PartialEq, Eq, Hash, Default)]
    struct Buf {
        reserved: usize,
        produced: usize,
        producing: bool,
        consuming: bool,
    }
    let mut sys = ModelSystem::new();
    let put = sys.method("put");
    let take = sys.method("take");
    sys.add_aspect(
        put,
        "sync",
        aspects::buffer_producer(
            capacity,
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.producing,
        ),
    );
    sys.add_aspect(
        take,
        "sync",
        aspects::buffer_consumer(
            |s: &mut Buf| &mut s.reserved,
            |s: &mut Buf| &mut s.produced,
            |s: &mut Buf| &mut s.consuming,
        ),
    );
    let mut checker = Checker::new(sys)
        .strategy(Strategy::Exhaustive)
        .reduction(policy)
        .max_states(max_states)
        .invariant(move |s: &Buf| s.reserved <= capacity && s.produced <= s.reserved);
    for _ in 0..pairs {
        checker = checker.thread(vec![put; ops]);
        checker = checker.thread(vec![take; ops]);
    }
    let start = Instant::now();
    let r = checker.run(Buf::default());
    let secs = start.elapsed().as_secs_f64();
    (r, secs)
}

/// E13 — deterministic simulation & exhaustive exploration: the
/// explorer's schedule/state counts (stable across runs) with
/// states/sec at a larger bound, plus the simulator's record→replay
/// round-trip on the real moderator (byte-identical artifact).
pub fn e13_simulation(quick: bool) -> Table {
    use amf_sim::{run_buffer_scenario, ReplayHeader, ScenarioParams};
    use amf_verify::Outcome;

    let mut t = Table::new(
        "E13 — deterministic simulation & exhaustive exploration",
        &[
            "scenario",
            "size",
            "states",
            "schedules",
            "states/sec",
            "verdict",
        ],
    );

    // The canonical bounded scenario, twice: the counts must agree.
    let (a, _) = explore_buffer(1, 1, 2);
    let (b, _) = explore_buffer(1, 1, 2);
    let stable = a.states == b.states && a.schedules == b.schedules;
    t.row(&[
        "exhaustive buffer cap 1".to_string(),
        "2×2".to_string(),
        a.states.to_string(),
        a.schedules.to_string(),
        "-".to_string(),
        match (&a.outcome, stable) {
            (Outcome::Ok, true) => "ok, counts stable across runs ✔".to_string(),
            (Outcome::Ok, false) => "counts UNSTABLE ✘".to_string(),
            (other, _) => format!("{other:?}"),
        },
    ]);

    // A larger bound for meaningful throughput numbers.
    let (pairs, ops) = if quick { (2, 2) } else { (3, 2) };
    let (big, secs) = explore_buffer(1, pairs, ops);
    t.row(&[
        "exhaustive buffer cap 1".to_string(),
        format!("{}×{ops}", 2 * pairs),
        big.states.to_string(),
        big.schedules.to_string(),
        fmt_ops(big.states as f64 / secs),
        match big.outcome {
            Outcome::Ok => "deadlock-free + invariants hold".to_string(),
            other => format!("{other:?}"),
        },
    ]);

    // The simulator on the real moderator: record a faulted run, replay
    // its schedule, demand a byte-identical artifact.
    let params = ScenarioParams {
        seed: 42,
        producers: 2,
        consumers: 1,
        rounds: if quick { 3 } else { 10 },
        fault_permille: 100,
    };
    let recorded = run_buffer_scenario(&params, None);
    let artifact = recorded.to_json();
    let replay_ok = ReplayHeader::scan(&artifact)
        .map(|h| run_buffer_scenario(&params, Some(h.schedule)).to_json() == artifact)
        .unwrap_or(false);
    t.row(&[
        "sim record→replay (real moderator)".to_string(),
        format!(
            "p{} c{} r{} seed {}",
            params.producers, params.consumers, params.rounds, params.seed
        ),
        "-".to_string(),
        recorded.schedule.len().to_string(),
        "-".to_string(),
        if recorded.error.is_none() && replay_ok {
            format!(
                "byte-identical, {} faults injected ✔",
                recorded.faults.len()
            )
        } else {
            format!("replay DIVERGED ✘ (error: {:?})", recorded.error)
        },
    ]);
    t
}

/// Throughput of two disjoint methods whose two-aspect chains are pure
/// no-ops, with `declare_pure` controlling whether the aspects
/// *declare* the capability contract ([`AspectCapabilities::all`])
/// that makes their rows fast-path eligible. Undeclared, every
/// activation takes the locked two-phase path under `coordination`;
/// declared, the hot path is one CAS admit and one CAS release per
/// activation, and the cell lock is never touched. Wake wiring is
/// empty in both variants (an eligibility precondition, and the same
/// wiring `run_moderator_shard` uses). Returns activations per second.
pub fn run_moderator_fast(
    coordination: Coordination,
    threads: usize,
    per_thread: u64,
    declare_pure: bool,
) -> f64 {
    let moderator = Arc::new(
        AspectModerator::builder()
            .coordination(coordination)
            .build(),
    );
    let aspect = |name: &'static str| {
        let a = FnAspect::new(name).on_precondition(|_| Verdict::Resume);
        if declare_pure {
            a.declare_capabilities(AspectCapabilities::all())
        } else {
            a
        }
    };
    let a = moderator.declare_method(MethodId::new("fast_a"));
    let b = moderator.declare_method(MethodId::new("fast_b"));
    for m in [&a, &b] {
        moderator
            .register(m, Concern::new("sync"), Box::new(aspect("pure-sync")))
            .unwrap();
        moderator
            .register(m, Concern::new("audit"), Box::new(aspect("pure-audit")))
            .unwrap();
        moderator.wire_wakes(m, &[]);
    }
    let barrier = std::sync::Barrier::new(threads);
    let start = parking_lot::Mutex::new(None::<Instant>);
    std::thread::scope(|s| {
        let mut joins = Vec::new();
        for t in 0..threads {
            let m = if t % 2 == 0 { a.clone() } else { b.clone() };
            let moderator = &moderator;
            let barrier = &barrier;
            let start = &start;
            joins.push(s.spawn(move || {
                barrier.wait();
                let t0 = *start.lock().get_or_insert_with(Instant::now);
                for _ in 0..per_thread {
                    let mut ctx =
                        InvocationContext::new(m.id().clone(), moderator.next_invocation());
                    moderator.preactivation(&m, &mut ctx).unwrap();
                    moderator.postactivation(&m, &mut ctx);
                }
                t0.elapsed().as_secs_f64()
            }));
        }
        let elapsed = joins
            .into_iter()
            .map(|j| j.join().unwrap())
            .fold(0.0, f64::max);
        if declare_pure {
            let s = moderator.stats();
            assert!(
                s.fast_path_admits > 0,
                "declared-pure rows must take the CAS lane: {s:?}"
            );
        }
        (threads as u64 * per_thread) as f64 / elapsed
    })
}

/// E14 — lock-free two-phase admission: the CAS fast lane against the
/// locked path at 1/2/4/8 threads over two disjoint pure-chain
/// methods. Three columns: the retained global lock (undeclared
/// aspects), sharded cells still taking the locked path (undeclared),
/// and sharded cells with the capability contract declared — the
/// headline is the last column's speedup over the first.
pub fn e14_fast_path(quick: bool) -> Table {
    let mut t = Table::new(
        "E14 — lock-free fast-lane admission (two pure methods)",
        &[
            "threads",
            "global lock",
            "sharded locked",
            "fast lane",
            "speedup vs lock",
        ],
    );
    let per_thread = scale(quick, 400_000);
    for threads in [1_usize, 2, 4, 8] {
        let global = run_moderator_fast(Coordination::GlobalLock, threads, per_thread, false);
        let locked = run_moderator_fast(Coordination::Sharded, threads, per_thread, false);
        let fast = run_moderator_fast(Coordination::Sharded, threads, per_thread, true);
        t.row(&[
            threads.to_string(),
            fmt_ops(global),
            fmt_ops(locked),
            fmt_ops(fast),
            format!("{:.2}×", fast / global),
        ]);
    }
    t
}

/// E15 — DPOR schedule reduction: the exhaustive explorer under
/// `ReductionPolicy::None` vs `ReductionPolicy::Dpor` on the
/// capacity-1 producer/consumer model. Verdicts must agree at every
/// bound (reduction prunes redundant transition *orders*, never
/// states); the headline is the schedule reduction factor at 6×2 and
/// the 8×2 row, which only completes at all under `Dpor`.
pub fn e15_reduction(quick: bool) -> Table {
    use amf_verify::{Outcome, ReductionPolicy};

    let mut t = Table::new(
        "E15 — DPOR schedule reduction (exhaustive buffer, cap 1)",
        &[
            "size",
            "policy",
            "states",
            "schedules",
            "states/sec",
            "verdict",
        ],
    );
    let bounds: &[(usize, usize)] = if quick {
        &[(1, 2), (2, 2)]
    } else {
        &[(2, 2), (3, 2)]
    };
    for &(pairs, ops) in bounds {
        let (full, full_secs) = explore_buffer_with(1, pairs, ops, ReductionPolicy::None, 1 << 22);
        let (red, red_secs) = explore_buffer_with(1, pairs, ops, ReductionPolicy::Dpor, 1 << 22);
        let agree = full.outcome == red.outcome && full.states == red.states;
        let factor = full.schedules as f64 / red.schedules.max(1) as f64;
        t.row(&[
            format!("{}×{ops}", 2 * pairs),
            "None".to_string(),
            full.states.to_string(),
            full.schedules.to_string(),
            fmt_ops(full.states as f64 / full_secs),
            match full.outcome {
                Outcome::Ok => "ok".to_string(),
                ref other => format!("{other:?}"),
            },
        ]);
        t.row(&[
            format!("{}×{ops}", 2 * pairs),
            "Dpor".to_string(),
            red.states.to_string(),
            red.schedules.to_string(),
            fmt_ops(red.states as f64 / red_secs),
            if agree {
                format!("same verdict & states, {factor:.1}× fewer schedules ✔")
            } else {
                format!("verdict/states DIVERGED ✘ ({:?})", red.outcome)
            },
        ]);
    }
    // The frontier bound: infeasible under None (the schedule count
    // explodes past any reasonable budget), completed under Dpor —
    // 50.9M states / 47.6M schedules, roughly 70 minutes and ~25 GB on
    // a single shared core, so it only runs in full (non-quick) mode.
    if !quick {
        eprintln!("e15: exploring the 8×2 frontier bound (expect ~an hour) ...");
        let (big, secs) = explore_buffer_with(1, 4, 2, ReductionPolicy::Dpor, 1 << 26);
        t.row(&[
            "8×2".to_string(),
            "Dpor".to_string(),
            big.states.to_string(),
            big.schedules.to_string(),
            fmt_ops(big.states as f64 / secs),
            match big.outcome {
                Outcome::Ok => "ok (previously infeasible) ✔".to_string(),
                ref other => format!("{other:?}"),
            },
        ]);
    }
    t
}

/// Outcome of one E16 ring run: throughput, recovery work, and the
/// grant ack-latency digest.
#[derive(Debug, Clone, Copy)]
pub struct WireRun {
    /// Lease visits completed per second of wall time.
    pub goodput: f64,
    /// Grant-plane frames retransmitted after a backoff deadline.
    pub retransmits: u64,
    /// Handoffs reclaimed after expiry.
    pub reclaimed: u64,
    /// Duplicate grants dropped idempotently.
    pub dup_dropped: u64,
    /// First-send → acknowledged latency digest of every grant
    /// (retransmissions included) — the recovery-time distribution.
    pub recovery: LatencySummary,
    /// Whether every lease retired exactly once.
    pub complete: bool,
}

/// Spawns a live 3-node [`PeerNode`] ring over loopback TCP, each link
/// fronted by a seeded [`FaultProxy`] dropping and duplicating
/// `fault_permille` of grant-plane frames, and runs `leases` leases of
/// `visits` visits to retirement. Shared by E16 and the service load
/// generator's `wire_topology` report section.
pub fn run_wire_ring(fault_permille: u64, leases: u64, visits: u64, expiry: Duration) -> WireRun {
    const NODES: usize = 3;
    let lease = LeaseConfig {
        expiry,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
        jitter_seed: 7,
    };
    let nodes: Vec<PeerNode> = (0..NODES)
        .map(|i| {
            PeerNode::spawn(PeerConfig {
                node: i as u64,
                seed_leases: if i == 0 { leases } else { 0 },
                visits,
                lease: lease.clone(),
                ..PeerConfig::default()
            })
            .expect("spawn ring node")
        })
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|n| n.addr().to_string()).collect();
    let mut proxies = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        let proxy = FaultProxy::spawn(FaultProxyConfig {
            target: addrs[(i + 1) % NODES].clone(),
            drop_permille: fault_permille,
            dup_permille: fault_permille,
            max_delay: Duration::from_micros(200),
            seed: 0xE16 + i as u64,
            ..FaultProxyConfig::default()
        })
        .expect("spawn fault proxy");
        node.set_next(&proxy.addr().to_string());
        proxies.push(proxy);
    }
    let t0 = Instant::now();
    let deadline = Duration::from_secs(60);
    loop {
        let retired: u64 = nodes.iter().map(|n| n.stats().retired).sum();
        if retired >= leases || t0.elapsed() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let mut retired: Vec<u64> = nodes.iter().flat_map(|n| n.retired()).collect();
    retired.sort_unstable();
    let complete = retired == (0..leases).collect::<Vec<u64>>();
    let mut samples: Vec<u64> = nodes
        .iter()
        .flat_map(|n| n.ack_latencies())
        .map(|d| d.as_nanos() as u64)
        .collect();
    let (retransmits, reclaimed, dup_dropped) = nodes.iter().fold((0, 0, 0), |acc, n| {
        let s = n.stats();
        (
            acc.0 + s.retransmits,
            acc.1 + s.reclaimed,
            acc.2 + s.dup_dropped,
        )
    });
    WireRun {
        goodput: (leases * visits) as f64 / elapsed,
        retransmits,
        reclaimed,
        dup_dropped,
        recovery: LatencySummary::from_unsorted(&mut samples),
        complete,
    }
}

/// E16 — wire recovery: a live 3-node TCP ring under seeded link
/// faults at 0‰ / 10‰ / 100‰ drop (with equal duplication). Every
/// lease must retire exactly once at every fault rate, and the handoff
/// recovery p99 — first send to acknowledged, retransmissions included
/// — must stay within 2× the lease expiry deadline: the acceptance
/// bound for the recovery state machine on the real wire.
pub fn e16_wire_recovery(quick: bool) -> Table {
    let mut t = Table::new(
        "E16 — wire recovery (live 3-node TCP ring, seeded fault proxies)",
        &[
            "faults ‰",
            "goodput",
            "retransmits",
            "reclaimed",
            "dup dropped",
            "recovery p99",
            "verdict",
        ],
    );
    let (leases, visits) = if quick { (2, 6) } else { (8, 30) };
    let expiry = Duration::from_millis(150);
    for faults in [0_u64, 10, 100] {
        let r = run_wire_ring(faults, leases, visits, expiry);
        let within = Duration::from_nanos(r.recovery.p99_ns) <= 2 * expiry;
        t.row(&[
            faults.to_string(),
            format!("{:.0} visits/s", r.goodput),
            r.retransmits.to_string(),
            r.reclaimed.to_string(),
            r.dup_dropped.to_string(),
            fmt_ns(r.recovery.p99_ns as f64),
            if r.complete && within {
                "zero lost, p99 ≤ 2× deadline ✔".to_string()
            } else {
                format!(
                    "FAILED ✘ (complete={}, p99 within bound={within})",
                    r.complete
                )
            },
        ]);
    }
    t
}

/// Outcome of one E17 front measurement: a mostly-idle connection
/// fleet held open while a contended 8-client active subset runs, the
/// fleet's resident-memory cost, and the active subset's request p99.
#[derive(Debug, Clone, Copy)]
pub struct ConnScaling {
    /// Overall request p99 of the active subset, measured while the
    /// whole idle fleet stayed connected.
    pub p99_ns: u64,
    /// Requests per second of the active subset.
    pub throughput: f64,
    /// Connections held live at once: the idle fleet plus the active
    /// subset. Every idle connection is proven live by a stats
    /// round-trip both before and after the contended phase.
    pub sustained: usize,
    /// VmRSS growth from before the service existed to the fleet
    /// being fully held — for the threaded front this includes the
    /// worker stack pinned per connection, for the task front the
    /// per-connection reactor state.
    pub rss_delta_bytes: u64,
}

/// Current resident set from `/proc/self/status`, in bytes. Returns 0
/// when the proc filesystem is unavailable, which disables the RSS
/// comparison rather than failing the run.
fn vm_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map_or(0, |kb| kb * 1024)
}

/// Sweeps the whole idle fleet with a stats round-trip per
/// connection: held connections answering the wire, not a backlog of
/// accepted-but-unserved sockets.
fn sweep_fleet(fleet: &mut [std::net::TcpStream], when: &str) {
    let stats_frame = encode_request(&Request::Stats);
    for conn in fleet.iter_mut() {
        write_frame(conn, &stats_frame).unwrap_or_else(|e| panic!("stats request {when}: {e}"));
        let body = read_frame(conn)
            .unwrap_or_else(|e| panic!("stats reply {when}: {e}"))
            .unwrap_or_else(|| panic!("connection closed {when}"));
        assert!(!body.is_empty(), "stats reply carries a body");
    }
}

/// One front's E17 run: spawn the service with `workers` execution
/// parallelism, warm it up with a discarded load pass, open
/// `idle_conns` raw sockets (no client-side buffering, so the RSS
/// delta is dominated by per-connection server cost) and prove each
/// live with a stats round-trip, then run the contended 8-client
/// active subset *while the fleet stays held* (best p99 of five
/// trials) and sweep the fleet again afterwards. RSS is measured from
/// before the service existed,
/// so a front that pins a worker stack per connection pays for those
/// stacks in its delta. The threaded front must therefore be given
/// `workers ≥ idle_conns + 8` — each held connection pins a pool
/// worker for its lifetime, and the active subset needs the rest.
pub fn run_connection_scaling(
    front: ServiceFront,
    workers: usize,
    idle_conns: usize,
    requests: u64,
) -> ConnScaling {
    let rss_before = vm_rss_bytes();
    let mut handle = TicketService::spawn(
        "127.0.0.1:0",
        ServiceConfig {
            workers,
            front,
            ..ServiceConfig::default()
        },
    )
    .expect("spawn scaling service");
    let auth = handle.authenticator();
    auth.add_user("e17", "e17");
    let token = auth.login("e17", "e17").expect("login");
    let load = |requests: u64| {
        run_load(&LoadConfig {
            clients: 8,
            requests,
            addr: handle.addr(),
            token,
        })
        .expect("load phase")
    };
    // Warmup pass, discarded: absorbs first-touch page faults and
    // allocator growth so neither front pays cold-start costs in the
    // measured phase.
    load((requests / 4).max(1_000));

    let mut fleet: Vec<std::net::TcpStream> = (0..idle_conns)
        .map(|_| std::net::TcpStream::connect(handle.addr()).expect("idle connection"))
        .collect();
    sweep_fleet(&mut fleet, "while opening the fleet");
    let rss_delta = vm_rss_bytes().saturating_sub(rss_before);

    // The contended active subset, measured with the fleet held. Five
    // trials, best p99 kept: single-trial tail latency on a shared
    // machine carries scheduler-interference spikes that swamp the
    // between-front difference being measured, so each front is
    // compared at the floor of its own distribution.
    let mut p99_ns = u64::MAX;
    let mut throughput = 0.0_f64;
    for _ in 0..5 {
        let outcome = load(requests);
        let mut all = outcome.open_latencies_ns.clone();
        all.extend_from_slice(&outcome.assign_latencies_ns);
        let active = LatencySummary::from_unsorted(&mut all);
        if active.p99_ns < p99_ns {
            p99_ns = active.p99_ns;
            throughput = outcome.throughput();
        }
    }
    sweep_fleet(&mut fleet, "after the contended phase");

    drop(fleet);
    handle.shutdown();
    ConnScaling {
        p99_ns,
        throughput,
        sustained: idle_conns + 8,
        rss_delta_bytes: rss_delta,
    }
}

/// E17's acceptance flags: the task front holds ≥10× the threaded
/// front's connection count, at no more resident memory (page-noise
/// slack) and with active-subset p99 no worse (10% measurement-jitter
/// allowance on a strict ≤ comparison).
pub fn conn_scaling_meets(task: &ConnScaling, threaded: &ConnScaling) -> (bool, bool, bool) {
    let tenfold = task.sustained >= 10 * threaded.sustained;
    let equal_rss = task.rss_delta_bytes <= threaded.rss_delta_bytes + 256 * 1024;
    let p99_ok = task.p99_ns as f64 <= threaded.p99_ns as f64 * 1.10;
    (tenfold, equal_rss, p99_ok)
}

/// E17 — connection scaling: both fronts are asked to hold a
/// mostly-idle fleet while a contended 8-client active subset runs.
/// The threaded front pins a pool worker per connection, so its fleet
/// costs a thread stack each and it is configured with exactly enough
/// workers for fleet + active subset; the task front holds ten times
/// the connections on a fixed 16-worker engine, and must do it at no
/// more resident memory and with active-subset p99 no worse. The task
/// phase runs first so its larger fleet is measured against a cold
/// allocator — page reuse can only flatter the threaded phase, which
/// is the conservative direction for the claim.
pub fn e17_connection_scaling(quick: bool) -> Table {
    let mut t = Table::new(
        "E17 — connection scaling (idle fleet + contended active subset per front)",
        &[
            "front",
            "workers",
            "held conns",
            "RSS delta",
            "active p99",
            "throughput",
            "verdict",
        ],
    );
    let (threaded_idle, task_idle, requests) = if quick {
        (16, 240, 2_000)
    } else {
        (192, 2_040, 8_000)
    };
    let task = run_connection_scaling(ServiceFront::Task, 16, task_idle, requests);
    let threaded = run_connection_scaling(
        ServiceFront::Threaded,
        threaded_idle + 8,
        threaded_idle,
        requests,
    );
    let (tenfold, equal_rss, p99_ok) = conn_scaling_meets(&task, &threaded);
    t.row(&[
        "threaded".into(),
        (threaded_idle + 8).to_string(),
        threaded.sustained.to_string(),
        format!("{} KiB", threaded.rss_delta_bytes / 1024),
        fmt_ns(threaded.p99_ns as f64),
        fmt_ops(threaded.throughput),
        "one pool worker pinned per held connection".into(),
    ]);
    t.row(&[
        "task".into(),
        "16".into(),
        task.sustained.to_string(),
        format!("{} KiB", task.rss_delta_bytes / 1024),
        fmt_ns(task.p99_ns as f64),
        fmt_ops(task.throughput),
        if tenfold && equal_rss && p99_ok {
            "≥10× conns, equal RSS, p99 no worse ✔".to_string()
        } else {
            format!("FAILED ✘ (tenfold={tenfold}, equal_rss={equal_rss}, p99_ok={p99_ok})")
        },
    ]);
    t
}

/// Runs the named experiments ("e1".."e17", "v1" or "all") and prints
/// their tables.
pub fn run(names: &[String], quick: bool) {
    let wants = |n: &str| {
        names.is_empty()
            || names.iter().any(|x| x.eq_ignore_ascii_case(n))
            || names.iter().any(|x| x.eq_ignore_ascii_case("all"))
    };
    type Runner = fn(bool) -> Table;
    let runners: [(&str, Runner); 18] = [
        ("e1", e1_overhead),
        ("e2", e2_throughput),
        ("e3", e3_composition),
        ("e4", e4_bank),
        ("e5", e5_scheduling),
        ("e6", e6_wakeup),
        ("e7", e7_rollback),
        ("e8", e8_adaptability),
        ("e9", e9_sharding),
        ("e10", e10_fairness),
        ("e11", e11_containment),
        ("e12", e12_convoy),
        ("e13", e13_simulation),
        ("e14", e14_fast_path),
        ("e15", e15_reduction),
        ("e16", e16_wire_recovery),
        ("e17", e17_connection_scaling),
        ("v1", v1_verification),
    ];
    for (name, f) in runners {
        if wants(name) {
            eprintln!("running {name} ...");
            f(quick).print();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_produces_rows() {
        assert_eq!(e1_overhead(true).len(), 6);
    }

    #[test]
    fn e3_produces_rows() {
        assert_eq!(e3_composition(true).len(), 5);
    }

    #[test]
    fn e4_produces_rows() {
        assert_eq!(e4_bank(true).len(), 4);
    }

    #[test]
    fn e2_produces_rows() {
        assert_eq!(e2_throughput(true).len(), 9);
    }

    #[test]
    fn e5_produces_rows() {
        assert_eq!(e5_scheduling(true).len(), 3);
    }

    #[test]
    fn e6_produces_rows() {
        assert_eq!(e6_wakeup(true).len(), 4);
    }

    #[test]
    fn e14_produces_rows() {
        assert_eq!(e14_fast_path(true).len(), 4);
    }

    #[test]
    fn e13_explores_and_round_trips() {
        let md = e13_simulation(true).to_markdown();
        assert!(md.contains("counts stable across runs ✔"), "{md}");
        assert!(md.contains("byte-identical"), "{md}");
    }

    #[test]
    fn e15_reduces_with_agreement() {
        let md = e15_reduction(true).to_markdown();
        assert!(md.contains("fewer schedules ✔"), "{md}");
        assert!(!md.contains("DIVERGED"), "{md}");
    }

    #[test]
    fn e16_recovers_on_the_wire() {
        let md = e16_wire_recovery(true).to_markdown();
        assert!(
            md.contains("zero lost, p99 ≤ 2× deadline ✔"),
            "every fault rate must pass:\n{md}"
        );
        assert!(!md.contains("FAILED"), "{md}");
    }

    #[test]
    fn e17_holds_the_fleet_live() {
        // Verdict flags are asserted by the release loadgen run, where
        // latency comparisons are meaningful; here the liveness pass
        // itself (every fleet connection answers stats) is the test.
        assert_eq!(e17_connection_scaling(true).len(), 2);
    }

    #[test]
    fn v1_finds_the_anomaly() {
        let md = v1_verification(true).to_markdown();
        assert!(md.contains("deadlock-free"));
        assert!(md.contains("DEADLOCK"), "{md}");
    }

    #[test]
    fn e7_liveness_depends_on_rollback() {
        let table = e7_rollback(true);
        let md = table.to_markdown();
        assert!(md.contains("b ran while a waited ✔"), "rollback row:\n{md}");
        assert!(
            md.contains("b starved (pool leak) ✘"),
            "no-rollback row:\n{md}"
        );
    }

    #[test]
    fn e8_produces_rows() {
        assert_eq!(e8_adaptability(true).len(), 2);
    }

    #[test]
    fn e9_produces_rows() {
        assert_eq!(e9_sharding(true).len(), 12);
    }

    #[test]
    fn e10_produces_rows() {
        assert_eq!(e10_fairness(true).len(), 4);
    }

    #[test]
    fn e11_produces_rows() {
        assert_eq!(e11_containment(true).len(), 6);
    }

    #[test]
    fn e12_produces_rows() {
        assert_eq!(e12_convoy(true).len(), 2);
    }

    #[test]
    fn convoy_runner_counts_batched_grants_only_when_enabled() {
        let (s_off, served_off, batched_off) = run_convoy(false, 4, 200, 4);
        assert_eq!(s_off.count, 800, "{s_off:?}");
        assert_eq!(served_off + batched_off, served_off, "no extensions off");
        let (s_on, served_on, batched_on) = run_convoy(true, 4, 200, 4);
        assert_eq!(s_on.count, 800, "{s_on:?}");
        assert!(batched_on <= served_on, "{batched_on} vs {served_on}");
    }

    #[test]
    fn chaos_runner_accounts_for_every_panic() {
        std::panic::set_hook(Box::new(|_| {}));
        let (s, panics) = run_chaos(
            FairnessPolicy::Barging,
            PanicPolicy::AbortInvocation,
            0.2,
            2,
            200,
        );
        let _ = std::panic::take_hook();
        assert_eq!(s.count, 400, "{s:?}");
        assert!(panics > 0, "a 20% rate over 400+ evaluations must fire");
    }

    #[test]
    fn fairness_runner_measures_every_activation() {
        for policy in [FairnessPolicy::Barging, FairnessPolicy::Fifo] {
            let s = run_fairness_tail(policy, 2, 50, false);
            assert_eq!(s.count, 100, "{s:?}");
            assert!(s.p99_ns >= s.p50_ns, "{s:?}");
        }
    }

    #[test]
    fn sharding_runner_counts_every_activation() {
        for coordination in [Coordination::Sharded, Coordination::GlobalLock] {
            let ops = run_moderator_shard(coordination, 4, 500, Duration::ZERO, false);
            assert!(ops > 0.0);
        }
    }

    #[test]
    fn sharding_runner_respects_aspect_work() {
        let ops = run_moderator_shard(
            Coordination::Sharded,
            2,
            5,
            Duration::from_micros(100),
            false,
        );
        // 5 ops/thread at >=100 µs each cannot exceed 10 Kop/s per cell.
        assert!(ops > 0.0 && ops < 50_000.0, "{ops}");
    }

    #[test]
    fn sharding_runner_unwinds_noisy_neighbors() {
        // Both modes must park 4 background callers, run the measured
        // loop, then release every parked caller before returning.
        for coordination in [Coordination::Sharded, Coordination::GlobalLock] {
            let ops = run_moderator_shard(coordination, 2, 10, Duration::ZERO, true);
            assert!(ops > 0.0);
        }
    }
}

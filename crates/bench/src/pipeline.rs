//! Systems under test, shared by the `experiments` binary and the
//! Criterion benches.

use std::sync::Arc;

use amf_aspects::sync::{BufferSyncGroup, BufferSyncHandle};
use amf_concurrency::RingBuffer;
use amf_core::{
    AspectModerator, Concern, MethodHandle, MethodId, Moderated, ModeratorStats, NoopAspect,
    RollbackPolicy, WakeMode,
};

/// Configuration axes for the moderated producer/consumer pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Buffer capacity.
    pub capacity: usize,
    /// How notifications wake waiters.
    pub wake_mode: WakeMode,
    /// `true` wires put→take / take→put (the paper's graph); `false`
    /// notifies every queue.
    pub wired_wakes: bool,
    /// Rollback policy for multi-aspect chains.
    pub rollback: RollbackPolicy,
    /// Extra no-op aspects stacked on each method (composition depth).
    pub extra_noops: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            capacity: 16,
            wake_mode: WakeMode::NotifyAll,
            wired_wakes: true,
            rollback: RollbackPolicy::Release,
            extra_noops: 0,
        }
    }
}

/// A moderated bounded buffer of `u64`s: the framework's
/// producer/consumer pipeline reduced to its essentials.
pub struct ModeratedBuffer {
    proxy: Moderated<RingBuffer<u64>>,
    put: MethodHandle,
    take: MethodHandle,
    sync_handle: BufferSyncHandle,
}

impl ModeratedBuffer {
    /// Builds the pipeline per `config`.
    pub fn new(config: PipelineConfig) -> Self {
        let moderator = Arc::new(
            AspectModerator::builder()
                .wake_mode(config.wake_mode)
                .rollback(config.rollback)
                .build(),
        );
        let put = moderator.declare_method(MethodId::new("put"));
        let take = moderator.declare_method(MethodId::new("take"));
        let group = BufferSyncGroup::new(config.capacity);
        moderator
            .register(
                &put,
                Concern::synchronization(),
                Box::new(group.producer_aspect()),
            )
            .expect("fresh moderator");
        moderator
            .register(
                &take,
                Concern::synchronization(),
                Box::new(group.consumer_aspect()),
            )
            .expect("fresh moderator");
        for i in 0..config.extra_noops {
            for handle in [&put, &take] {
                moderator
                    .register(
                        handle,
                        Concern::new(format!("noop-{i}")),
                        Box::new(NoopAspect),
                    )
                    .expect("fresh moderator");
            }
        }
        if config.wired_wakes {
            moderator.wire_wakes(&put, std::slice::from_ref(&take));
            moderator.wire_wakes(&take, std::slice::from_ref(&put));
        }
        Self {
            proxy: Moderated::new(RingBuffer::with_capacity(config.capacity), moderator),
            put,
            take,
            sync_handle: group.handle(),
        }
    }

    /// Guarded blocking insert.
    pub fn put(&self, v: u64) {
        self.proxy
            .invoke(&self.put, |rb| {
                rb.push_back(v).expect("sync aspect guarantees a slot")
            })
            .expect("pipeline aspects never abort");
    }

    /// Guarded blocking removal.
    pub fn take(&self) -> u64 {
        self.proxy
            .invoke(&self.take, |rb| {
                rb.pop_front().expect("sync aspect guarantees an item")
            })
            .expect("pipeline aspects never abort")
    }

    /// Moderator counters (blocks, notifications, ...).
    pub fn stats(&self) -> ModeratorStats {
        self.proxy.moderator().stats()
    }

    /// Shared-counter snapshot from the sync aspects.
    pub fn sync_handle(&self) -> &BufferSyncHandle {
        &self.sync_handle
    }
}

/// A moderated counter with `n` no-op aspects — the E1 overhead target.
pub struct OverheadTarget {
    proxy: Moderated<u64>,
    bump: MethodHandle,
}

impl OverheadTarget {
    /// Builds a counter guarded by `n_aspects` no-op aspects.
    pub fn new(n_aspects: usize) -> Self {
        let moderator = AspectModerator::shared();
        let bump = moderator.declare_method(MethodId::new("bump"));
        for i in 0..n_aspects {
            moderator
                .register(
                    &bump,
                    Concern::new(format!("noop-{i}")),
                    Box::new(NoopAspect),
                )
                .expect("fresh moderator");
        }
        Self {
            proxy: Moderated::new(0, moderator),
            bump,
        }
    }

    /// One guarded increment.
    #[inline]
    pub fn bump(&self) {
        self.proxy
            .invoke(&self.bump, |c| *c += 1)
            .expect("noop aspects never abort");
    }

    /// Current counter value.
    pub fn value(&self) -> u64 {
        self.proxy.with_component(|c| *c)
    }
}

/// A moderated counter guarded by a configurable stack of *real*
/// concerns — the E3 composition target.
///
/// Recognized stack entries: `"sync"`, `"audit"`, `"metrics"`,
/// `"auth"`, `"quota"`.
pub struct StackTarget {
    moderator: Arc<AspectModerator>,
    proxy: Moderated<u64>,
    op: MethodHandle,
    token: Option<amf_aspects::auth::AuthToken>,
}

impl StackTarget {
    /// Builds the target with the given concern stack.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized stack entry.
    pub fn new(stack: &[&str]) -> Self {
        use amf_aspects::audit::{AuditAspect, AuditLog};
        use amf_aspects::auth::{AuthenticationAspect, Authenticator};
        use amf_aspects::metrics::{MetricsAspect, MetricsHub};
        use amf_aspects::quota::QuotaAspect;
        use amf_aspects::sync::ExclusionGroup;

        let moderator = AspectModerator::shared();
        let op = moderator.declare_method(MethodId::new("op"));
        let mut token = None;
        for concern in stack {
            match *concern {
                "sync" => {
                    let group = ExclusionGroup::new();
                    moderator
                        .register(&op, Concern::synchronization(), Box::new(group.aspect()))
                        .unwrap();
                }
                "audit" => {
                    let log = Arc::new(AuditLog::bounded(1024));
                    moderator
                        .register(&op, Concern::audit(), Box::new(AuditAspect::new(log)))
                        .unwrap();
                }
                "metrics" => {
                    moderator
                        .register(
                            &op,
                            Concern::metrics(),
                            Box::new(MetricsAspect::new(MetricsHub::new())),
                        )
                        .unwrap();
                }
                "auth" => {
                    let auth = Authenticator::shared();
                    auth.add_user("bench", "pw");
                    token = Some(auth.login("bench", "pw").unwrap());
                    moderator
                        .register(
                            &op,
                            Concern::authentication(),
                            Box::new(AuthenticationAspect::new(auth)),
                        )
                        .unwrap();
                }
                "quota" => {
                    moderator
                        .register(&op, Concern::quota(), Box::new(QuotaAspect::new(u64::MAX)))
                        .unwrap();
                }
                other => panic!("unknown stack entry `{other}`"),
            }
        }
        Self {
            proxy: Moderated::new(0, Arc::clone(&moderator)),
            moderator,
            op,
            token,
        }
    }

    /// One guarded increment through the whole stack.
    pub fn run_once(&self) {
        let mut ctx = amf_core::InvocationContext::new(
            self.op.id().clone(),
            self.moderator.next_invocation(),
        );
        if let Some(token) = self.token {
            ctx.insert(token);
        }
        let guard = self
            .proxy
            .enter_with(&self.op, ctx)
            .expect("bench stacks never abort");
        *guard.component() += 1;
        guard.complete();
    }

    /// Current counter value.
    pub fn value(&self) -> u64 {
        self.proxy.with_component(|c| *c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn pipeline_roundtrip() {
        let b = ModeratedBuffer::new(PipelineConfig::default());
        b.put(1);
        b.put(2);
        assert_eq!(b.take(), 1);
        assert_eq!(b.take(), 2);
    }

    #[test]
    fn pipeline_under_contention() {
        let b = Arc::new(ModeratedBuffer::new(PipelineConfig {
            capacity: 4,
            ..PipelineConfig::default()
        }));
        let n = 1_000_u64;
        let producer = {
            let b = Arc::clone(&b);
            thread::spawn(move || {
                for i in 0..n {
                    b.put(i);
                }
            })
        };
        let consumer = {
            let b = Arc::clone(&b);
            thread::spawn(move || (0..n).map(|_| b.take()).sum::<u64>())
        };
        producer.join().unwrap();
        assert_eq!(consumer.join().unwrap(), n * (n - 1) / 2);
        let snap = b.sync_handle().snapshot();
        assert_eq!(snap.reserved, 0);
        assert_eq!(snap.produced, 0);
    }

    #[test]
    fn extra_noops_do_not_change_semantics() {
        let b = ModeratedBuffer::new(PipelineConfig {
            capacity: 1,
            extra_noops: 4,
            ..PipelineConfig::default()
        });
        b.put(9);
        assert_eq!(b.take(), 9);
    }

    #[test]
    fn overhead_target_counts() {
        let t = OverheadTarget::new(8);
        for _ in 0..100 {
            t.bump();
        }
        assert_eq!(t.value(), 100);
    }

    #[test]
    fn stack_target_runs_full_stack() {
        let t = StackTarget::new(&["sync", "audit", "metrics", "quota", "auth"]);
        for _ in 0..10 {
            t.run_once();
        }
        assert_eq!(t.value(), 10);
    }

    #[test]
    #[should_panic(expected = "unknown stack entry")]
    fn stack_target_rejects_unknown() {
        let _ = StackTarget::new(&["telepathy"]);
    }
}

//! Markdown table rendering for the experiment harness.

use std::fmt::Write as _;

/// A simple markdown table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Prints the markdown rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Formats a nanosecond figure with a thousands-aware unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Formats an operations-per-second figure.
pub fn fmt_ops(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1_000_000.0 {
        format!("{:.2} Mop/s", ops_per_sec / 1_000_000.0)
    } else if ops_per_sec >= 1_000.0 {
        format!("{:.1} Kop/s", ops_per_sec / 1_000.0)
    } else {
        format!("{ops_per_sec:.0} op/s")
    }
}

/// Times `f` over `iters` iterations and returns mean ns/op.
pub fn time_ns_per_op(iters: u64, mut f: impl FnMut()) -> f64 {
    // Warm up.
    for _ in 0..iters.min(1_000) {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ns(512.0), "512 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
        assert_eq!(fmt_ops(500.0), "500 op/s");
        assert_eq!(fmt_ops(2_500.0), "2.5 Kop/s");
        assert_eq!(fmt_ops(2_000_000.0), "2.00 Mop/s");
    }

    #[test]
    fn timer_returns_positive() {
        let ns = time_ns_per_op(100, || {
            std::hint::black_box(1 + 1);
        });
        assert!(ns >= 0.0);
    }
}

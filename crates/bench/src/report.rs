//! Markdown table rendering, latency summaries and JSON emission for
//! the experiment harness and the service load generator.

use std::fmt::Write as _;

/// A simple markdown table accumulated row by row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Prints the markdown rendering to stdout.
    pub fn print(&self) {
        println!("{}", self.to_markdown());
    }
}

/// Formats a nanosecond figure with a thousands-aware unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Formats an operations-per-second figure.
pub fn fmt_ops(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1_000_000.0 {
        format!("{:.2} Mop/s", ops_per_sec / 1_000_000.0)
    } else if ops_per_sec >= 1_000.0 {
        format!("{:.1} Kop/s", ops_per_sec / 1_000.0)
    } else {
        format!("{ops_per_sec:.0} op/s")
    }
}

/// Nearest-rank percentile over an ascending-sorted sample set.
///
/// `p` is in `[0, 100]`. Returns 0 for an empty slice.
///
/// # Panics
///
/// Panics when `p` is outside `[0, 100]`.
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// p50/p95/p99 latency digest of one operation class, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples summarized.
    pub count: u64,
    /// Median latency.
    pub p50_ns: u64,
    /// 95th percentile latency.
    pub p95_ns: u64,
    /// 99th percentile latency.
    pub p99_ns: u64,
    /// Worst observed latency.
    pub max_ns: u64,
    /// Arithmetic mean latency.
    pub mean_ns: u64,
}

impl LatencySummary {
    /// Summarizes `samples` (sorted in place).
    pub fn from_unsorted(samples: &mut [u64]) -> Self {
        samples.sort_unstable();
        let count = samples.len() as u64;
        let mean = if samples.is_empty() {
            0
        } else {
            (samples.iter().map(|&v| u128::from(v)).sum::<u128>() / u128::from(count)) as u64
        };
        Self {
            count,
            p50_ns: percentile_ns(samples, 50.0),
            p95_ns: percentile_ns(samples, 95.0),
            p99_ns: percentile_ns(samples, 99.0),
            max_ns: samples.last().copied().unwrap_or(0),
            mean_ns: mean,
        }
    }

    /// Renders the digest as a JSON object value.
    pub fn to_json(&self) -> JsonValue {
        JsonObject::new()
            .field("count", self.count)
            .field("p50_ns", self.p50_ns)
            .field("p95_ns", self.p95_ns)
            .field("p99_ns", self.p99_ns)
            .field("max_ns", self.max_ns)
            .field("mean_ns", self.mean_ns)
            .build()
    }
}

/// A rendered JSON value (the bench harness emits JSON without a
/// serialization dependency).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonValue(String);

impl JsonValue {
    /// The rendered JSON text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Builder for a JSON object, preserving field order.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, String)>,
}

/// Types embeddable as JSON object field values.
pub trait ToJsonValue {
    /// Renders the value as JSON text.
    fn render(&self) -> String;
}

impl ToJsonValue for u64 {
    fn render(&self) -> String {
        self.to_string()
    }
}

impl ToJsonValue for usize {
    fn render(&self) -> String {
        self.to_string()
    }
}

impl ToJsonValue for f64 {
    fn render(&self) -> String {
        if self.is_finite() {
            format!("{self:.3}")
        } else {
            "null".to_string()
        }
    }
}

impl ToJsonValue for &str {
    fn render(&self) -> String {
        let mut out = String::with_capacity(self.len() + 2);
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

impl ToJsonValue for JsonValue {
    fn render(&self) -> String {
        self.0.clone()
    }
}

/// Builds a JSON array from already-rendered values.
pub fn json_array(values: impl IntoIterator<Item = JsonValue>) -> JsonValue {
    let body = values
        .into_iter()
        .map(|v| v.0)
        .collect::<Vec<_>>()
        .join(", ");
    JsonValue(format!("[{body}]"))
}

impl JsonObject {
    /// An empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one field.
    #[must_use]
    pub fn field(mut self, name: &str, value: impl ToJsonValue) -> Self {
        self.fields.push((name.render(), value.render()));
        self
    }

    /// Renders the object.
    pub fn build(self) -> JsonValue {
        let body = self
            .fields
            .iter()
            .map(|(k, v)| format!("{k}: {v}"))
            .collect::<Vec<_>>()
            .join(", ");
        JsonValue(format!("{{{body}}}"))
    }
}

/// Times `f` over `iters` iterations and returns mean ns/op.
pub fn time_ns_per_op(iters: u64, mut f: impl FnMut()) -> f64 {
    // Warm up.
    for _ in 0..iters.min(1_000) {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ns(512.0), "512 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
        assert_eq!(fmt_ops(500.0), "500 op/s");
        assert_eq!(fmt_ops(2_500.0), "2.5 Kop/s");
        assert_eq!(fmt_ops(2_000_000.0), "2.00 Mop/s");
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&sorted, 50.0), 50);
        assert_eq!(percentile_ns(&sorted, 95.0), 95);
        assert_eq!(percentile_ns(&sorted, 99.0), 99);
        assert_eq!(percentile_ns(&sorted, 100.0), 100);
        assert_eq!(percentile_ns(&sorted, 0.0), 1);
        assert_eq!(percentile_ns(&[], 50.0), 0);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
    }

    #[test]
    fn latency_summary_digests() {
        let mut samples: Vec<u64> = (1..=1000).rev().collect();
        let s = LatencySummary::from_unsorted(&mut samples);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50_ns, 500);
        assert_eq!(s.p95_ns, 950);
        assert_eq!(s.p99_ns, 990);
        assert_eq!(s.max_ns, 1000);
        assert_eq!(s.mean_ns, 500);
        let json = s.to_json().to_string();
        assert!(json.contains("\"p99_ns\": 990"), "{json}");
    }

    #[test]
    fn json_objects_nest_and_escape() {
        let inner = JsonObject::new().field("x", 1u64).build();
        let json = JsonObject::new()
            .field("name", "he said \"hi\"\n")
            .field("rate", 12.5f64)
            .field("inner", inner)
            .build()
            .to_string();
        assert_eq!(
            json,
            "{\"name\": \"he said \\\"hi\\\"\\n\", \"rate\": 12.500, \"inner\": {\"x\": 1}}"
        );
    }

    #[test]
    fn timer_returns_positive() {
        let ns = time_ns_per_op(100, || {
            std::hint::black_box(1 + 1);
        });
        assert!(ns >= 0.0);
    }
}

//! Networked front for the Aspect Moderator ticket server.
//!
//! The paper composes concerns around *in-process* method activations;
//! this crate puts that composition on the wire. A small TCP server
//! accepts length-prefixed binary frames ([`codec`]), and every remote
//! `open`/`assign` runs the full pre-/post-activation protocol of the
//! moderated proxy — authentication, per-principal quotas, optional
//! global throttling, metrics and protocol traces are all *aspects*
//! registered with the moderator, not code in the request handlers
//! ([`server`]). A blocking client and a multi-threaded load generator
//! ([`client`]) complete the loop.
//!
//! ```
//! use amf_service::{ServiceClient, ServiceConfig, TicketService};
//! use amf_ticketing::Severity;
//!
//! let handle = TicketService::spawn("127.0.0.1:0", ServiceConfig::default()).unwrap();
//! handle.authenticator().add_user("ops", "secret");
//! let token = handle.authenticator().login("ops", "secret").unwrap();
//!
//! let mut client = ServiceClient::connect(handle.addr()).unwrap();
//! client.open(token, 1, Severity::High, "router down").unwrap();
//! assert_eq!(client.assign(token).unwrap().id.0, 1);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod frame;
pub mod peer;
pub mod reactor;
pub mod server;

pub use client::{run_load, ClientError, LoadConfig, LoadOutcome, ServiceClient};
pub use codec::{
    DecodeError, PeerFrame, PeerWire, Request, Response, WireStats, MAX_FRAME, STATS_FIELDS,
};
pub use frame::{FrameDecoder, FrameEncoder, FramePartial};
pub use peer::{FaultProxy, FaultProxyConfig, FaultProxyStats, PeerConfig, PeerNode, PeerStats};
pub use server::{ServiceConfig, ServiceError, ServiceFront, ServiceHandle, TicketService};

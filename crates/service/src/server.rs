//! The TCP front of the moderated ticket server.
//!
//! Every remote `open`/`assign` flows through the full pre-/post-
//! activation protocol of the in-process proxy; the network layer adds
//! nothing but framing. Cross-cutting concerns map onto aspects, not
//! onto handler code:
//!
//! | concern | aspect | registered |
//! |---|---|---|
//! | buffer synchronization | `sync` pair (in the base proxy) | first (innermost) |
//! | per-principal rate limiting | [`QuotaAspect`] | second |
//! | global throughput ceiling | [`RateLimitAspect`] | third (optional) |
//! | authentication | `AuthenticationAspect` via proxy upgrade | fourth |
//! | counters + latency histograms | [`MetricsAspect`] | last (outermost) |
//!
//! Registration order is the composition order: aspects registered
//! later run *first* on entry, so the activation sequence is
//! metrics → auth → throttle → quota → sync → method — authentication
//! attaches the principal before the quota aspect bills it.
//!
//! Dispatch is genuinely parallel across methods: the moderator keeps a
//! coordination cell per method, so worker threads serving `open` never
//! contend with workers serving `assign` on a shared moderator lock —
//! they meet only where the protocol demands it (the buffer-sync aspect
//! pair and cross-method wakeups).
//!
//! Two execution fronts share this file's protocol logic
//! ([`ServiceFront`]): the original thread-per-connection front on a
//! [`WorkerPool`], and the readiness-driven default ([`crate::reactor`])
//! that multiplexes every connection onto one epoll loop and runs
//! requests as tasks on a [`TaskEngine`] — whose waiters also back the
//! moderator's coordination cells, so a parked request suspends a task,
//! not a thread.

use std::io::{self, BufReader, BufWriter};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use amf_aspects::auth::{AuthToken, Authenticator};
use amf_aspects::metrics::{MetricsAspect, MetricsHub};
use amf_aspects::quota::QuotaAspect;
use amf_aspects::sched::{RateLimitAspect, ThrottleMode};
use amf_concurrency::{RateLimiter, RateLimiterConfig, SystemClock, TaskEngine, WorkerPool};
use amf_core::trace::MemoryTrace;
use amf_core::{
    AbortError, AspectModerator, Concern, FairnessPolicy, PanicPolicy, RegistrationError,
};
use amf_ticketing::{ExtendedTicketServerProxy, Ticket, TicketServerProxy};
use parking_lot::Mutex;

use crate::codec::{
    decode_request, encode_response, read_frame, severity_from_wire, write_frame, Request,
    Response, WireStats,
};
use crate::reactor::{self, ReactorWaker};

/// Which execution front serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceFront {
    /// Thread-per-connection on a [`WorkerPool`]: each live connection
    /// pins a worker for its lifetime, so `workers` bounds concurrent
    /// clients.
    Threaded,
    /// Readiness-driven epoll reactor ([`crate::reactor`]): one thread
    /// owns every connection; decoded requests run as tasks on a
    /// [`TaskEngine`] of `workers` core workers, and parked requests
    /// suspend tasks instead of threads. The default.
    #[default]
    Task,
}

/// Tuning knobs for [`TicketService::spawn`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Ticket-buffer capacity (bounded; `open` blocks when full).
    pub capacity: usize,
    /// Execution parallelism. Under [`ServiceFront::Threaded`] this is
    /// the connection-worker count (and thus the concurrent-client
    /// bound); under [`ServiceFront::Task`] it is the task engine's
    /// core worker count, and connections are unbounded.
    pub workers: usize,
    /// Per-principal request quota within `quota_window`.
    pub quota_limit: u64,
    /// Fixed window over which the quota resets.
    pub quota_window: Duration,
    /// Optional global token-bucket ceiling across all clients; requests
    /// beyond it are aborted (throttled), not queued.
    pub rate: Option<RateLimiterConfig>,
    /// How long a request may stay blocked (buffer full/empty) before
    /// the server answers `Blocked`.
    pub op_timeout: Duration,
    /// Wake discipline of the coordination cells. `Barging` (the
    /// default) minimizes median latency; `Fifo` tickets each cell's
    /// waiters so no request is ever overtaken while parked — bounded
    /// tail latency under contention at some median cost (E10).
    pub fairness: FairnessPolicy,
    /// What the moderator does with a panicking aspect. The service
    /// defaults to `AbortInvocation`: the panic is contained, the chain
    /// rolled back, and the client sees `Response::Err` instead of a
    /// dead worker thread.
    pub panic_policy: PanicPolicy,
    /// Socket read/write deadline applied by [`crate::ServiceClient`]
    /// (`set_read_timeout`/`set_write_timeout`). A client whose server
    /// dies mid-reply surfaces `ClientError::Timeout` instead of
    /// hanging forever. `None` restores the old block-forever behavior.
    pub io_deadline: Option<Duration>,
    /// Which execution front serves connections (see [`ServiceFront`]).
    pub front: ServiceFront,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            capacity: 64,
            workers: 16,
            quota_limit: 1_000_000,
            quota_window: Duration::from_secs(1),
            rate: None,
            op_timeout: Duration::from_millis(200),
            fairness: FairnessPolicy::Barging,
            panic_policy: PanicPolicy::AbortInvocation,
            io_deadline: Some(Duration::from_secs(5)),
            front: ServiceFront::default(),
        }
    }
}

/// Why the service failed to start.
#[derive(Debug)]
pub enum ServiceError {
    /// Binding or cloning the listener failed.
    Io(io::Error),
    /// Composing the aspect stack failed.
    Registration(RegistrationError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service i/o error: {e}"),
            ServiceError::Registration(e) => write!(f, "aspect composition failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<RegistrationError> for ServiceError {
    fn from(e: RegistrationError) -> Self {
        ServiceError::Registration(e)
    }
}

pub(crate) struct ServiceShared {
    proxy: ExtendedTicketServerProxy,
    op_timeout: Duration,
    pub(crate) shutting_down: AtomicBool,
    connections: Mutex<Vec<TcpStream>>,
    /// Live connection count, maintained by whichever front is serving.
    pub(crate) open_connections: AtomicU64,
    /// Present under [`ServiceFront::Task`]; feeds `tasks_parked`.
    engine: Option<Arc<TaskEngine>>,
    /// Present under [`ServiceFront::Task`]; lets `begin_shutdown`
    /// interrupt the reactor's `epoll_wait`.
    reactor_waker: Mutex<Option<Arc<ReactorWaker>>>,
}

impl ServiceShared {
    pub(crate) fn handle_request(&self, req: Request) -> Response {
        match req {
            Request::Open {
                token,
                id,
                severity,
                summary,
            } => {
                let ticket = Ticket::new(id, summary).with_severity(severity_from_wire(severity));
                match self
                    .proxy
                    .open_timeout(AuthToken(token), ticket, self.op_timeout)
                {
                    Ok(()) => Response::Ok(None),
                    Err(e) => abort_to_response(&e),
                }
            }
            Request::Assign { token } => {
                match self.proxy.assign_timeout(AuthToken(token), self.op_timeout) {
                    Ok(ticket) => Response::Ok(Some(ticket)),
                    Err(e) => abort_to_response(&e),
                }
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Shutdown => Response::Ok(None),
        }
    }

    fn stats(&self) -> WireStats {
        let (opened, assigned) = self.proxy.base().totals();
        let mod_stats = self.proxy.base().moderator().stats();
        WireStats {
            opened,
            assigned,
            queued: self.proxy.len() as u64,
            aborts: mod_stats.aborts,
            timeouts: mod_stats.timeouts,
            max_queue_depth: mod_stats.max_queue_depth,
            panics_caught: mod_stats.panics_caught,
            batched_grants: mod_stats.batched_grants,
            fast_path_admits: mod_stats.fast_path_admits,
            fast_path_fallbacks: mod_stats.fast_path_fallbacks,
            open_connections: self.open_connections.load(Ordering::SeqCst),
            tasks_parked: self.engine.as_ref().map_or(0, |e| e.tasks_parked()),
        }
    }

    fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Unblock every connection handler stuck in a read.
        for conn in self.connections.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // And interrupt the reactor's epoll_wait, if that front runs.
        if let Some(waker) = self.reactor_waker.lock().as_ref() {
            waker.wake();
        }
    }
}

fn abort_to_response(err: &AbortError) -> Response {
    match err {
        AbortError::Timeout { .. } => Response::Blocked,
        AbortError::Aspect {
            concern, reason, ..
        } => Response::Aborted(format!("{concern}: {reason}")),
        AbortError::AspectPanicked {
            concern, message, ..
        } => Response::Err(format!("aspect panic contained ({concern}): {message}")),
    }
}

/// Handle on a running service: address, shared substrate, shutdown.
///
/// Dropping the handle shuts the service down.
pub struct ServiceHandle {
    addr: SocketAddr,
    auth: Arc<Authenticator>,
    metrics: MetricsHub,
    trace: Arc<MemoryTrace>,
    shared: Arc<ServiceShared>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<Arc<WorkerPool>>,
}

impl std::fmt::Debug for ServiceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServiceHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The authenticator: provision users and mint tokens here.
    pub fn authenticator(&self) -> &Arc<Authenticator> {
        &self.auth
    }

    /// Counters and latency histograms per participating method.
    pub fn metrics(&self) -> &MetricsHub {
        &self.metrics
    }

    /// The protocol trace of every moderated activation.
    pub fn trace(&self) -> &Arc<MemoryTrace> {
        &self.trace
    }

    /// The live moderated proxy behind the service. Registering
    /// further aspects through it (via `proxy().base().moderator()`)
    /// is the paper's adaptability move applied to a running service —
    /// the chaos battery uses it to inject panics against live
    /// connections.
    pub fn proxy(&self) -> &ExtendedTicketServerProxy {
        &self.shared.proxy
    }

    /// Current service counters (same numbers as the `Stats` opcode).
    pub fn stats(&self) -> WireStats {
        self.shared.stats()
    }

    /// Stops accepting connections, disconnects clients, joins every
    /// worker. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        // Wake the accept loop with a throwaway connection (the reactor
        // front was already woken through its eventfd).
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(pool) = &self.pool {
            pool.shutdown();
        }
        if let Some(engine) = &self.shared.engine {
            engine.shutdown();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The networked ticket service.
#[derive(Debug)]
pub struct TicketService;

impl TicketService {
    /// Composes the aspect stack, binds `addr` (use port 0 for an
    /// ephemeral port) and starts accepting connections.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the bind or the aspect composition fails.
    pub fn spawn(addr: &str, config: ServiceConfig) -> Result<ServiceHandle, ServiceError> {
        let trace = MemoryTrace::shared();
        // Under the task front the engine doubles as the moderator's
        // grant source: a request blocked inside the protocol parks its
        // task, and the freed worker serves other requests.
        let engine = match config.front {
            ServiceFront::Task => Some(Arc::new(TaskEngine::new(config.workers))),
            ServiceFront::Threaded => None,
        };
        let mut builder = AspectModerator::builder()
            .trace(trace.clone() as Arc<dyn amf_core::trace::TraceSink>)
            .fairness(config.fairness)
            .panic_policy(config.panic_policy);
        if let Some(engine) = &engine {
            builder = builder.engine(Arc::<TaskEngine>::clone(engine));
        }
        let moderator = Arc::new(builder.build());
        let auth = Authenticator::shared();
        let metrics = MetricsHub::new();

        // Innermost: the base proxy registers the synchronization pair.
        let base = TicketServerProxy::new(config.capacity, Arc::clone(&moderator))?;
        let open = base.open_handle().clone();
        let assign = base.assign_handle().clone();
        // Per-principal quotas (billed to the authenticated principal).
        for handle in [&open, &assign] {
            moderator.register(
                handle,
                Concern::quota(),
                Box::new(QuotaAspect::new(config.quota_limit).with_window(config.quota_window)),
            )?;
        }
        // Optional global ceiling, one bucket shared by both methods.
        if let Some(rate) = config.rate {
            let limiter = Arc::new(RateLimiter::new(rate, Arc::new(SystemClock::new())));
            for handle in [&open, &assign] {
                moderator.register(
                    handle,
                    Concern::throttling(),
                    Box::new(RateLimitAspect::new(
                        Arc::clone(&limiter),
                        ThrottleMode::Abort,
                    )),
                )?;
            }
        }
        // Authentication joins the live proxy (the paper's adaptability
        // move); registered after quota so it runs before it on entry.
        let proxy = ExtendedTicketServerProxy::upgrade(base, Arc::clone(&auth))?;
        // Outermost: observe everything, including time spent blocked.
        for handle in [&open, &assign] {
            moderator.register(
                handle,
                Concern::metrics(),
                Box::new(MetricsAspect::new(metrics.clone())),
            )?;
        }

        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServiceShared {
            proxy,
            op_timeout: config.op_timeout,
            shutting_down: AtomicBool::new(false),
            connections: Mutex::new(Vec::new()),
            open_connections: AtomicU64::new(0),
            engine: engine.clone(),
            reactor_waker: Mutex::new(None),
        });

        let (accept_thread, pool) = match config.front {
            ServiceFront::Threaded => {
                let pool = Arc::new(WorkerPool::new(config.workers));
                let thread = {
                    let shared = Arc::clone(&shared);
                    let pool = Arc::clone(&pool);
                    std::thread::Builder::new()
                        .name("amf-service-accept".into())
                        .spawn(move || accept_loop(&listener, &shared, &pool))
                        .map_err(ServiceError::Io)?
                };
                (thread, Some(pool))
            }
            ServiceFront::Task => {
                let engine = engine.expect("task front constructs an engine");
                let (thread, waker) = reactor::spawn(listener, Arc::clone(&shared), engine)?;
                *shared.reactor_waker.lock() = Some(waker);
                (thread, None)
            }
        };

        Ok(ServiceHandle {
            addr: local_addr,
            auth,
            metrics,
            trace,
            shared,
            accept_thread: Some(accept_thread),
            pool,
        })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServiceShared>, pool: &Arc<WorkerPool>) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if let Ok(clone) = stream.try_clone() {
            shared.connections.lock().push(clone);
        }
        let shared = Arc::clone(shared);
        shared.open_connections.fetch_add(1, Ordering::SeqCst);
        pool.spawn(move || {
            serve_connection(&shared, stream);
            shared.open_connections.fetch_sub(1, Ordering::SeqCst);
        });
    }
}

fn serve_connection(shared: &Arc<ServiceShared>, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) => return,
            Err(e) => {
                // Oversized frame: tell the client why before hanging up.
                if e.kind() == io::ErrorKind::InvalidData {
                    let resp = Response::Err(e.to_string());
                    let _ = write_frame(&mut writer, &encode_response(&resp));
                }
                return;
            }
        };
        let (response, then_shutdown) = match decode_request(&body) {
            Ok(Request::Shutdown) => (Response::Ok(None), true),
            Ok(req) => (shared.handle_request(req), false),
            Err(e) => (Response::Err(e.to_string()), true),
        };
        let stop_service = then_shutdown && matches!(response, Response::Ok(_));
        if stop_service {
            // Raise the flag before acknowledging: the moment the client
            // reads this Ok it may open a fresh connection, and that
            // connection must already see the service as down.
            shared.shutting_down.store(true, Ordering::SeqCst);
        }
        if write_frame(&mut writer, &encode_response(&response)).is_err() {
            return;
        }
        if then_shutdown {
            if stop_service {
                shared.begin_shutdown();
            }
            return;
        }
    }
}

//! Length-prefixed binary wire protocol for the ticketing service.
//!
//! Every message is one *frame*:
//!
//! ```text
//! +----------------+--------+-----------------+
//! | length: u32 BE | opcode | payload ...     |
//! +----------------+--------+-----------------+
//!  `length` counts opcode + payload, capped at MAX_FRAME.
//! ```
//!
//! All integers are big-endian (network order); strings are a `u16`
//! byte length followed by UTF-8 bytes. The codec is strict: trailing
//! bytes, truncated payloads, oversized frames and unknown opcodes are
//! all decode errors, never silently ignored.
//!
//! Wire-format history: `OP_STATS_REPLY` originally carried six `u64`
//! counters; the fault-containment release appended a seventh,
//! `panics_caught`, the batched-admission release an eighth,
//! `batched_grants`, the lock-free-admission release a ninth,
//! `fast_path_admits`, the wire-topology release a tenth,
//! `fast_path_fallbacks`, and the task-engine release an eleventh and
//! twelfth, `open_connections` and `tasks_parked`. The counter list
//! lives in one place —
//! [`STATS_FIELDS`] plus [`WireStats::to_array`]/[`WireStats::from_array`]
//! — so encode, decode and tests cannot drift apart. Because decoding
//! is strict, old and new peers do not interoperate on `Stats` — deploy
//! both sides together. The task-engine release also added the
//! peer-plane greeting frame `OP_LEASE_HELLO` (node, incarnation,
//! cursor), replacing the old convention of greeting with a sentinel
//! `Ack { seq: u64::MAX }` — same deploy-together rule.
//!
//! The length-prefix layer itself (split/reassembly of frames from a
//! byte stream) lives in [`crate::frame`] as a sans-io state machine;
//! this module owns the frame *bodies*.

use std::fmt;
use std::io::{self, Read, Write};

use amf_core::LeaseMsg;
use amf_ticketing::{Severity, Ticket};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::frame::{FrameDecoder, FrameEncoder, FramePartial};

/// Hard cap on a frame body (opcode + payload), in bytes. Large enough
/// for any legitimate request (summaries are `u16`-length-capped),
/// small enough that a hostile length prefix cannot balloon memory.
pub const MAX_FRAME: usize = 64 * 1024;

/// Longest accepted ticket summary, in bytes.
pub const MAX_SUMMARY: usize = u16::MAX as usize;

const OP_OPEN: u8 = 0x01;
const OP_ASSIGN: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SHUTDOWN: u8 = 0x04;

const OP_OK: u8 = 0x81;
const OP_BLOCKED: u8 = 0x82;
const OP_ABORTED: u8 = 0x83;
const OP_ERR: u8 = 0x84;
const OP_STATS_REPLY: u8 = 0x85;

// Node-to-node lease plane (peer sessions, not client sessions).
const OP_LEASE_GRANT: u8 = 0x10;
const OP_LEASE_RELEASE: u8 = 0x11;
const OP_LEASE_HELLO: u8 = 0x12;
const OP_LEASE_ACK: u8 = 0x90;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open a ticket under the session `token`.
    Open {
        /// Session token from login.
        token: u64,
        /// Ticket id chosen by the client.
        id: u64,
        /// Severity, encoded as [`severity_to_wire`].
        severity: u8,
        /// Problem statement.
        summary: String,
    },
    /// Assign (retrieve) the oldest ticket under the session `token`.
    Assign {
        /// Session token from login.
        token: u64,
    },
    /// Read service counters.
    Stats,
    /// Ask the server to stop accepting connections.
    Shutdown,
}

/// Number of `u64` counters in an `OP_STATS_REPLY` payload — the single
/// source of truth for the `Stats` wire format: encode and decode both
/// iterate [`WireStats::to_array`]/[`WireStats::from_array`], whose
/// lengths this const fixes at compile time.
pub const STATS_FIELDS: usize = 12;

/// Counters reported by [`Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Tickets opened since start.
    pub opened: u64,
    /// Tickets assigned since start.
    pub assigned: u64,
    /// Tickets currently queued.
    pub queued: u64,
    /// Activations vetoed by an aspect.
    pub aborts: u64,
    /// Activations that timed out blocked.
    pub timeouts: u64,
    /// Deepest wait queue any coordination cell has reached — the
    /// worst-case position a request has waited from (tail-latency
    /// headroom under `FairnessPolicy::Fifo`).
    pub max_queue_depth: u64,
    /// Aspect panics the moderator contained (seventh field, appended
    /// by the fault-containment release).
    pub panics_caught: u64,
    /// FIFO admissions served by grant extension rather than a fresh
    /// wake handoff (eighth field, appended by the batched-admission
    /// release).
    pub batched_grants: u64,
    /// Activations admitted through the lock-free CAS fast lane,
    /// skipping the cell lock entirely (ninth field, appended by the
    /// lock-free-admission release).
    pub fast_path_admits: u64,
    /// Activations that raced the CAS fast lane, lost, and fell back to
    /// the cell lock (tenth field, appended by the wire-topology
    /// release). `fallbacks / (admits + fallbacks)` is the live
    /// contention ratio on the fast lane.
    pub fast_path_fallbacks: u64,
    /// Client connections currently open on the service front
    /// (eleventh field, appended by the task-engine release). Both
    /// fronts maintain it; under the readiness-driven front it is the
    /// number the connection-scaling experiment drives into the
    /// thousands.
    pub open_connections: u64,
    /// Invocations currently suspended inside the task engine's
    /// waitpoints (twelfth field, appended by the task-engine release).
    /// Zero under the threaded front, which parks on condvars outside
    /// the engine.
    pub tasks_parked: u64,
}

impl WireStats {
    /// The counters in wire order. The array length is pinned to
    /// [`STATS_FIELDS`], so adding a struct field without growing the
    /// wire format (or vice versa) fails to compile here.
    #[must_use]
    pub fn to_array(&self) -> [u64; STATS_FIELDS] {
        [
            self.opened,
            self.assigned,
            self.queued,
            self.aborts,
            self.timeouts,
            self.max_queue_depth,
            self.panics_caught,
            self.batched_grants,
            self.fast_path_admits,
            self.fast_path_fallbacks,
            self.open_connections,
            self.tasks_parked,
        ]
    }

    /// Rebuilds the counters from wire order; inverse of
    /// [`WireStats::to_array`].
    #[must_use]
    pub fn from_array(fields: [u64; STATS_FIELDS]) -> Self {
        let [opened, assigned, queued, aborts, timeouts, max_queue_depth, panics_caught, batched_grants, fast_path_admits, fast_path_fallbacks, open_connections, tasks_parked] =
            fields;
        Self {
            opened,
            assigned,
            queued,
            aborts,
            timeouts,
            max_queue_depth,
            panics_caught,
            batched_grants,
            fast_path_admits,
            fast_path_fallbacks,
            open_connections,
            tasks_parked,
        }
    }
}

/// A node-to-node frame on the lease plane: the sender's ring index plus
/// the protocol message from [`amf_core::lease`]. Rides the same
/// length-prefixed framing as client traffic, under its own opcodes, so
/// the fault proxy and the simulator's socket-shaped channel forward
/// both planes identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerFrame {
    /// Ring index of the sending node.
    pub node: u64,
    /// The lease protocol message.
    pub msg: LeaseMsg,
}

/// Anything that can arrive on the peer plane: a lease-protocol frame,
/// or the connection-scoped greeting. The greeting is deliberately not
/// a [`LeaseMsg`] variant — it describes the *link* (who is on the
/// other end, which incarnation, where their receive cursor stands),
/// not the lease protocol, and the simulator's in-memory channels never
/// carry one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerWire {
    /// A lease-protocol frame.
    Frame(PeerFrame),
    /// Greeting sent by a receiver when a connection is (re)established.
    Hello {
        /// Ring index of the greeting node.
        node: u64,
        /// Incarnation id, fresh per process start. A sender that
        /// remembers a different incarnation for this peer knows the
        /// receiver restarted — regardless of how intact the cursor
        /// looks — and must rebase in-flight grants.
        incarnation: u64,
        /// The receiver's current in-order cursor.
        cursor: u64,
    },
}

/// Encodes the connection greeting as a complete frame (length prefix
/// included).
pub fn encode_hello(node: u64, incarnation: u64, cursor: u64) -> Bytes {
    let mut body = BytesMut::with_capacity(32);
    body.put_u8(OP_LEASE_HELLO);
    body.put_u64(node);
    body.put_u64(incarnation);
    body.put_u64(cursor);
    frame(body)
}

/// Decodes any peer-plane frame body, greeting included.
pub fn decode_peer_wire(body: &[u8]) -> Result<PeerWire, DecodeError> {
    if body.first() == Some(&OP_LEASE_HELLO) {
        let mut cur = &body[1..];
        let hello = PeerWire::Hello {
            node: get_u64_checked(&mut cur)?,
            incarnation: get_u64_checked(&mut cur)?,
            cursor: get_u64_checked(&mut cur)?,
        };
        return finish(hello, cur);
    }
    decode_peer(body).map(PeerWire::Frame)
}

/// Encodes a peer frame as a complete frame (length prefix included).
pub fn encode_peer(frame_msg: &PeerFrame) -> Bytes {
    let mut body = BytesMut::with_capacity(48);
    match frame_msg.msg {
        LeaseMsg::Grant {
            seq,
            lease,
            hop,
            visits,
        } => {
            body.put_u8(OP_LEASE_GRANT);
            body.put_u64(frame_msg.node);
            body.put_u64(seq);
            body.put_u64(lease);
            body.put_u64(hop);
            body.put_u64(visits);
        }
        LeaseMsg::Release { seq } => {
            body.put_u8(OP_LEASE_RELEASE);
            body.put_u64(frame_msg.node);
            body.put_u64(seq);
        }
        LeaseMsg::Ack { seq, cursor } => {
            body.put_u8(OP_LEASE_ACK);
            body.put_u64(frame_msg.node);
            body.put_u64(seq);
            body.put_u64(cursor);
        }
    }
    frame(body)
}

/// Decodes a peer frame from a frame *body* (no length prefix).
pub fn decode_peer(body: &[u8]) -> Result<PeerFrame, DecodeError> {
    if body.len() > MAX_FRAME {
        return Err(DecodeError::Oversized { len: body.len() });
    }
    let mut cur = body;
    let frame_msg = match get_u8_checked(&mut cur)? {
        OP_LEASE_GRANT => PeerFrame {
            node: get_u64_checked(&mut cur)?,
            msg: LeaseMsg::Grant {
                seq: get_u64_checked(&mut cur)?,
                lease: get_u64_checked(&mut cur)?,
                hop: get_u64_checked(&mut cur)?,
                visits: get_u64_checked(&mut cur)?,
            },
        },
        OP_LEASE_RELEASE => PeerFrame {
            node: get_u64_checked(&mut cur)?,
            msg: LeaseMsg::Release {
                seq: get_u64_checked(&mut cur)?,
            },
        },
        OP_LEASE_ACK => PeerFrame {
            node: get_u64_checked(&mut cur)?,
            msg: LeaseMsg::Ack {
                seq: get_u64_checked(&mut cur)?,
                cursor: get_u64_checked(&mut cur)?,
            },
        },
        op => return Err(DecodeError::UnknownOpcode(op)),
    };
    finish(frame_msg, cur)
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The request succeeded; `Assign` carries the ticket.
    Ok(Option<Ticket>),
    /// The pre-activation protocol kept the request blocked past the
    /// server's patience (buffer full/empty) — safe to retry.
    Blocked,
    /// An aspect vetoed the activation (authentication, quota, rate
    /// limit); the reason names the concern's complaint.
    Aborted(String),
    /// Protocol or server error; the connection should be abandoned.
    Err(String),
    /// Service counters.
    Stats(WireStats),
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The body ended before the advertised structure was complete,
    /// or carried bytes past it.
    Truncated,
    /// The length prefix exceeded [`MAX_FRAME`].
    Oversized {
        /// Advertised body length.
        len: usize,
    },
    /// The opcode byte is not part of the protocol.
    UnknownOpcode(u8),
    /// A string field was not valid UTF-8.
    BadString,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => f.write_str("truncated frame"),
            DecodeError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME} byte cap")
            }
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            DecodeError::BadString => f.write_str("string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Maps a [`Severity`] onto its wire byte.
pub fn severity_to_wire(severity: Severity) -> u8 {
    match severity {
        Severity::Low => 0,
        Severity::Medium => 1,
        Severity::High => 2,
        Severity::Critical => 3,
    }
}

/// Maps a wire byte back onto a [`Severity`]; unknown bytes clamp to
/// `Critical` so a newer client's urgency is never silently downgraded.
pub fn severity_from_wire(raw: u8) -> Severity {
    match raw {
        0 => Severity::Low,
        1 => Severity::Medium,
        2 => Severity::High,
        _ => Severity::Critical,
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= MAX_SUMMARY);
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_string(cur: &mut &[u8]) -> Result<String, DecodeError> {
    if cur.remaining() < 2 {
        return Err(DecodeError::Truncated);
    }
    let len = cur.get_u16() as usize;
    if cur.remaining() < len {
        return Err(DecodeError::Truncated);
    }
    let raw = cur.chunk()[..len].to_vec();
    cur.advance(len);
    String::from_utf8(raw).map_err(|_| DecodeError::BadString)
}

fn get_u64_checked(cur: &mut &[u8]) -> Result<u64, DecodeError> {
    if cur.remaining() < 8 {
        return Err(DecodeError::Truncated);
    }
    Ok(cur.get_u64())
}

fn get_u8_checked(cur: &mut &[u8]) -> Result<u8, DecodeError> {
    if cur.remaining() < 1 {
        return Err(DecodeError::Truncated);
    }
    Ok(cur.get_u8())
}

fn frame(body: BytesMut) -> Bytes {
    Bytes::from(FrameEncoder::encode(&body))
}

/// Encodes a request as a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Bytes {
    let mut body = BytesMut::with_capacity(32);
    match req {
        Request::Open {
            token,
            id,
            severity,
            summary,
        } => {
            body.put_u8(OP_OPEN);
            body.put_u64(*token);
            body.put_u64(*id);
            body.put_u8(*severity);
            put_string(&mut body, summary);
        }
        Request::Assign { token } => {
            body.put_u8(OP_ASSIGN);
            body.put_u64(*token);
        }
        Request::Stats => body.put_u8(OP_STATS),
        Request::Shutdown => body.put_u8(OP_SHUTDOWN),
    }
    frame(body)
}

/// Encodes a response as a complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Bytes {
    let mut body = BytesMut::with_capacity(32);
    match resp {
        Response::Ok(ticket) => {
            body.put_u8(OP_OK);
            match ticket {
                Some(t) => {
                    body.put_u8(1);
                    body.put_u64(t.id.0);
                    body.put_u8(severity_to_wire(t.severity));
                    put_string(&mut body, &t.summary);
                }
                None => body.put_u8(0),
            }
        }
        Response::Blocked => body.put_u8(OP_BLOCKED),
        Response::Aborted(reason) => {
            body.put_u8(OP_ABORTED);
            put_string(&mut body, reason);
        }
        Response::Err(message) => {
            body.put_u8(OP_ERR);
            put_string(&mut body, message);
        }
        Response::Stats(s) => {
            body.put_u8(OP_STATS_REPLY);
            for counter in s.to_array() {
                body.put_u64(counter);
            }
        }
    }
    frame(body)
}

fn finish<T>(value: T, cur: &[u8]) -> Result<T, DecodeError> {
    if cur.has_remaining() {
        Err(DecodeError::Truncated)
    } else {
        Ok(value)
    }
}

/// Decodes a request from a frame *body* (no length prefix).
pub fn decode_request(body: &[u8]) -> Result<Request, DecodeError> {
    if body.len() > MAX_FRAME {
        return Err(DecodeError::Oversized { len: body.len() });
    }
    let mut cur = body;
    let req = match get_u8_checked(&mut cur)? {
        OP_OPEN => Request::Open {
            token: get_u64_checked(&mut cur)?,
            id: get_u64_checked(&mut cur)?,
            severity: get_u8_checked(&mut cur)?,
            summary: get_string(&mut cur)?,
        },
        OP_ASSIGN => Request::Assign {
            token: get_u64_checked(&mut cur)?,
        },
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        op => return Err(DecodeError::UnknownOpcode(op)),
    };
    finish(req, cur)
}

/// Decodes a response from a frame *body* (no length prefix).
pub fn decode_response(body: &[u8]) -> Result<Response, DecodeError> {
    if body.len() > MAX_FRAME {
        return Err(DecodeError::Oversized { len: body.len() });
    }
    let mut cur = body;
    let resp = match get_u8_checked(&mut cur)? {
        OP_OK => match get_u8_checked(&mut cur)? {
            0 => Response::Ok(None),
            _ => {
                let id = get_u64_checked(&mut cur)?;
                let severity = get_u8_checked(&mut cur)?;
                let summary = get_string(&mut cur)?;
                Response::Ok(Some(
                    Ticket::new(id, summary).with_severity(severity_from_wire(severity)),
                ))
            }
        },
        OP_BLOCKED => Response::Blocked,
        OP_ABORTED => Response::Aborted(get_string(&mut cur)?),
        OP_ERR => Response::Err(get_string(&mut cur)?),
        OP_STATS_REPLY => {
            let mut fields = [0u64; STATS_FIELDS];
            for counter in &mut fields {
                *counter = get_u64_checked(&mut cur)?;
            }
            Response::Stats(WireStats::from_array(fields))
        }
        op => return Err(DecodeError::UnknownOpcode(op)),
    };
    finish(resp, cur)
}

/// Reads one frame body from `r`. Returns `Ok(None)` on clean EOF
/// (connection closed *between* frames).
///
/// # Errors
///
/// I/O errors. A connection that dies *mid-frame* — after part of the
/// length prefix or part of the body — is distinguished from a clean
/// close and surfaces as [`io::ErrorKind::UnexpectedEof`] with a
/// "truncated frame" message, so callers report a typed error instead
/// of treating the peer's crash as an orderly shutdown. An oversized
/// length prefix surfaces as [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut dec = FrameDecoder::new();
    let mut scratch = [0u8; 4096];
    loop {
        if let Some(body) = dec.next_frame() {
            return Ok(Some(body));
        }
        // Read exactly what completes the current element — a fresh
        // decoder is built per call, so reading past the returned
        // frame would lose stream bytes.
        let want = dec.needed().min(scratch.len());
        match r.read(&mut scratch[..want]) {
            Ok(0) => {
                return match dec.partial() {
                    FramePartial::Clean => Ok(None),
                    FramePartial::Header { got } => Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("truncated frame: EOF after {got} of 4 length bytes"),
                    )),
                    FramePartial::Body { len, .. } => Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("truncated frame: EOF inside a {len}-byte body"),
                    )),
                };
            }
            Ok(n) => {
                dec.feed(&scratch[..n])
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Writes one already-framed message to `w` and flushes.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_frame(w: &mut impl Write, framed: &[u8]) -> io::Result<()> {
    w.write_all(framed)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let framed = encode_request(&req);
        let body = &framed[4..];
        assert_eq!(
            u32::from_be_bytes(framed[..4].try_into().unwrap()) as usize,
            body.len()
        );
        assert_eq!(decode_request(body).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let framed = encode_response(&resp);
        assert_eq!(decode_response(&framed[4..]).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Open {
            token: u64::MAX,
            id: 42,
            severity: 3,
            summary: "routeur en panne — ça brûle 🔥".to_string(),
        });
        round_trip_request(Request::Open {
            token: 0,
            id: 0,
            severity: 0,
            summary: String::new(),
        });
        round_trip_request(Request::Assign { token: 7 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Ok(None));
        round_trip_response(Response::Ok(Some(
            Ticket::new(9, "disk full").with_severity(Severity::High),
        )));
        round_trip_response(Response::Blocked);
        round_trip_response(Response::Aborted("authentication failed".into()));
        round_trip_response(Response::Err("boom".into()));
        round_trip_response(Response::Stats(WireStats {
            opened: 1,
            assigned: 2,
            queued: 3,
            aborts: 4,
            timeouts: 5,
            max_queue_depth: 6,
            panics_caught: 7,
            batched_grants: 8,
            fast_path_admits: 9,
            fast_path_fallbacks: 10,
            open_connections: 11,
            tasks_parked: 12,
        }));
    }

    #[test]
    fn hello_round_trips_and_is_not_a_lease_frame() {
        let framed = encode_hello(3, 0xDEAD_BEEF, 42);
        let body = &framed[4..];
        assert_eq!(
            decode_peer_wire(body).unwrap(),
            PeerWire::Hello {
                node: 3,
                incarnation: 0xDEAD_BEEF,
                cursor: 42
            }
        );
        // The lease-frame-only entry point refuses greetings: protocol
        // code that forgot to handle Hello fails loudly, not quietly.
        assert_eq!(decode_peer(body), Err(DecodeError::UnknownOpcode(0x12)),);
        // Truncated greetings are rejected at every cut.
        for cut in 0..body.len() {
            assert_eq!(
                decode_peer_wire(&body[..cut]),
                Err(DecodeError::Truncated),
                "prefix of {cut} bytes"
            );
        }
        // Lease frames pass through decode_peer_wire unchanged.
        let lease = PeerFrame {
            node: 1,
            msg: LeaseMsg::Release { seq: 7 },
        };
        let framed = encode_peer(&lease);
        assert_eq!(
            decode_peer_wire(&framed[4..]).unwrap(),
            PeerWire::Frame(lease)
        );
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let framed = encode_request(&Request::Open {
            token: 1,
            id: 2,
            severity: 1,
            summary: "printer jam".into(),
        });
        let body = &framed[4..];
        // Every proper prefix of the body must fail, not panic.
        for cut in 0..body.len() {
            assert_eq!(
                decode_request(&body[..cut]),
                Err(DecodeError::Truncated),
                "prefix of {cut} bytes"
            );
        }
        // Same on the response side.
        let framed = encode_response(&Response::Aborted("quota exceeded".into()));
        let body = &framed[4..];
        for cut in 1..body.len() {
            assert_eq!(decode_response(&body[..cut]), Err(DecodeError::Truncated));
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let framed = encode_request(&Request::Assign { token: 3 });
        let mut body = framed[4..].to_vec();
        body.push(0xff);
        assert_eq!(decode_request(&body), Err(DecodeError::Truncated));
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let body = vec![OP_STATS; MAX_FRAME + 1];
        assert_eq!(
            decode_request(&body),
            Err(DecodeError::Oversized { len: MAX_FRAME + 1 })
        );
        // And at the framing layer: a hostile length prefix is refused
        // before any allocation of that size.
        let mut wire = Vec::new();
        wire.extend_from_slice(&((MAX_FRAME as u32) + 1).to_be_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn unknown_opcodes_are_rejected() {
        assert_eq!(
            decode_request(&[0x7f]),
            Err(DecodeError::UnknownOpcode(0x7f))
        );
        assert_eq!(
            decode_response(&[0x01]),
            Err(DecodeError::UnknownOpcode(0x01))
        );
        assert_eq!(decode_request(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut body = vec![OP_ABORTED, 0x00, 0x02, 0xff, 0xfe];
        assert_eq!(decode_response(&body), Err(DecodeError::BadString));
        body[0] = OP_ERR;
        assert_eq!(decode_response(&body), Err(DecodeError::BadString));
    }

    #[test]
    fn framing_round_trips_over_a_stream() {
        let a = encode_request(&Request::Stats);
        let b = encode_request(&Request::Assign { token: 11 });
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let mut r = stream.as_slice();
        assert_eq!(
            decode_request(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::Stats
        );
        assert_eq!(
            decode_request(&read_frame(&mut r).unwrap().unwrap()).unwrap(),
            Request::Assign { token: 11 }
        );
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn peer_frames_round_trip() {
        for msg in [
            LeaseMsg::Grant {
                seq: 3,
                lease: 9,
                hop: 17,
                visits: 2,
            },
            LeaseMsg::Ack { seq: 3, cursor: 4 },
            LeaseMsg::Release { seq: 8 },
        ] {
            let pf = PeerFrame { node: 1, msg };
            let framed = encode_peer(&pf);
            assert_eq!(
                u32::from_be_bytes(framed[..4].try_into().unwrap()) as usize,
                framed.len() - 4
            );
            assert_eq!(decode_peer(&framed[4..]).unwrap(), pf);
        }
    }

    #[test]
    fn truncated_peer_frames_are_rejected() {
        let framed = encode_peer(&PeerFrame {
            node: 2,
            msg: LeaseMsg::Grant {
                seq: 1,
                lease: 2,
                hop: 3,
                visits: 4,
            },
        });
        let body = &framed[4..];
        for cut in 0..body.len() {
            assert_eq!(decode_peer(&body[..cut]), Err(DecodeError::Truncated));
        }
        let mut long = body.to_vec();
        long.push(0);
        assert_eq!(decode_peer(&long), Err(DecodeError::Truncated));
    }

    #[test]
    fn mid_frame_eof_is_truncation_not_clean_close() {
        let framed = encode_request(&Request::Open {
            token: 1,
            id: 2,
            severity: 1,
            summary: "half a frame".into(),
        });
        // EOF inside the length prefix.
        for cut in 1..4 {
            let err = read_frame(&mut &framed[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
            assert!(err.to_string().contains("truncated frame"), "{err}");
        }
        // EOF inside the body.
        for cut in [5, framed.len() - 1] {
            let err = read_frame(&mut &framed[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
            assert!(err.to_string().contains("truncated frame"), "{err}");
        }
        // Zero bytes is still a clean close.
        assert_eq!(read_frame(&mut &framed[..0]).unwrap(), None);
    }

    #[test]
    fn severity_mapping_round_trips() {
        for s in [
            Severity::Low,
            Severity::Medium,
            Severity::High,
            Severity::Critical,
        ] {
            assert_eq!(severity_from_wire(severity_to_wire(s)), s);
        }
        assert_eq!(severity_from_wire(200), Severity::Critical);
    }
}

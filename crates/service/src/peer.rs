//! Node-to-node session layer: the lease-handoff ring on the real wire.
//!
//! [`PeerNode`] is one member of a moderation ring across OS processes.
//! Each node runs its own [`AspectModerator`] and hands the circulation
//! lease to its successor over the length-prefixed TCP codec
//! ([`crate::codec::encode_peer`]). Unlike the simulator's in-memory
//! channels, the wire drops, delays, duplicates, and dies — so every
//! link runs the recovery state machine from [`amf_core::lease`]:
//! retransmission with capped exponential backoff, expiry-based
//! reclaim, idempotent dedup, and hole-filling releases.
//!
//! Degraded mode is woven as an aspect, not scattered through the
//! session code: a `degradation` concern on the `acquire` method
//! observes the node's link state and counts every admission moderated
//! while the peer is unreachable ([`PeerStats::degraded_entries`]). The
//! node keeps serving local lease visits off its own moderator the
//! whole time, and re-syncs the lease cursor when the peer returns
//! (each fresh inbound connection is greeted with an unsolicited
//! cumulative ack).
//!
//! [`FaultProxy`] is the test/bench harness companion: a frame-aware
//! TCP forwarder that drops, duplicates, and delays *grant-plane*
//! frames by a seeded permille, leaving the ack return path intact —
//! the fault model the recovery machine is verified under (see
//! `crates/verify/tests/lease_handoff.rs` and DESIGN.md).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use amf_aspects::audit::{AuditAspect, AuditLog};
use amf_core::{
    AspectModerator, Concern, FairnessPolicy, FnAspect, InvocationContext, LeaseAction,
    LeaseConfig, LeaseIn, LeaseMsg, LeaseOut, MethodId, PanicPolicy, Verdict,
};
use parking_lot::Mutex;

use crate::codec::{
    decode_peer, decode_peer_wire, encode_hello, encode_peer, read_frame, write_frame, PeerFrame,
    PeerWire,
};
use crate::frame::FrameDecoder;

/// Tuning knobs for one ring node.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// This node's ring index.
    pub node: u64,
    /// Address to listen on for the predecessor's frames (port 0 for
    /// ephemeral).
    pub listen: String,
    /// The successor's listen address — possibly a [`FaultProxy`] in
    /// front of it.
    pub next: String,
    /// Leases seeded into this node's inbox at start (node 0 seeds the
    /// ring; others pass 0).
    pub seed_leases: u64,
    /// Visit budget each seeded lease starts with.
    pub visits: u64,
    /// Recovery knobs: expiry deadline, backoff, jitter seed. Expiry
    /// must be nonzero — a live link without recovery deadlocks on the
    /// first lost frame.
    pub lease: LeaseConfig,
    /// Granularity of the outbound pump (socket read timeout): bounds
    /// both forwarding latency and how late a timer can fire.
    pub io_tick: Duration,
    /// Pause after each moderated visit. Zero for full speed; nonzero
    /// slows circulation so a harness can observe (or interfere with)
    /// the ring at a known position.
    pub visit_delay: Duration,
}

impl Default for PeerConfig {
    fn default() -> Self {
        Self {
            node: 0,
            listen: "127.0.0.1:0".into(),
            next: String::new(),
            seed_leases: 0,
            visits: 0,
            lease: LeaseConfig::default(),
            io_tick: Duration::from_millis(1),
            visit_delay: Duration::ZERO,
        }
    }
}

/// Counters one node exports; the union of moderator telemetry and the
/// lease links' recovery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerStats {
    /// Leases delivered to this node (in-order grants plus reclaims).
    pub delivered: u64,
    /// Leases that retired here (visit budget exhausted).
    pub retired: u64,
    /// Handoffs reclaimed after expiry.
    pub reclaimed: u64,
    /// Frames retransmitted after a backoff deadline.
    pub retransmits: u64,
    /// Duplicate frames dropped idempotently.
    pub dup_dropped: u64,
    /// Grants refused by per-lease hop fencing.
    pub stale_dropped: u64,
    /// Admissions moderated while the node was degraded (peer
    /// unreachable) — counted by the `degradation` aspect.
    pub degraded_entries: u64,
    /// Times the peer came back after a degraded spell.
    pub rejoins: u64,
    /// Whether the node is degraded right now.
    pub degraded_now: bool,
    /// Fast-lane admissions on the telemetry row.
    pub fast_path_admits: u64,
    /// Fast-lane fallbacks on the telemetry row.
    pub fast_path_fallbacks: u64,
}

/// One lease riding this node's inbox.
#[derive(Debug, Clone, Copy)]
struct InboxEntry {
    lease: u64,
    hop: u64,
    visits: u64,
}

struct PeerShared {
    cfg: PeerConfig,
    /// The successor's address; empty means "not wired yet" (the ring
    /// builder binds every listener before wiring the links).
    next: Mutex<String>,
    out: Mutex<LeaseOut>,
    inn: Mutex<LeaseIn>,
    /// Frames the outbound pump still has to write.
    wire_q: Mutex<VecDeque<LeaseMsg>>,
    inbox: Mutex<VecDeque<InboxEntry>>,
    degraded: AtomicBool,
    degraded_entries: AtomicU64,
    delivered: AtomicU64,
    rejoins: AtomicU64,
    retired: Mutex<Vec<u64>>,
    stop: AtomicBool,
    /// Shutdown handles for the live inbound connections, keyed by a
    /// per-accept id so each session removes its own entry on exit — a
    /// predecessor that reconnects repeatedly must not accumulate dead
    /// sockets here.
    inbound_conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

/// Handle on a running ring node. Dropping it shuts the node down.
pub struct PeerNode {
    addr: SocketAddr,
    shared: Arc<PeerShared>,
    moderator: Arc<AspectModerator>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for PeerNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeerNode")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl PeerNode {
    /// Binds the listener, composes the node's moderator, seeds the
    /// inbox, and starts the session threads.
    ///
    /// # Errors
    ///
    /// Propagates bind errors. A `lease.expiry` of zero is refused: a
    /// live link without recovery deadlocks on the first lost frame.
    /// Seeding leases with a zero visit budget is refused too — such a
    /// lease could never be visited.
    pub fn spawn(cfg: PeerConfig) -> io::Result<Self> {
        if !cfg.lease.recovery_enabled() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "live peer links require a nonzero lease expiry",
            ));
        }
        if cfg.seed_leases > 0 && cfg.visits == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seeded leases need a nonzero visit budget",
            ));
        }
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;

        let moderator = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Fifo)
                .panic_policy(PanicPolicy::AbortInvocation)
                .build(),
        );
        let acquire = moderator.declare_method(MethodId::new("acquire"));
        let grant = moderator.declare_method(MethodId::new("grant"));
        let observe = moderator.declare_method(MethodId::new("observe"));

        // Fresh per process start (and unique across `kill -9` restarts
        // on one host): wall-clock nanos folded with the pid. Senders
        // compare successive greetings, so only inequality across
        // restarts matters, not global uniqueness.
        let incarnation = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1)
            ^ (u64::from(std::process::id()) << 32);
        let shared = Arc::new(PeerShared {
            next: Mutex::new(cfg.next.clone()),
            out: Mutex::new(LeaseOut::new(cfg.lease.clone())),
            inn: Mutex::new(LeaseIn::new().with_incarnation(incarnation)),
            wire_q: Mutex::new(VecDeque::new()),
            inbox: Mutex::new(VecDeque::new()),
            degraded: AtomicBool::new(false),
            degraded_entries: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            retired: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            inbound_conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            cfg,
        });

        // Synchronization concern: `acquire` admits only when the inbox
        // holds a lease.
        {
            let s = Arc::clone(&shared);
            moderator
                .register(
                    &acquire,
                    Concern::synchronization(),
                    Box::new(FnAspect::new("lease-gate").on_precondition(move |_| {
                        if s.inbox.lock().is_empty() {
                            Verdict::Block
                        } else {
                            Verdict::Resume
                        }
                    })),
                )
                .expect("register lease-gate");
        }
        // Fault-tolerance as a crosscutting concern: degraded-mode
        // accounting is an aspect on the same method, not session code.
        // Every admission moderated while the successor link is down is
        // a degraded entry.
        {
            let s = Arc::clone(&shared);
            moderator
                .register(
                    &acquire,
                    Concern::new("degradation"),
                    Box::new(FnAspect::new("degraded-entries").on_postaction(move |_| {
                        if s.degraded.load(Ordering::SeqCst) {
                            s.degraded_entries.fetch_add(1, Ordering::SeqCst);
                        }
                    })),
                )
                .expect("register degraded-entries");
        }
        moderator
            .register(
                &grant,
                Concern::new("handoff"),
                Box::new(FnAspect::new("handoff")),
            )
            .expect("register handoff");
        moderator
            .register(
                &observe,
                Concern::new("telemetry"),
                Box::new(AuditAspect::new(AuditLog::shared())),
            )
            .expect("register telemetry");
        moderator.wire_wakes(&grant, std::slice::from_ref(&acquire));
        moderator.wire_wakes(&acquire, &[]);
        moderator.wire_wakes(&observe, &[]);

        // Seed the ring (node 0 in the standard layout).
        {
            let mut inbox = shared.inbox.lock();
            for lease in 0..shared.cfg.seed_leases {
                inbox.push_back(InboxEntry {
                    lease,
                    hop: 0,
                    visits: shared.cfg.visits,
                });
            }
        }

        let mut threads = Vec::new();
        // Inbound: accept the predecessor, greet with a cursor sync,
        // deliver grants through the moderator, ack everything.
        {
            let s = Arc::clone(&shared);
            let (m, grant) = (Arc::clone(&moderator), grant.clone());
            threads.push(
                std::thread::Builder::new()
                    .name(format!("peer{}-accept", s.cfg.node))
                    .spawn(move || accept_loop(&listener, &s, &m, &grant))?,
            );
        }
        // Outbound: own the successor connection, pump sends, drain
        // acks, drive the retransmit/expiry timers.
        {
            let s = Arc::clone(&shared);
            let (m, grant) = (Arc::clone(&moderator), grant.clone());
            threads.push(
                std::thread::Builder::new()
                    .name(format!("peer{}-out", s.cfg.node))
                    .spawn(move || outbound_loop(&s, &m, &grant))?,
            );
        }
        // Worker: moderate every lease visit at this node.
        {
            let s = Arc::clone(&shared);
            let m = Arc::clone(&moderator);
            let (acquire, observe) = (acquire.clone(), observe.clone());
            threads.push(
                std::thread::Builder::new()
                    .name(format!("peer{}-worker", s.cfg.node))
                    .spawn(move || worker_loop(&s, &m, &acquire, &observe))?,
            );
        }

        Ok(PeerNode {
            addr,
            shared,
            moderator,
            threads,
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// (Re)points the successor link. An empty [`PeerConfig::next`]
    /// plus a later `set_next` lets a ring builder bind every listener
    /// before wiring any link.
    pub fn set_next(&self, addr: &str) {
        *self.shared.next.lock() = addr.to_string();
    }

    /// Snapshot of the node's counters.
    pub fn stats(&self) -> PeerStats {
        let out = self.shared.out.lock();
        let inn = self.shared.inn.lock();
        let m = self.moderator.stats();
        PeerStats {
            delivered: self.shared.delivered.load(Ordering::SeqCst),
            retired: self.shared.retired.lock().len() as u64,
            reclaimed: out.stats().reclaimed,
            retransmits: out.stats().retransmits,
            dup_dropped: inn.stats().dup_dropped,
            stale_dropped: inn.stats().stale_dropped,
            degraded_entries: self.shared.degraded_entries.load(Ordering::SeqCst),
            rejoins: self.shared.rejoins.load(Ordering::SeqCst),
            degraded_now: out.degraded(),
            fast_path_admits: m.fast_path_admits,
            fast_path_fallbacks: m.fast_path_fallbacks,
        }
    }

    /// The leases that retired at this node, in retirement order.
    pub fn retired(&self) -> Vec<u64> {
        self.shared.retired.lock().clone()
    }

    /// First-send → ack-complete latencies of grants acknowledged by
    /// the successor — the handoff recovery-time distribution. A
    /// retransmitted grant shows up as a sample near the backoff
    /// deadline; a reclaimed one never appears here at all.
    pub fn ack_latencies(&self) -> Vec<Duration> {
        self.shared.out.lock().ack_latencies().to_vec()
    }

    /// Stops every session thread and joins them. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for (_, conn) in self.shared.inbound_conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for PeerNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn now_since(start: Instant) -> Duration {
    start.elapsed()
}

fn accept_loop(
    listener: &TcpListener,
    s: &Arc<PeerShared>,
    m: &Arc<AspectModerator>,
    grant: &amf_core::MethodHandle,
) {
    for stream in listener.incoming() {
        if s.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_id = s.next_conn_id.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            s.inbound_conns.lock().insert(conn_id, clone);
        }
        let s = Arc::clone(s);
        let m = Arc::clone(m);
        let grant = grant.clone();
        // One predecessor at a time in a ring; a thread per connection
        // still keeps a half-dead old socket from blocking a reconnect.
        let _ = std::thread::Builder::new()
            .name(format!("peer{}-in", s.cfg.node))
            .spawn(move || {
                inbound_conn(stream, &s, &m, &grant);
                s.inbound_conns.lock().remove(&conn_id);
            });
    }
}

fn inbound_conn(
    stream: TcpStream,
    s: &Arc<PeerShared>,
    m: &Arc<AspectModerator>,
    grant: &amf_core::MethodHandle,
) {
    let mut reader = match stream.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = stream;
    // Greet the (possibly returning) predecessor with this node's
    // incarnation id and cursor, so it re-syncs — and can detect a
    // restart by the id alone — before sending anything.
    {
        let inn = s.inn.lock();
        let hello = encode_hello(s.cfg.node, inn.incarnation(), inn.cursor());
        if write_frame(&mut writer, &hello).is_err() {
            return;
        }
    }
    loop {
        if s.stop.load(Ordering::SeqCst) {
            return;
        }
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) | Err(_) => return,
        };
        let Ok(frame) = decode_peer(&body) else {
            return;
        };
        let (deliveries, ack) = {
            let mut inn = s.inn.lock();
            match frame.msg {
                LeaseMsg::Grant {
                    seq,
                    lease,
                    hop,
                    visits,
                } => inn.on_grant(seq, lease, hop, visits),
                LeaseMsg::Release { seq } => inn.on_release(seq),
                // The ack plane is outbound-only; an ack here is a
                // protocol error from a confused peer. Drop it.
                LeaseMsg::Ack { .. } => continue,
            }
        };
        for d in deliveries {
            s.delivered.fetch_add(1, Ordering::SeqCst);
            s.inbox.lock().push_back(InboxEntry {
                lease: d.lease,
                hop: d.hop,
                visits: d.visits,
            });
            invoke_ok(m, grant);
        }
        let reply = PeerFrame {
            node: s.cfg.node,
            msg: ack,
        };
        if write_frame(&mut writer, &encode_peer(&reply)).is_err() {
            return;
        }
    }
}

/// Accumulates bytes across socket-timeout ticks and yields complete
/// frame bodies: a timeout mid-frame must not desync framing, so
/// partial reads stay buffered in the sans-io [`FrameDecoder`] — the
/// same state machine every other transport in this crate parses with.
struct FrameBuffer {
    dec: FrameDecoder,
}

impl FrameBuffer {
    fn new() -> Self {
        FrameBuffer {
            dec: FrameDecoder::new(),
        }
    }

    /// Reads whatever is available before the socket deadline and
    /// returns the complete frames. `Ok(frames)` on timeout (possibly
    /// empty), `Err` on EOF or transport failure.
    fn pump(&mut self, r: &mut impl Read) -> io::Result<Vec<Vec<u8>>> {
        let mut scratch = [0u8; 4096];
        let mut frames = Vec::new();
        loop {
            match r.read(&mut scratch) {
                Ok(0) => {
                    if frames.is_empty() {
                        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed"));
                    }
                    return Ok(frames);
                }
                Ok(n) => {
                    self.dec.feed(&scratch[..n]).map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "oversized peer frame")
                    })?;
                    while let Some(body) = self.dec.next_frame() {
                        frames.push(body);
                    }
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(frames);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn outbound_loop(s: &Arc<PeerShared>, m: &Arc<AspectModerator>, grant: &amf_core::MethodHandle) {
    let start = Instant::now();
    let mut conn: Option<TcpStream> = None;
    let mut frames = FrameBuffer::new();
    // Set once this connection's greeting (the peer's unsolicited
    // cursor-sync ack) has been processed. Frames written earlier could
    // carry numbering from the peer's previous incarnation.
    let mut greeted = false;
    while !s.stop.load(Ordering::SeqCst) {
        // (Re)connect if needed.
        let target = s.next.lock().clone();
        if target.is_empty() {
            std::thread::sleep(s.cfg.io_tick);
            continue;
        }
        if conn.is_none() {
            match TcpStream::connect(&target) {
                Ok(c) => {
                    let _ = c.set_nodelay(true);
                    let _ = c.set_read_timeout(Some(s.cfg.io_tick));
                    frames = FrameBuffer::new();
                    greeted = false;
                    conn = Some(c);
                }
                Err(_) => {
                    // Peer gone. Timers below still run (that is where
                    // expiry-based reclaim and degradation come from);
                    // retry the connect next tick.
                    std::thread::sleep(s.cfg.io_tick);
                }
            }
        }
        // Write every queued frame — once the greeting has re-synced
        // the link (a rebase would invalidate anything written before).
        if let Some(c) = conn.as_mut().filter(|_| greeted) {
            let pending: Vec<LeaseMsg> = s.wire_q.lock().drain(..).collect();
            let mut broken = false;
            for msg in pending {
                let f = PeerFrame {
                    node: s.cfg.node,
                    msg,
                };
                if !broken && write_frame(c, &encode_peer(&f)).is_err() {
                    broken = true;
                }
                // A frame that failed to write is simply dropped: it
                // stays pending in LeaseOut and retransmission covers
                // it once the connection is back.
            }
            if broken {
                conn = None;
            }
        }
        // Drain acks until the tick elapses. This doubles as the
        // "drain every readable ack before reclaiming" guard the
        // recovery machine's soundness depends on.
        if let Some(c) = conn.as_mut() {
            match frames.pump(c) {
                Ok(bodies) => {
                    for body in bodies {
                        let Ok(wire) = decode_peer_wire(&body) else {
                            continue;
                        };
                        let now = now_since(start);
                        let rejoined = match wire {
                            // The peer's connection greeting: re-sync the
                            // sender onto its incarnation and cursor. A
                            // rebase means the peer restarted from
                            // scratch — everything queued under the old
                            // numbering is garbage, replaced by the
                            // renumbered resend set. The `out` lock is
                            // held across the wire_q swap so a concurrent
                            // worker grant is either fully before the
                            // rebase (renumbered into the resend set, its
                            // queued copy cleared) or fully after
                            // (numbered on the fresh link) — never a
                            // stale frame enqueued post-rebase.
                            PeerWire::Hello {
                                incarnation,
                                cursor,
                                ..
                            } => {
                                let mut out = s.out.lock();
                                let resync = out.on_greeting(incarnation, cursor, now);
                                if resync.rebased {
                                    let mut q = s.wire_q.lock();
                                    q.clear();
                                    q.extend(resync.resend);
                                }
                                greeted = true;
                                resync.rejoined
                            }
                            PeerWire::Frame(frame) => {
                                let LeaseMsg::Ack { seq, cursor } = frame.msg else {
                                    continue;
                                };
                                s.out.lock().on_ack(seq, cursor, now)
                            }
                        };
                        if rejoined {
                            s.rejoins.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                Err(_) => conn = None,
            }
        } else {
            std::thread::sleep(s.cfg.io_tick);
        }
        // Drive the timers: retransmits go back on the wire queue,
        // reclaimed leases re-enter the local inbox as degraded work.
        let actions = s.out.lock().poll(now_since(start));
        let mut reclaimed = Vec::new();
        {
            let mut q = s.wire_q.lock();
            for a in actions {
                match a {
                    LeaseAction::Send(msg) => q.push_back(msg),
                    LeaseAction::Reclaim { lease, hop, visits } => {
                        reclaimed.push(InboxEntry { lease, hop, visits });
                    }
                }
            }
        }
        for entry in reclaimed {
            // The lease is ours again: fence its hop so a late stale
            // re-delivery can never double-grant, then moderate it
            // locally like any other arrival.
            s.inn.lock().fence(entry.lease, entry.hop);
            s.delivered.fetch_add(1, Ordering::SeqCst);
            s.inbox.lock().push_back(entry);
            invoke_ok(m, grant);
        }
        s.degraded.store(s.out.lock().degraded(), Ordering::SeqCst);
    }
}

fn worker_loop(
    s: &Arc<PeerShared>,
    m: &Arc<AspectModerator>,
    acquire: &amf_core::MethodHandle,
    observe: &amf_core::MethodHandle,
) {
    let start = Instant::now();
    while !s.stop.load(Ordering::SeqCst) {
        let mut ctx = InvocationContext::new(acquire.id().clone(), m.next_invocation());
        match m.preactivation_timeout(
            acquire,
            &mut ctx,
            s.cfg.io_tick.max(Duration::from_millis(5)),
        ) {
            Ok(()) => {}
            Err(_) => continue, // timeout: re-check the stop flag
        }
        let entry = s.inbox.lock().pop_front();
        m.postactivation(acquire, &mut ctx);
        let Some(entry) = entry else { continue };
        invoke_ok(m, observe);
        if !s.cfg.visit_delay.is_zero() {
            std::thread::sleep(s.cfg.visit_delay);
        }
        let visits = entry.visits.saturating_sub(1);
        if visits == 0 {
            s.retired.lock().push(entry.lease);
            continue;
        }
        // Number the grant and enqueue it in one critical section on
        // `out`: the rebase path clears and refills wire_q while holding
        // `out`, so splitting these would let a rebase interleave and a
        // stale-numbered grant land on the wire after the renumbering.
        {
            let mut out = s.out.lock();
            let msg = out.grant(entry.lease, entry.hop + 1, visits, now_since(start));
            s.wire_q.lock().push_back(msg);
        }
    }
}

fn invoke_ok(m: &AspectModerator, h: &amf_core::MethodHandle) {
    let mut ctx = InvocationContext::new(h.id().clone(), m.next_invocation());
    m.preactivation(h, &mut ctx).expect("peer rows never abort");
    m.postactivation(h, &mut ctx);
}

/// Per-frame decision drawn by the fault proxy: a pure function of
/// `(seed, index)` so every run at a pinned seed injects the same
/// faults.
fn fault_draw(seed: u64, index: u64) -> u64 {
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Knobs for a [`FaultProxy`].
#[derive(Debug, Clone)]
pub struct FaultProxyConfig {
    /// Address to listen on (port 0 for ephemeral).
    pub listen: String,
    /// Where real frames go.
    pub target: String,
    /// Per-frame drop probability, in permille, on the forward (grant)
    /// plane.
    pub drop_permille: u64,
    /// Per-frame duplication probability, in permille.
    pub dup_permille: u64,
    /// Upper bound on a seeded per-frame forwarding delay.
    pub max_delay: Duration,
    /// Decision seed.
    pub seed: u64,
}

impl Default for FaultProxyConfig {
    fn default() -> Self {
        Self {
            listen: "127.0.0.1:0".into(),
            target: String::new(),
            drop_permille: 0,
            dup_permille: 0,
            max_delay: Duration::ZERO,
            seed: 42,
        }
    }
}

/// Counters a [`FaultProxy`] keeps about its mischief.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultProxyStats {
    /// Frames forwarded unharmed.
    pub forwarded: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames forwarded twice.
    pub duplicated: u64,
}

struct ProxyShared {
    cfg: FaultProxyConfig,
    index: AtomicU64,
    forwarded: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    stop: AtomicBool,
    conns: Mutex<Vec<TcpStream>>,
}

/// A frame-aware unreliable link: forwards client→target frames with
/// seeded drop/duplicate/delay faults, and copies the target→client
/// byte stream verbatim (acks survive — the declared fault model).
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for FaultProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultProxy")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl FaultProxy {
    /// Binds the proxy and starts forwarding.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn(cfg: FaultProxyConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.listen)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            cfg,
            index: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fault-proxy-accept".into())
                .spawn(move || proxy_accept(&listener, &shared))?
        };
        Ok(FaultProxy {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// What the proxy has done so far.
    pub fn stats(&self) -> FaultProxyStats {
        FaultProxyStats {
            forwarded: self.shared.forwarded.load(Ordering::SeqCst),
            dropped: self.shared.dropped.load(Ordering::SeqCst),
            duplicated: self.shared.duplicated.load(Ordering::SeqCst),
        }
    }

    /// Stops forwarding and joins the proxy threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for conn in self.shared.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn proxy_accept(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(client) = stream else { continue };
        let Ok(target) = TcpStream::connect(&shared.cfg.target) else {
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = target.set_nodelay(true);
        for c in [&client, &target] {
            if let Ok(clone) = c.try_clone() {
                shared.conns.lock().push(clone);
            }
        }
        // Forward plane: client → target, frame-aware, faults applied.
        {
            let shared = Arc::clone(shared);
            let (mut from, mut to) = match (client.try_clone(), target.try_clone()) {
                (Ok(f), Ok(t)) => (f, t),
                _ => continue,
            };
            let _ = std::thread::Builder::new()
                .name("fault-proxy-fwd".into())
                .spawn(move || {
                    while !shared.stop.load(Ordering::SeqCst) {
                        let body = match read_frame(&mut from) {
                            Ok(Some(b)) => b,
                            Ok(None) | Err(_) => break,
                        };
                        let i = shared.index.fetch_add(1, Ordering::SeqCst);
                        let draw = fault_draw(shared.cfg.seed, i);
                        if draw % 1000 < shared.cfg.drop_permille {
                            shared.dropped.fetch_add(1, Ordering::SeqCst);
                            continue;
                        }
                        let delay_ns = shared.cfg.max_delay.as_nanos() as u64;
                        if delay_ns > 0 {
                            std::thread::sleep(Duration::from_nanos(
                                fault_draw(shared.cfg.seed ^ 0xDE1A, i) % (delay_ns + 1),
                            ));
                        }
                        let mut framed = Vec::with_capacity(4 + body.len());
                        framed.extend_from_slice(&(body.len() as u32).to_be_bytes());
                        framed.extend_from_slice(&body);
                        let copies = if (draw >> 32) % 1000 < shared.cfg.dup_permille {
                            2
                        } else {
                            1
                        };
                        if copies == 2 {
                            shared.duplicated.fetch_add(1, Ordering::SeqCst);
                        }
                        let mut dead = false;
                        for _ in 0..copies {
                            if to.write_all(&framed).is_err() {
                                dead = true;
                                break;
                            }
                        }
                        if dead || to.flush().is_err() {
                            break;
                        }
                        shared.forwarded.fetch_add(1, Ordering::SeqCst);
                    }
                });
        }
        // Return plane: target → client, verbatim copy.
        {
            let shared = Arc::clone(shared);
            let (mut from, mut to) = (target, client);
            let _ = std::thread::Builder::new()
                .name("fault-proxy-ret".into())
                .spawn(move || {
                    let mut buf = [0u8; 4096];
                    while !shared.stop.load(Ordering::SeqCst) {
                        match from.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if to.write_all(&buf[..n]).is_err() || to.flush().is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
        }
    }
}

//! Blocking client for the ticket service, plus a multi-threaded load
//! generator used by the `loadgen` binary and the end-to-end tests.

use std::fmt;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use amf_aspects::auth::AuthToken;
use amf_ticketing::{Severity, Ticket};

use crate::codec::{
    decode_response, encode_request, read_frame, severity_to_wire, write_frame, DecodeError,
    Request, Response, WireStats,
};

/// Client-side failure of one request.
#[derive(Debug)]
pub enum ClientError {
    /// Server answered `Blocked`: the buffer stayed full/empty past the
    /// server's patience. Safe to retry.
    Blocked,
    /// An aspect vetoed the request (reason from the server).
    Aborted(String),
    /// The server reported a protocol/server error.
    Server(String),
    /// The server's reply failed to decode.
    Protocol(DecodeError),
    /// The reply type did not match the request.
    UnexpectedResponse,
    /// The connection died in the middle of a frame: the server (or the
    /// path to it) vanished after part of a reply was read. Unlike
    /// `Blocked` this is not retryable on the same connection — framing
    /// sync is gone.
    FrameTruncated(String),
    /// The socket deadline ([`crate::ServiceConfig::io_deadline`])
    /// elapsed with no reply. The connection may still be usable but a
    /// late reply would desync framing; reconnect.
    Timeout,
    /// Transport failure (includes the server hanging up mid-call).
    Io(io::Error),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Blocked => f.write_str("request blocked past server patience"),
            ClientError::Aborted(reason) => write!(f, "request aborted: {reason}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::UnexpectedResponse => f.write_str("reply did not match the request"),
            ClientError::FrameTruncated(detail) => write!(f, "frame truncated: {detail}"),
            ClientError::Timeout => f.write_str("socket deadline elapsed waiting for the server"),
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => ClientError::FrameTruncated(e.to_string()),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ClientError::Timeout,
            _ => ClientError::Io(e),
        }
    }
}

/// A blocking connection to the service; one request in flight at a
/// time (the protocol is strict request/response).
pub struct ServiceClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceClient").finish_non_exhaustive()
    }
}

impl ServiceClient {
    /// Connects to a running service with the default socket deadline
    /// ([`crate::ServiceConfig::default`]'s `io_deadline`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::connect_with_deadline(addr, crate::ServiceConfig::default().io_deadline)
    }

    /// Connects with an explicit socket deadline applied via
    /// `set_read_timeout`/`set_write_timeout`; `None` blocks forever
    /// (the pre-robustness behavior). A tripped deadline surfaces as
    /// [`ClientError::Timeout`] instead of a hang.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect_with_deadline(addr: SocketAddr, deadline: Option<Duration>) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(deadline)?;
        stream.set_write_timeout(deadline)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request(req))?;
        let body = read_frame(&mut self.reader)?.ok_or_else(|| {
            ClientError::FrameTruncated("server closed the connection mid-call".into())
        })?;
        let resp = decode_response(&body).map_err(ClientError::Protocol)?;
        match resp {
            Response::Blocked => Err(ClientError::Blocked),
            Response::Aborted(reason) => Err(ClientError::Aborted(reason)),
            Response::Err(msg) => Err(ClientError::Server(msg)),
            ok => Ok(ok),
        }
    }

    /// Opens a ticket.
    ///
    /// # Errors
    ///
    /// [`ClientError`] — `Blocked` when the buffer stayed full,
    /// `Aborted` on an aspect veto.
    pub fn open(
        &mut self,
        token: AuthToken,
        id: u64,
        severity: Severity,
        summary: &str,
    ) -> Result<(), ClientError> {
        match self.call(&Request::Open {
            token: token.0,
            id,
            severity: severity_to_wire(severity),
            summary: summary.to_string(),
        })? {
            Response::Ok(_) => Ok(()),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Assigns (retrieves) the oldest ticket.
    ///
    /// # Errors
    ///
    /// [`ClientError`] — `Blocked` when the buffer stayed empty,
    /// `Aborted` on an aspect veto.
    pub fn assign(&mut self, token: AuthToken) -> Result<Ticket, ClientError> {
        match self.call(&Request::Assign { token: token.0 })? {
            Response::Ok(Some(ticket)) => Ok(ticket),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Reads the service counters.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Asks the server to shut down.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on transport or protocol failure.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Ok(_) => Ok(()),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }
}

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total operations across all clients (split evenly; each client
    /// alternates `open` / `assign` so tickets never pile up unbounded).
    pub requests: u64,
    /// Service address.
    pub addr: SocketAddr,
    /// Session token every client uses.
    pub token: AuthToken,
}

/// What the load run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadOutcome {
    /// Per-request latency of successful `open` calls, nanoseconds.
    pub open_latencies_ns: Vec<u64>,
    /// Per-request latency of successful `assign` calls, nanoseconds.
    pub assign_latencies_ns: Vec<u64>,
    /// Requests answered `Ok`.
    pub ok: u64,
    /// Requests answered `Blocked`.
    pub blocked: u64,
    /// Requests answered `Aborted`.
    pub aborted: u64,
    /// Wall-clock span of the whole run.
    pub elapsed: Duration,
}

impl LoadOutcome {
    /// Total requests sent.
    pub fn total(&self) -> u64 {
        self.ok + self.blocked + self.aborted
    }

    /// Successful requests per second over the run.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.ok as f64 / secs
        } else {
            0.0
        }
    }
}

/// Drives `cfg.clients` concurrent connections against the service and
/// aggregates latencies and outcome counts.
///
/// # Errors
///
/// Returns the first connection error; per-request transport failures
/// mid-run abort that client's remaining work and surface the error.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadOutcome, ClientError> {
    let clients = cfg.clients.max(1);
    let per_client = cfg.requests / clients as u64;
    let started = Instant::now();
    let mut results: Vec<Result<LoadOutcome, ClientError>> = Vec::with_capacity(clients);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| s.spawn(move || run_one_client(cfg.addr, cfg.token, c as u64, per_client)))
            .collect();
        for h in handles {
            results.push(h.join().expect("load client panicked"));
        }
    });
    let mut merged = LoadOutcome::default();
    for r in results {
        let one = r?;
        merged.open_latencies_ns.extend(one.open_latencies_ns);
        merged.assign_latencies_ns.extend(one.assign_latencies_ns);
        merged.ok += one.ok;
        merged.blocked += one.blocked;
        merged.aborted += one.aborted;
    }
    merged.elapsed = started.elapsed();
    Ok(merged)
}

fn run_one_client(
    addr: SocketAddr,
    token: AuthToken,
    client_index: u64,
    ops: u64,
) -> Result<LoadOutcome, ClientError> {
    let mut client = ServiceClient::connect(addr)?;
    let mut out = LoadOutcome::default();
    for i in 0..ops {
        let t0 = Instant::now();
        // Even ops open, odd ops assign: per client the buffer never
        // drifts by more than one ticket.
        let result = if i % 2 == 0 {
            let id = client_index * 1_000_000_000 + i;
            client.open(token, id, Severity::Medium, "load")
        } else {
            client.assign(token).map(|_| ())
        };
        let elapsed_ns = t0.elapsed().as_nanos() as u64;
        match result {
            Ok(()) => {
                out.ok += 1;
                if i % 2 == 0 {
                    out.open_latencies_ns.push(elapsed_ns);
                } else {
                    out.assign_latencies_ns.push(elapsed_ns);
                }
            }
            Err(ClientError::Blocked) => out.blocked += 1,
            Err(ClientError::Aborted(_)) => out.aborted += 1,
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    /// A server that answers a `Stats` request with `reply` bytes and
    /// hangs up (or stalls, if `reply` is `None`).
    fn one_shot_server(reply: Option<Vec<u8>>) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            let _ = read_frame(&mut reader);
            match reply {
                Some(bytes) => {
                    let _ = conn.write_all(&bytes);
                    // Hang up mid-frame.
                }
                None => {
                    // Stall: never answer, keep the socket open.
                    std::thread::sleep(Duration::from_secs(30));
                }
            }
        });
        addr
    }

    #[test]
    fn partial_frame_surfaces_as_frame_truncated_not_a_hang() {
        use crate::codec::encode_response;
        let full = encode_response(&Response::Stats(WireStats::default()));
        // One reply cut inside the length prefix, one inside the body.
        for cut in [2, full.len() - 3] {
            let addr = one_shot_server(Some(full[..cut].to_vec()));
            let mut client =
                ServiceClient::connect_with_deadline(addr, Some(Duration::from_secs(5))).unwrap();
            match client.stats() {
                Err(ClientError::FrameTruncated(_)) => {}
                other => panic!("cut at {cut}: expected FrameTruncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn silent_server_trips_the_deadline_instead_of_hanging() {
        let addr = one_shot_server(None);
        let mut client =
            ServiceClient::connect_with_deadline(addr, Some(Duration::from_millis(50))).unwrap();
        match client.stats() {
            Err(ClientError::Timeout) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
    }
}

//! Sans-io framing: the wire's length-prefix layer as a pure state
//! machine.
//!
//! Exactly one implementation of the `u32`-big-endian length prefix
//! lives here. [`FrameDecoder`] consumes byte slices (from any
//! transport: a blocking socket read, a nonblocking readiness loop, a
//! test vector) and yields complete frame *bodies*; [`FrameEncoder`]
//! produces prefixed bytes. Neither touches a socket, so the blocking
//! client, the threaded server front, the readiness-driven reactor
//! front, and `PeerNode` all share the same parsing with their own IO
//! strategies on top.
//!
//! The decoder is incremental and restartable at every byte boundary:
//! `feed` accepts arbitrary chunkings of the stream, including one byte
//! at a time, and [`FrameDecoder::needed`] reports how many bytes
//! complete the element currently in progress — which lets a blocking
//! caller read *exactly* that many and never over-read beyond a frame
//! it hands back (callers that re-frame per call, like
//! [`read_frame`](crate::codec::read_frame), depend on this).

use std::collections::VecDeque;

use crate::codec::{DecodeError, MAX_FRAME};

/// Where the decoder stands inside the current (incomplete) element.
/// Lets transports produce precise truncation diagnostics when a
/// connection dies mid-frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramePartial {
    /// Between frames: nothing buffered, EOF here is a clean close.
    Clean,
    /// Mid-length-prefix: `got` of the 4 prefix bytes have arrived.
    Header {
        /// Prefix bytes received so far (1..=3).
        got: usize,
    },
    /// Mid-body: `got` of the `len` body bytes have arrived.
    Body {
        /// Declared body length from the prefix.
        len: usize,
        /// Body bytes received so far.
        got: usize,
    },
}

enum State {
    Header {
        buf: [u8; 4],
        got: usize,
    },
    Body {
        body: Vec<u8>,
        got: usize,
    },
    /// A hostile length prefix was seen; the stream is unrecoverable.
    Poisoned {
        len: usize,
    },
}

/// Incremental frame decoder; see the module docs.
///
/// ```
/// use amf_service::{FrameDecoder, FrameEncoder};
/// let wire = FrameEncoder::encode(b"hello");
/// let mut dec = FrameDecoder::new();
/// for b in &wire {
///     dec.feed(std::slice::from_ref(b)).unwrap();
/// }
/// assert_eq!(dec.next_frame().as_deref(), Some(&b"hello"[..]));
/// ```
pub struct FrameDecoder {
    state: State,
    ready: VecDeque<Vec<u8>>,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FrameDecoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameDecoder")
            .field("partial", &self.partial())
            .field("ready", &self.ready.len())
            .finish()
    }
}

impl FrameDecoder {
    /// A decoder positioned at a frame boundary.
    pub fn new() -> Self {
        Self {
            state: State::Header {
                buf: [0; 4],
                got: 0,
            },
            ready: VecDeque::new(),
        }
    }

    /// Consumes an arbitrary chunk of stream bytes. Any number of
    /// frames may complete (retrieve them with
    /// [`next_frame`](Self::next_frame)); returns how many completed
    /// during this call.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Oversized`] when a length prefix exceeds
    /// [`MAX_FRAME`] — a framing-desync or hostile peer. The decoder
    /// stays poisoned afterwards (every later `feed` repeats the
    /// error); drop the connection.
    pub fn feed(&mut self, mut chunk: &[u8]) -> Result<usize, DecodeError> {
        let mut completed = 0;
        while !chunk.is_empty() {
            match &mut self.state {
                State::Header { buf, got } => {
                    let take = chunk.len().min(4 - *got);
                    buf[*got..*got + take].copy_from_slice(&chunk[..take]);
                    *got += take;
                    chunk = &chunk[take..];
                    if *got == 4 {
                        let len = u32::from_be_bytes(*buf) as usize;
                        if len > MAX_FRAME {
                            self.state = State::Poisoned { len };
                            return Err(DecodeError::Oversized { len });
                        }
                        if len == 0 {
                            self.ready.push_back(Vec::new());
                            completed += 1;
                            self.state = State::Header {
                                buf: [0; 4],
                                got: 0,
                            };
                        } else {
                            self.state = State::Body {
                                body: vec![0; len],
                                got: 0,
                            };
                        }
                    }
                }
                State::Body { body, got } => {
                    let take = chunk.len().min(body.len() - *got);
                    body[*got..*got + take].copy_from_slice(&chunk[..take]);
                    *got += take;
                    chunk = &chunk[take..];
                    if *got == body.len() {
                        let done = std::mem::take(body);
                        self.ready.push_back(done);
                        completed += 1;
                        self.state = State::Header {
                            buf: [0; 4],
                            got: 0,
                        };
                    }
                }
                State::Poisoned { len } => {
                    return Err(DecodeError::Oversized { len: *len });
                }
            }
        }
        Ok(completed)
    }

    /// Pops the oldest completed frame body, if any.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        self.ready.pop_front()
    }

    /// Completed frames waiting to be popped.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Bytes required to complete the element currently in progress (4
    /// at a frame boundary, the rest of the prefix or body otherwise).
    /// A blocking transport that must not read past the frame it
    /// returns reads exactly this many.
    pub fn needed(&self) -> usize {
        match &self.state {
            State::Header { got, .. } => 4 - got,
            State::Body { body, got } => body.len() - got,
            State::Poisoned { .. } => 0,
        }
    }

    /// Position within the current element, for truncation diagnostics.
    pub fn partial(&self) -> FramePartial {
        match &self.state {
            State::Header { got: 0, .. } => FramePartial::Clean,
            State::Header { got, .. } => FramePartial::Header { got: *got },
            State::Body { body, got } => FramePartial::Body {
                len: body.len(),
                got: *got,
            },
            State::Poisoned { len } => FramePartial::Body { len: *len, got: 0 },
        }
    }
}

/// Stateless frame encoder: prepends the length prefix.
#[derive(Debug, Default, Clone, Copy)]
pub struct FrameEncoder;

impl FrameEncoder {
    /// Encodes one frame (prefix + body) into a fresh buffer. The body
    /// must not exceed [`MAX_FRAME`]; all bodies produced by this
    /// crate's codec are far below the cap.
    pub fn encode(body: &[u8]) -> Vec<u8> {
        debug_assert!(body.len() <= MAX_FRAME, "frame body exceeds cap");
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_frame_in_one_chunk() {
        let mut dec = FrameDecoder::new();
        assert_eq!(dec.feed(&FrameEncoder::encode(b"abc")).unwrap(), 1);
        assert_eq!(dec.next_frame().unwrap(), b"abc");
        assert_eq!(dec.partial(), FramePartial::Clean);
    }

    #[test]
    fn several_frames_in_one_chunk() {
        let mut wire = FrameEncoder::encode(b"one");
        wire.extend(FrameEncoder::encode(b""));
        wire.extend(FrameEncoder::encode(b"three"));
        let mut dec = FrameDecoder::new();
        assert_eq!(dec.feed(&wire).unwrap(), 3);
        assert_eq!(dec.next_frame().unwrap(), b"one");
        assert_eq!(dec.next_frame().unwrap(), b"");
        assert_eq!(dec.next_frame().unwrap(), b"three");
        assert_eq!(dec.next_frame(), None);
    }

    #[test]
    fn byte_at_a_time_tracks_partial_and_needed() {
        let wire = FrameEncoder::encode(b"xy");
        let mut dec = FrameDecoder::new();
        assert_eq!(dec.needed(), 4);
        dec.feed(&wire[..1]).unwrap();
        assert_eq!(dec.partial(), FramePartial::Header { got: 1 });
        assert_eq!(dec.needed(), 3);
        dec.feed(&wire[1..4]).unwrap();
        assert_eq!(dec.partial(), FramePartial::Body { len: 2, got: 0 });
        assert_eq!(dec.needed(), 2);
        dec.feed(&wire[4..5]).unwrap();
        assert_eq!(dec.partial(), FramePartial::Body { len: 2, got: 1 });
        dec.feed(&wire[5..]).unwrap();
        assert_eq!(dec.next_frame().unwrap(), b"xy");
    }

    #[test]
    fn oversized_prefix_poisons_the_decoder() {
        let mut wire = ((MAX_FRAME as u32) + 1).to_be_bytes().to_vec();
        wire.push(0);
        let mut dec = FrameDecoder::new();
        assert_eq!(
            dec.feed(&wire),
            Err(DecodeError::Oversized { len: MAX_FRAME + 1 })
        );
        assert_eq!(
            dec.feed(b"more"),
            Err(DecodeError::Oversized { len: MAX_FRAME + 1 }),
            "poisoned decoder keeps refusing"
        );
    }
}

//! Readiness-driven service front: one epoll loop, tasks for requests.
//!
//! The threaded front pins one worker thread per live connection; this
//! front holds *every* connection in a single reactor thread and spends
//! execution only on decoded requests, dispatched as tasks on the
//! [`TaskEngine`]. Mostly-idle connections therefore cost a few hundred
//! bytes of state instead of a stack, which is what the
//! connection-scaling experiment (E17) measures.
//!
//! Structure:
//!
//! * **epoll binding** — minimal raw `extern "C"` declarations against
//!   the libc the binary already links (consistent with the
//!   no-registry shims policy; no crate dependency). Level-triggered.
//! * **per-connection state machine** — a nonblocking socket, the
//!   sans-io [`FrameDecoder`], an outbound byte buffer, and a
//!   one-request-in-flight discipline (`busy` + a `pending` queue)
//!   that preserves response ordering for pipelined clients.
//! * **wakeup path** — request tasks finish on engine workers, push a
//!   completion into a shared queue, and write an `eventfd` the
//!   reactor polls; the reactor drains completions, writes responses,
//!   and dispatches the next pending frame. [`super::server`]'s
//!   shutdown uses the same eventfd to interrupt the loop.
//!
//! Ownership: the reactor thread exclusively owns the listener, the
//! epoll instance and every connection; tasks own nothing but their
//! request bytes and the completion they push. Nothing here interprets
//! frame *bodies* beyond `decode_request` — the moderator protocol and
//! the aspect chain are untouched, they just run on engine workers.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

use amf_concurrency::TaskEngine;
use parking_lot::Mutex;

use crate::codec::{decode_request, encode_response, Request, Response};
use crate::frame::FrameDecoder;
use crate::server::ServiceShared;

// --- epoll / eventfd binding (x86_64 linux) --------------------------

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

/// `struct epoll_event`; packed on x86_64, where the kernel ABI elides
/// the padding other architectures keep.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

fn epoll_add(ep: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    if unsafe { epoll_ctl(ep, EPOLL_CTL_ADD, fd, &mut ev) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

// --- completions and the waker ---------------------------------------

/// A finished request task: the framed response plus connection fate.
pub(crate) struct Completion {
    token: u64,
    bytes: Vec<u8>,
    /// Close the connection after flushing (shutdown ack, protocol
    /// error) — mirrors the threaded front's `then_shutdown`.
    close_after: bool,
}

/// Handle engine tasks (and `begin_shutdown`) use to reach the reactor:
/// a completion queue plus the eventfd that interrupts `epoll_wait`.
pub(crate) struct ReactorWaker {
    efd: File,
    completions: Mutex<Vec<Completion>>,
}

impl std::fmt::Debug for ReactorWaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorWaker").finish_non_exhaustive()
    }
}

impl ReactorWaker {
    /// Interrupts the reactor's `epoll_wait`.
    pub(crate) fn wake(&self) {
        let _ = (&self.efd).write(&1u64.to_ne_bytes());
    }

    fn complete(&self, c: Completion) {
        self.completions.lock().push(c);
        self.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock())
    }

    fn clear_signal(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.efd).read(&mut buf);
    }
}

// --- per-connection state machine ------------------------------------

struct Conn {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Unwritten response bytes (already framed), from `out_pos`.
    out: Vec<u8>,
    out_pos: usize,
    /// One request in flight at a time keeps responses in request
    /// order; further decoded frames wait in `pending`.
    busy: bool,
    pending: VecDeque<Vec<u8>>,
    /// Flush what is buffered, then close.
    closing: bool,
    /// A framing error to report (after pending responses) and close.
    poison: Option<String>,
    /// Peer sent EOF; close once in-flight responses are flushed.
    eof: bool,
    /// Whether EPOLLOUT is currently armed.
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            dec: FrameDecoder::new(),
            out: Vec::new(),
            out_pos: 0,
            busy: false,
            pending: VecDeque::new(),
            closing: false,
            poison: None,
            eof: false,
            want_write: false,
        }
    }
}

// --- the reactor ------------------------------------------------------

const TOK_LISTENER: u64 = 0;
const TOK_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;
const MAX_EVENTS: usize = 128;

/// Milliseconds the reactor sleeps in `epoll_wait` when nothing is
/// ready; a defensive heartbeat so a lost wakeup degrades to latency,
/// never to a hang.
const WAIT_TICK_MS: i32 = 250;

struct Reactor {
    ep: OwnedFd,
    listener: TcpListener,
    shared: Arc<ServiceShared>,
    engine: Arc<TaskEngine>,
    waker: Arc<ReactorWaker>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
}

/// Binds the epoll instance and the eventfd, registers the listener
/// (which must outlive-own the accept responsibility; it is moved in),
/// and starts the reactor thread.
pub(crate) fn spawn(
    listener: TcpListener,
    shared: Arc<ServiceShared>,
    engine: Arc<TaskEngine>,
) -> io::Result<(JoinHandle<()>, Arc<ReactorWaker>)> {
    listener.set_nonblocking(true)?;
    let ep = unsafe {
        let fd = epoll_create1(EPOLL_CLOEXEC);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        OwnedFd::from_raw_fd(fd)
    };
    let efd = unsafe {
        let fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        File::from_raw_fd(fd)
    };
    epoll_add(ep.as_raw_fd(), listener.as_raw_fd(), EPOLLIN, TOK_LISTENER)?;
    epoll_add(ep.as_raw_fd(), efd.as_raw_fd(), EPOLLIN, TOK_WAKER)?;
    let waker = Arc::new(ReactorWaker {
        efd,
        completions: Mutex::new(Vec::new()),
    });
    let reactor = Reactor {
        ep,
        listener,
        shared,
        engine,
        waker: Arc::clone(&waker),
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
    };
    let handle = std::thread::Builder::new()
        .name("amf-service-reactor".into())
        .spawn(move || reactor.run())?;
    Ok((handle, waker))
}

impl Reactor {
    fn run(mut self) {
        let mut events = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        loop {
            for c in self.waker.drain() {
                self.handle_completion(c);
            }
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let n = unsafe {
                epoll_wait(
                    self.ep.as_raw_fd(),
                    events.as_mut_ptr(),
                    MAX_EVENTS as i32,
                    WAIT_TICK_MS,
                )
            };
            if n < 0 {
                if io::Error::last_os_error().kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                break;
            }
            for ev in &events[..n as usize] {
                let (bits, data) = (ev.events, ev.data);
                match data {
                    TOK_LISTENER => self.accept_ready(),
                    TOK_WAKER => self.waker.clear_signal(),
                    token => {
                        if bits & EPOLLOUT != 0 {
                            self.flush_conn(token);
                        }
                        if bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0 {
                            self.conn_readable(token);
                        }
                    }
                }
            }
        }
        // Final drain: the shutdown ack (and anything else already
        // computed) gets a best-effort nonblocking flush before every
        // connection is torn down with the listener.
        for c in self.waker.drain() {
            self.handle_completion(c);
        }
        for token in self.conns.keys().copied().collect::<Vec<_>>() {
            self.close_conn(token);
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if epoll_add(self.ep.as_raw_fd(), stream.as_raw_fd(), EPOLLIN, token).is_err() {
                        continue;
                    }
                    self.shared.open_connections.fetch_add(1, Ordering::SeqCst);
                    self.conns.insert(token, Conn::new(stream));
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    fn conn_readable(&mut self, token: u64) {
        let mut scratch = [0u8; 16 * 1024];
        let mut frames = Vec::new();
        let mut dead = false;
        {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.closing {
                return;
            }
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => match conn.dec.feed(&scratch[..n]) {
                        Ok(_) => {
                            while let Some(f) = conn.dec.next_frame() {
                                frames.push(f);
                            }
                        }
                        Err(e) => {
                            // Oversized length prefix: report before
                            // hanging up, like the threaded front —
                            // but only after responses already owed.
                            conn.poison = Some(e.to_string());
                            break;
                        }
                    },
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close_conn(token);
            return;
        }
        for f in frames {
            let dispatch_now = {
                let Some(conn) = self.conns.get_mut(&token) else {
                    return;
                };
                if conn.busy {
                    conn.pending.push_back(f.clone());
                    false
                } else {
                    conn.busy = true;
                    true
                }
            };
            if dispatch_now {
                self.dispatch(token, f);
            }
        }
        self.settle(token);
    }

    /// Once no request is in flight and none is pending, act on any
    /// deferred fate: report a framing error, or honor the peer's EOF.
    fn settle(&mut self, token: u64) {
        let flush = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.busy || !conn.pending.is_empty() || conn.closing {
                false
            } else if let Some(msg) = conn.poison.take() {
                conn.out
                    .extend_from_slice(&encode_response(&Response::Err(msg)));
                conn.closing = true;
                true
            } else if conn.eof {
                conn.closing = true;
                true
            } else {
                false
            }
        };
        if flush {
            self.flush_conn(token);
        }
    }

    fn dispatch(&self, token: u64, body: Vec<u8>) {
        let shared = Arc::clone(&self.shared);
        let waker = Arc::clone(&self.waker);
        self.engine.spawn(move || {
            let (response, close_after) = match decode_request(&body) {
                Ok(Request::Shutdown) => (Response::Ok(None), true),
                Ok(req) => (shared.handle_request(req), false),
                Err(e) => (Response::Err(e.to_string()), true),
            };
            if close_after && matches!(response, Response::Ok(_)) {
                // Raise the flag before the ack goes out: a client that
                // reads this Ok and reconnects must already see the
                // service as down (same ordering as the threaded front).
                shared.shutting_down.store(true, Ordering::SeqCst);
            }
            waker.complete(Completion {
                token,
                bytes: encode_response(&response).to_vec(),
                close_after,
            });
        });
    }

    fn handle_completion(&mut self, c: Completion) {
        let next = {
            let Some(conn) = self.conns.get_mut(&c.token) else {
                return;
            };
            conn.out.extend_from_slice(&c.bytes);
            if c.close_after {
                conn.closing = true;
                conn.pending.clear();
                conn.busy = false;
                None
            } else {
                let next = conn.pending.pop_front();
                if next.is_none() {
                    conn.busy = false;
                }
                next
            }
        };
        if let Some(f) = next {
            self.dispatch(c.token, f);
        }
        self.flush_conn(c.token);
        self.settle(c.token);
    }

    fn flush_conn(&mut self, token: u64) {
        enum Outcome {
            Dead,
            Alive,
        }
        let outcome = {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            loop {
                if conn.out_pos >= conn.out.len() {
                    conn.out.clear();
                    conn.out_pos = 0;
                    break if conn.closing {
                        Outcome::Dead
                    } else {
                        Outcome::Alive
                    };
                }
                match conn.stream.write(&conn.out[conn.out_pos..]) {
                    Ok(0) => break Outcome::Dead,
                    Ok(n) => conn.out_pos += n,
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break Outcome::Alive,
                    Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => break Outcome::Dead,
                }
            }
        };
        match outcome {
            Outcome::Dead => self.close_conn(token),
            Outcome::Alive => self.update_interest(token),
        }
    }

    /// Arms EPOLLOUT exactly while unwritten bytes exist.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = conn.out_pos < conn.out.len();
        if want != conn.want_write {
            conn.want_write = want;
            let mut ev = EpollEvent {
                events: EPOLLIN | if want { EPOLLOUT } else { 0 },
                data: token,
            };
            unsafe {
                epoll_ctl(
                    self.ep.as_raw_fd(),
                    EPOLL_CTL_MOD,
                    conn.stream.as_raw_fd(),
                    &mut ev,
                );
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            unsafe {
                epoll_ctl(
                    self.ep.as_raw_fd(),
                    EPOLL_CTL_DEL,
                    conn.stream.as_raw_fd(),
                    std::ptr::null_mut(),
                );
            }
            self.shared.open_connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

//! In-process ring of [`PeerNode`]s over real TCP: the recovery state
//! machine exercised against loopback sockets, with and without an
//! unreliable link in the middle.

use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use amf_core::lease::LeaseMsg;
use amf_core::LeaseConfig;
use amf_service::codec::{decode_peer, encode_hello, read_frame, write_frame, PeerFrame};
use amf_service::{FaultProxy, FaultProxyConfig, PeerConfig, PeerNode};

fn lease_cfg(expiry_ms: u64) -> LeaseConfig {
    LeaseConfig {
        expiry: Duration::from_millis(expiry_ms),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
        jitter_seed: 7,
    }
}

/// Spawns `n` nodes, wires the ring `0 → 1 → … → 0`, seeding `leases`
/// at node 0 with `visits` each. `wrap` interposes on each link address
/// (identity for a clean ring, a fault proxy for an unreliable one).
fn spawn_ring(
    n: usize,
    leases: u64,
    visits: u64,
    expiry_ms: u64,
    mut wrap: impl FnMut(usize, String) -> String,
) -> Vec<PeerNode> {
    // Bind every listener first so successor addresses exist, then wire
    // the links.
    let nodes: Vec<PeerNode> = (0..n)
        .map(|i| {
            PeerNode::spawn(PeerConfig {
                node: i as u64,
                seed_leases: if i == 0 { leases } else { 0 },
                visits,
                lease: lease_cfg(expiry_ms),
                ..PeerConfig::default()
            })
            .expect("spawn node")
        })
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|p| p.addr().to_string()).collect();
    for (i, node) in nodes.iter().enumerate() {
        let next = wrap(i, addrs[(i + 1) % n].clone());
        node.set_next(&next);
    }
    nodes
}

fn await_retired(nodes: &[PeerNode], want: u64, deadline: Duration) -> u64 {
    let t0 = Instant::now();
    loop {
        let got: u64 = nodes.iter().map(|n| n.stats().retired).sum();
        if got >= want || t0.elapsed() > deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn assert_no_lease_lost_or_doubled(nodes: &[PeerNode], leases: u64) {
    let mut retired: Vec<u64> = nodes.iter().flat_map(|n| n.retired()).collect();
    retired.sort_unstable();
    let expect: Vec<u64> = (0..leases).collect();
    assert_eq!(retired, expect, "every lease retires exactly once");
}

#[test]
fn clean_ring_circulates_and_retires_every_lease() {
    let leases = 4;
    let visits = 9; // 3 laps of 3 nodes
    let nodes = spawn_ring(3, leases, visits, 200, |_, addr| addr);
    let got = await_retired(&nodes, leases, Duration::from_secs(10));
    assert_eq!(got, leases, "all leases retire");
    assert_no_lease_lost_or_doubled(&nodes, leases);
    let total_delivered: u64 = nodes.iter().map(|n| n.stats().delivered).sum();
    // Every visit after the seeded ones is a delivery.
    assert_eq!(total_delivered, leases * visits - leases);
    for n in &nodes {
        let s = n.stats();
        assert_eq!(s.reclaimed, 0, "no reclaims on a clean ring: {s:?}");
        assert!(!s.degraded_now);
        assert!(s.fast_path_admits > 0, "telemetry row rides the fast lane");
    }
}

#[test]
fn lossy_ring_retransmits_dedups_and_still_loses_nothing() {
    let leases = 3;
    let visits = 9;
    let mut proxies: Vec<FaultProxy> = Vec::new();
    let nodes = spawn_ring(3, leases, visits, 150, |i, addr| {
        let proxy = FaultProxy::spawn(FaultProxyConfig {
            target: addr,
            drop_permille: 100,
            dup_permille: 100,
            max_delay: Duration::from_micros(200),
            seed: 0xC0FFEE + i as u64,
            ..FaultProxyConfig::default()
        })
        .expect("spawn proxy");
        let a = proxy.addr().to_string();
        proxies.push(proxy);
        a
    });
    let got = await_retired(&nodes, leases, Duration::from_secs(30));
    assert_eq!(got, leases, "all leases survive a 10% drop / 10% dup link");
    assert_no_lease_lost_or_doubled(&nodes, leases);
    let dropped: u64 = proxies.iter().map(|p| p.stats().dropped).sum();
    let duplicated: u64 = proxies.iter().map(|p| p.stats().duplicated).sum();
    let retransmits: u64 = nodes.iter().map(|n| n.stats().retransmits).sum();
    let dups_dropped: u64 = nodes.iter().map(|n| n.stats().dup_dropped).sum();
    if dropped > 0 {
        assert!(retransmits > 0, "drops must be answered by retransmits");
    }
    if duplicated > 0 {
        assert!(dups_dropped > 0, "duplicates must be dropped idempotently");
    }
}

/// Regression for incarnation fencing in the greeting: a successor that
/// dies and is replaced on the same port greets with a fresh
/// incarnation id, and the sender must rebase — resend every in-flight
/// grant immediately — even though the replacement's cursor of 0 makes
/// the link look structurally intact (nothing was ever acked, so every
/// sequence number is still pending). Before incarnation ids, that
/// exact shape passed the intact heuristic and the sender sat on its
/// backoff timers while the new peer waited.
#[test]
fn replaced_successor_incarnation_forces_immediate_rebase() {
    // Recovery timers pushed far outside the test window: any frame
    // arriving promptly after a greeting came from the greeting path
    // (first-contact send or rebase resend), not from a backoff
    // retransmission.
    let sender = PeerNode::spawn(PeerConfig {
        node: 0,
        seed_leases: 2,
        visits: 4,
        lease: LeaseConfig {
            expiry: Duration::from_secs(120),
            backoff_base: Duration::from_secs(30),
            backoff_cap: Duration::from_secs(30),
            jitter_seed: 7,
        },
        ..PeerConfig::default()
    })
    .expect("spawn sender");

    // The "successor" is this test playing receiver on a raw socket, so
    // it can die and come back with whatever incarnation it likes.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake successor");
    sender.set_next(&listener.local_addr().expect("local addr").to_string());

    let accept_and_greet = |incarnation: u64| -> TcpStream {
        let (mut conn, _) = listener.accept().expect("sender connects");
        conn.set_read_timeout(Some(Duration::from_millis(50)))
            .expect("read timeout");
        write_frame(&mut conn, &encode_hello(1, incarnation, 0)).expect("send greeting");
        conn
    };
    let collect_grants = |conn: &mut TcpStream, want: usize, window: Duration| {
        let deadline = Instant::now() + window;
        let mut grants: Vec<PeerFrame> = Vec::new();
        while grants.len() < want && Instant::now() < deadline {
            match read_frame(conn) {
                Ok(Some(body)) => {
                    let frame = decode_peer(&body).expect("well-formed peer frame");
                    if matches!(frame.msg, LeaseMsg::Grant { .. }) {
                        grants.push(frame);
                    }
                }
                Ok(None) => break,
                Err(_) => {} // read timeout — poll again
            }
        }
        grants
    };

    // First contact: both seeded leases are granted; we ack nothing.
    let mut conn = accept_and_greet(100);
    let first = collect_grants(&mut conn, 2, Duration::from_secs(10));
    assert_eq!(first.len(), 2, "both in-flight grants reach the successor");
    drop(conn);

    // Reconnect of the *same* incarnation: the link is intact, the
    // cursor is authoritative, and nothing may be resent ahead of the
    // (distant) backoff deadline.
    let mut conn = accept_and_greet(100);
    let quiet = collect_grants(&mut conn, 1, Duration::from_millis(800));
    assert!(
        quiet.is_empty(),
        "same-incarnation reconnect must not trigger a resend: {quiet:?}"
    );
    drop(conn);

    // The replacement process greets with a new incarnation at cursor
    // 0 — structurally identical to the intact case above. The
    // incarnation mismatch must force a rebase: both grants resent
    // immediately, renumbered from the new peer's cursor.
    let mut conn = accept_and_greet(999);
    let rebased = collect_grants(&mut conn, 2, Duration::from_secs(10));
    assert_eq!(rebased.len(), 2, "rebase resends every in-flight grant");
    let mut seqs = Vec::new();
    let mut leases = Vec::new();
    for frame in &rebased {
        if let LeaseMsg::Grant { seq, lease, .. } = frame.msg {
            seqs.push(seq);
            leases.push(lease);
        }
    }
    seqs.sort_unstable();
    leases.sort_unstable();
    assert_eq!(seqs, vec![0, 1], "resends renumber from the new cursor");
    assert_eq!(leases, vec![0, 1], "no lease lost in the handover");
}

#[test]
fn severed_link_degrades_locally_and_loses_nothing() {
    let leases = 3;
    let visits = 6;
    // Node 0's successor is a dead address: every handoff expires and
    // is reclaimed, so all visits happen locally in degraded mode.
    let nodes = spawn_ring(1, leases, visits, 60, |_, _| "127.0.0.1:9".into());
    let got = await_retired(&nodes, leases, Duration::from_secs(20));
    assert_eq!(got, leases, "a partitioned node still finishes its work");
    assert_no_lease_lost_or_doubled(&nodes, leases);
    let s = nodes[0].stats();
    assert!(s.reclaimed > 0, "handoffs must expire and reclaim: {s:?}");
    assert!(
        s.degraded_entries > 0,
        "degraded admissions are counted: {s:?}"
    );
    assert!(s.degraded_now, "peer never returned, node stays degraded");
}

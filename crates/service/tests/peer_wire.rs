//! In-process ring of [`PeerNode`]s over real TCP: the recovery state
//! machine exercised against loopback sockets, with and without an
//! unreliable link in the middle.

use std::time::{Duration, Instant};

use amf_core::LeaseConfig;
use amf_service::{FaultProxy, FaultProxyConfig, PeerConfig, PeerNode};

fn lease_cfg(expiry_ms: u64) -> LeaseConfig {
    LeaseConfig {
        expiry: Duration::from_millis(expiry_ms),
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
        jitter_seed: 7,
    }
}

/// Spawns `n` nodes, wires the ring `0 → 1 → … → 0`, seeding `leases`
/// at node 0 with `visits` each. `wrap` interposes on each link address
/// (identity for a clean ring, a fault proxy for an unreliable one).
fn spawn_ring(
    n: usize,
    leases: u64,
    visits: u64,
    expiry_ms: u64,
    mut wrap: impl FnMut(usize, String) -> String,
) -> Vec<PeerNode> {
    // Bind every listener first so successor addresses exist, then wire
    // the links.
    let nodes: Vec<PeerNode> = (0..n)
        .map(|i| {
            PeerNode::spawn(PeerConfig {
                node: i as u64,
                seed_leases: if i == 0 { leases } else { 0 },
                visits,
                lease: lease_cfg(expiry_ms),
                ..PeerConfig::default()
            })
            .expect("spawn node")
        })
        .collect();
    let addrs: Vec<String> = nodes.iter().map(|p| p.addr().to_string()).collect();
    for (i, node) in nodes.iter().enumerate() {
        let next = wrap(i, addrs[(i + 1) % n].clone());
        node.set_next(&next);
    }
    nodes
}

fn await_retired(nodes: &[PeerNode], want: u64, deadline: Duration) -> u64 {
    let t0 = Instant::now();
    loop {
        let got: u64 = nodes.iter().map(|n| n.stats().retired).sum();
        if got >= want || t0.elapsed() > deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn assert_no_lease_lost_or_doubled(nodes: &[PeerNode], leases: u64) {
    let mut retired: Vec<u64> = nodes.iter().flat_map(|n| n.retired()).collect();
    retired.sort_unstable();
    let expect: Vec<u64> = (0..leases).collect();
    assert_eq!(retired, expect, "every lease retires exactly once");
}

#[test]
fn clean_ring_circulates_and_retires_every_lease() {
    let leases = 4;
    let visits = 9; // 3 laps of 3 nodes
    let nodes = spawn_ring(3, leases, visits, 200, |_, addr| addr);
    let got = await_retired(&nodes, leases, Duration::from_secs(10));
    assert_eq!(got, leases, "all leases retire");
    assert_no_lease_lost_or_doubled(&nodes, leases);
    let total_delivered: u64 = nodes.iter().map(|n| n.stats().delivered).sum();
    // Every visit after the seeded ones is a delivery.
    assert_eq!(total_delivered, leases * visits - leases);
    for n in &nodes {
        let s = n.stats();
        assert_eq!(s.reclaimed, 0, "no reclaims on a clean ring: {s:?}");
        assert!(!s.degraded_now);
        assert!(s.fast_path_admits > 0, "telemetry row rides the fast lane");
    }
}

#[test]
fn lossy_ring_retransmits_dedups_and_still_loses_nothing() {
    let leases = 3;
    let visits = 9;
    let mut proxies: Vec<FaultProxy> = Vec::new();
    let nodes = spawn_ring(3, leases, visits, 150, |i, addr| {
        let proxy = FaultProxy::spawn(FaultProxyConfig {
            target: addr,
            drop_permille: 100,
            dup_permille: 100,
            max_delay: Duration::from_micros(200),
            seed: 0xC0FFEE + i as u64,
            ..FaultProxyConfig::default()
        })
        .expect("spawn proxy");
        let a = proxy.addr().to_string();
        proxies.push(proxy);
        a
    });
    let got = await_retired(&nodes, leases, Duration::from_secs(30));
    assert_eq!(got, leases, "all leases survive a 10% drop / 10% dup link");
    assert_no_lease_lost_or_doubled(&nodes, leases);
    let dropped: u64 = proxies.iter().map(|p| p.stats().dropped).sum();
    let duplicated: u64 = proxies.iter().map(|p| p.stats().duplicated).sum();
    let retransmits: u64 = nodes.iter().map(|n| n.stats().retransmits).sum();
    let dups_dropped: u64 = nodes.iter().map(|n| n.stats().dup_dropped).sum();
    if dropped > 0 {
        assert!(retransmits > 0, "drops must be answered by retransmits");
    }
    if duplicated > 0 {
        assert!(dups_dropped > 0, "duplicates must be dropped idempotently");
    }
}

#[test]
fn severed_link_degrades_locally_and_loses_nothing() {
    let leases = 3;
    let visits = 6;
    // Node 0's successor is a dead address: every handoff expires and
    // is reclaimed, so all visits happen locally in degraded mode.
    let nodes = spawn_ring(1, leases, visits, 60, |_, _| "127.0.0.1:9".into());
    let got = await_retired(&nodes, leases, Duration::from_secs(20));
    assert_eq!(got, leases, "a partitioned node still finishes its work");
    assert_no_lease_lost_or_doubled(&nodes, leases);
    let s = nodes[0].stats();
    assert!(s.reclaimed > 0, "handoffs must expire and reclaim: {s:?}");
    assert!(
        s.degraded_entries > 0,
        "degraded admissions are counted: {s:?}"
    );
    assert!(s.degraded_now, "peer never returned, node stays degraded");
}

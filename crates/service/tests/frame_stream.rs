//! Chunking fuzz for the sans-io frame decoder: every frame type the
//! wire carries, concatenated into one stream and replayed under
//! adversarial segmentation — split at every byte boundary, fed byte by
//! byte, and chopped into random chunk trains. The decoder must hand
//! back the exact same frame bodies no matter how the bytes arrive,
//! because TCP makes no promises about segment boundaries and both the
//! reactor front and the peer plane feed whatever `read` returns.

use amf_core::lease::LeaseMsg;
use amf_service::codec::{
    encode_hello, encode_peer, encode_request, encode_response, PeerFrame, Request, Response,
    WireStats,
};
use amf_service::{FrameDecoder, FrameEncoder};
use amf_ticketing::{Severity, Ticket};
use proptest::prelude::*;

/// One frame of every kind the protocol can emit, plus the empty-body
/// degenerate. Returned as complete frames (length prefix included).
fn corpus() -> Vec<Vec<u8>> {
    let stats = WireStats {
        opened: 1,
        assigned: 2,
        queued: 3,
        aborts: 4,
        timeouts: 5,
        max_queue_depth: 6,
        panics_caught: 7,
        batched_grants: 8,
        fast_path_admits: 9,
        fast_path_fallbacks: 10,
        open_connections: 11,
        tasks_parked: 12,
    };
    vec![
        encode_request(&Request::Open {
            token: 7,
            id: 42,
            severity: 2,
            summary: "segmented across reads".into(),
        })
        .to_vec(),
        encode_request(&Request::Assign { token: 7 }).to_vec(),
        encode_request(&Request::Stats).to_vec(),
        encode_request(&Request::Shutdown).to_vec(),
        encode_response(&Response::Ok(None)).to_vec(),
        encode_response(&Response::Ok(Some(
            Ticket::new(42, "reply").with_severity(Severity::High),
        )))
        .to_vec(),
        encode_response(&Response::Blocked).to_vec(),
        encode_response(&Response::Aborted("quota: over".into())).to_vec(),
        encode_response(&Response::Err("boom".into())).to_vec(),
        encode_response(&Response::Stats(stats)).to_vec(),
        encode_peer(&PeerFrame {
            node: 3,
            msg: LeaseMsg::Grant {
                seq: 9,
                lease: 1,
                hop: 4,
                visits: 6,
            },
        })
        .to_vec(),
        encode_peer(&PeerFrame {
            node: 3,
            msg: LeaseMsg::Release { seq: 9 },
        })
        .to_vec(),
        encode_peer(&PeerFrame {
            node: 3,
            msg: LeaseMsg::Ack { seq: 9, cursor: 10 },
        })
        .to_vec(),
        encode_hello(2, 0xfeed_beef, 17).to_vec(),
        FrameEncoder::encode(&[]),
    ]
}

/// The frame bodies (prefix stripped) the decoder must reproduce.
fn expected_bodies(frames: &[Vec<u8>]) -> Vec<Vec<u8>> {
    frames.iter().map(|f| f[4..].to_vec()).collect()
}

fn decode_stream(chunks: impl Iterator<Item = Vec<u8>>) -> Vec<Vec<u8>> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    for chunk in chunks {
        dec.feed(&chunk).expect("corpus frames are well-formed");
        while let Some(body) = dec.next_frame() {
            out.push(body);
        }
    }
    out
}

#[test]
fn every_two_chunk_split_reassembles_the_stream() {
    let frames = corpus();
    let expected = expected_bodies(&frames);
    let stream: Vec<u8> = frames.concat();
    for split in 0..=stream.len() {
        let (a, b) = stream.split_at(split);
        let got = decode_stream([a.to_vec(), b.to_vec()].into_iter());
        assert_eq!(got, expected, "split at byte {split}");
    }
}

#[test]
fn byte_at_a_time_reassembles_the_stream() {
    let frames = corpus();
    let expected = expected_bodies(&frames);
    let stream: Vec<u8> = frames.concat();
    let got = decode_stream(stream.iter().map(|b| vec![*b]));
    assert_eq!(got, expected);
}

proptest! {
    /// Random chunk trains: the stream cut into segments whose lengths
    /// cycle through an arbitrary pattern of 1..=33 bytes.
    #[test]
    fn random_chunk_trains_reassemble_the_stream(
        sizes in proptest::collection::vec(1usize..34, 1..24)
    ) {
        let frames = corpus();
        let expected = expected_bodies(&frames);
        let stream: Vec<u8> = frames.concat();
        let mut chunks = Vec::new();
        let mut pos = 0;
        let mut i = 0;
        while pos < stream.len() {
            let take = sizes[i % sizes.len()].min(stream.len() - pos);
            chunks.push(stream[pos..pos + take].to_vec());
            pos += take;
            i += 1;
        }
        let got = decode_stream(chunks.into_iter());
        prop_assert_eq!(got, expected);
    }
}

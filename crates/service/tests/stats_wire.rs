//! Property test for the `Stats` wire format: every combination of
//! counter values round-trips through encode/decode, and the frame
//! layout is derived from the one shared [`STATS_FIELDS`] const — so a
//! counter added to [`WireStats`] without updating the const (or vice
//! versa) fails here, not in production against an old peer.

use amf_service::{Response, WireStats, STATS_FIELDS};
use proptest::prelude::*;

/// The `Stats` frame body is the opcode byte plus exactly
/// `STATS_FIELDS` big-endian `u64`s — no hidden padding, no stray
/// fields.
fn expected_body_len() -> usize {
    1 + STATS_FIELDS * 8
}

proptest! {
    #[test]
    fn stats_reply_round_trips(
        fields in proptest::collection::vec(any::<u64>(), STATS_FIELDS..STATS_FIELDS + 1)
    ) {
        let mut wire = [0u64; STATS_FIELDS];
        wire.copy_from_slice(&fields);
        let stats = WireStats::from_array(wire);

        // from_array/to_array are inverses: no counter is dropped or
        // duplicated between struct and wire order.
        prop_assert_eq!(stats.to_array(), wire);

        let framed = amf_service::codec::encode_response(&Response::Stats(stats));
        let body = &framed[4..];
        prop_assert_eq!(body.len(), expected_body_len());
        let decoded = amf_service::codec::decode_response(body).unwrap();
        prop_assert_eq!(decoded, Response::Stats(stats));
    }
}

/// A truncated reply — one counter short of `STATS_FIELDS` — must be
/// rejected, proving the decoder really demands the full const-derived
/// field count.
#[test]
fn stats_reply_is_strict_about_field_count() {
    let stats = WireStats::from_array([7; STATS_FIELDS]);
    let framed = amf_service::codec::encode_response(&Response::Stats(stats));
    let body = &framed[4..];
    assert_eq!(body.len(), expected_body_len());
    let short = &body[..body.len() - 8];
    assert!(amf_service::codec::decode_response(short).is_err());
    let mut long = body.to_vec();
    long.extend_from_slice(&[0u8; 8]);
    assert!(amf_service::codec::decode_response(&long).is_err());
}

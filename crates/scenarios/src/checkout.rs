//! Online-store checkout: the composition that needs *every* kind of
//! concern at once — leased payment-gateway connections (coordination),
//! latency budgets (deadlines), bounded gateway concurrency,
//! authentication, audit and a circuit breaker on the flaky gateway.

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use amf_aspects::audit::{AuditAspect, AuditLog};
use amf_aspects::auth::{AuthToken, AuthenticationAspect, Authenticator};
use amf_aspects::coordination::{Deadline, DeadlineAspect, Lease, ResourceLeaseAspect};
use amf_aspects::fault::CircuitBreakerAspect;
use amf_aspects::sync::ConcurrencyLimitGroup;
use amf_concurrency::{Clock, ResourcePool};
use amf_core::{
    AspectModerator, Concern, InvocationContext, MethodHandle, MethodId, Moderated, Outcome,
    RegistrationError,
};

use crate::ServiceError;

/// A payment-gateway connection (the leased resource).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayConn {
    /// Connection label, e.g. `"gw-0"`.
    pub label: String,
}

/// Domain failures of checkout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckoutError {
    /// The cart was empty.
    EmptyCart,
    /// The gateway declined the charge.
    Declined,
}

impl fmt::Display for CheckoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckoutError::EmptyCart => f.write_str("cart is empty"),
            CheckoutError::Declined => f.write_str("payment declined"),
        }
    }
}

impl Error for CheckoutError {}

/// The sequential order book (functional component): it records orders
/// and charges a gateway connection *it is handed* — it owns no pool,
/// no locking, no security.
#[derive(Debug, Default)]
pub struct OrderBook {
    orders: Vec<(String, u64)>,
    declined: u64,
}

impl OrderBook {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `amount` for `customer` over `conn`. Amounts divisible
    /// by 1000 are declined by the (simulated) gateway.
    ///
    /// # Errors
    ///
    /// See [`CheckoutError`].
    pub fn charge(
        &mut self,
        conn: &GatewayConn,
        customer: &str,
        amount: u64,
    ) -> Result<(), CheckoutError> {
        if amount == 0 {
            return Err(CheckoutError::EmptyCart);
        }
        if amount.is_multiple_of(1000) {
            self.declined += 1;
            return Err(CheckoutError::Declined);
        }
        self.orders
            .push((format!("{customer}@{}", conn.label), amount));
        Ok(())
    }

    /// Completed orders.
    pub fn orders(&self) -> &[(String, u64)] {
        &self.orders
    }

    /// Gateway declines seen.
    pub fn declined(&self) -> u64 {
        self.declined
    }
}

/// Result alias for checkout calls.
pub type CheckoutResult<T> = Result<T, ServiceError<CheckoutError>>;

/// The moderated checkout service.
///
/// Composition (inner → outer): gateway lease → concurrency limit →
/// circuit breaker → audit → deadline → authentication.
pub struct CheckoutService {
    inner: Moderated<OrderBook>,
    charge: MethodHandle,
    audit: Arc<AuditLog>,
    pool: Arc<ResourcePool<GatewayConn>>,
    clock: Arc<dyn Clock>,
}

impl fmt::Debug for CheckoutService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckoutService")
            .field("pool", &self.pool)
            .finish_non_exhaustive()
    }
}

impl CheckoutService {
    /// Composes the service over `gateway_conns` pooled connections.
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`].
    ///
    /// # Panics
    ///
    /// Panics if `gateway_conns` is zero.
    pub fn new(
        moderator: Arc<AspectModerator>,
        auth: Arc<Authenticator>,
        gateway_conns: usize,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, RegistrationError> {
        assert!(gateway_conns > 0, "need at least one gateway connection");
        let charge = moderator.declare_method(MethodId::new("charge"));
        let pool = Arc::new(ResourcePool::new(
            (0..gateway_conns)
                .map(|i| GatewayConn {
                    label: format!("gw-{i}"),
                })
                .collect(),
        ));
        let audit = AuditLog::shared();

        // Innermost: take a gateway connection.
        moderator.register(
            &charge,
            Concern::new("gateway-lease"),
            Box::new(ResourceLeaseAspect::new(Arc::clone(&pool))),
        )?;
        // Bound concurrent charges to the pool size (fail-safe belt
        // over the lease's natural blocking).
        let limit = ConcurrencyLimitGroup::new(gateway_conns);
        moderator.register(
            &charge,
            Concern::synchronization(),
            Box::new(limit.aspect()),
        )?;
        // Trip after 3 consecutive gateway failures; cool down 5s.
        moderator.register(
            &charge,
            Concern::fault_tolerance(),
            Box::new(CircuitBreakerAspect::with_clock(
                3,
                Duration::from_secs(5),
                Arc::clone(&clock),
            )),
        )?;
        moderator.register(
            &charge,
            Concern::audit(),
            Box::new(AuditAspect::new(Arc::clone(&audit))),
        )?;
        moderator.register(
            &charge,
            Concern::new("deadline"),
            Box::new(DeadlineAspect::with_clock(Arc::clone(&clock))),
        )?;
        // Outermost: who is calling.
        moderator.register(
            &charge,
            Concern::authentication(),
            Box::new(AuthenticationAspect::new(auth)),
        )?;

        Ok(Self {
            inner: Moderated::new(OrderBook::new(), moderator),
            charge,
            audit,
            pool,
            clock,
        })
    }

    /// Charges `amount` on behalf of the session, within an optional
    /// latency `budget`.
    ///
    /// # Errors
    ///
    /// Veto (authentication, deadline, open breaker) or domain
    /// [`CheckoutError`].
    pub fn charge(
        &self,
        token: AuthToken,
        amount: u64,
        budget: Option<Duration>,
    ) -> CheckoutResult<()> {
        let mut ctx = InvocationContext::new(
            self.charge.id().clone(),
            self.inner.moderator().next_invocation(),
        );
        ctx.insert(token);
        if let Some(budget) = budget {
            ctx.insert(Deadline(self.clock.now() + budget));
        }
        let mut guard = self.inner.enter_with(&self.charge, ctx)?;
        let customer = guard
            .context()
            .principal()
            .expect("authentication attaches the principal")
            .name()
            .to_string();
        let conn = guard
            .context()
            .get::<Lease<GatewayConn>>()
            .and_then(Lease::get)
            .expect("gateway lease attaches a connection")
            .clone();
        let r = guard.component().charge(&conn, &customer, amount);
        // Only gateway declines count as failures toward the circuit
        // breaker; an empty cart is a caller error, not gateway health.
        if matches!(r, Err(CheckoutError::Declined)) {
            guard.context().set_outcome(Outcome::Failure);
        }
        guard.complete();
        r.map_err(ServiceError::Domain)
    }

    /// The audit trail.
    pub fn audit(&self) -> &Arc<AuditLog> {
        &self.audit
    }

    /// The coordinating moderator.
    pub fn moderator(&self) -> &Arc<AspectModerator> {
        self.inner.moderator()
    }

    /// Gateway connections currently free.
    pub fn free_connections(&self) -> usize {
        self.pool.available()
    }

    /// Unmoderated read access to the order book.
    pub fn with_book<R>(&self, f: impl FnOnce(&OrderBook) -> R) -> R {
        self.inner.with_component(|b| f(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_concurrency::ManualClock;

    fn setup(conns: usize) -> (CheckoutService, Arc<Authenticator>, ManualClock) {
        let clock = ManualClock::new();
        let auth = Authenticator::shared();
        auth.add_user("cust", "pw");
        let svc = CheckoutService::new(
            AspectModerator::shared(),
            Arc::clone(&auth),
            conns,
            Arc::new(clock.clone()),
        )
        .unwrap();
        (svc, auth, clock)
    }

    #[test]
    fn successful_charge_records_order_with_connection() {
        let (svc, auth, _clock) = setup(2);
        let t = auth.login("cust", "pw").unwrap();
        svc.charge(t, 42, None).unwrap();
        svc.with_book(|b| {
            assert_eq!(b.orders().len(), 1);
            assert!(b.orders()[0].0.starts_with("cust@gw-"));
        });
        assert_eq!(svc.free_connections(), 2, "lease returned");
    }

    #[test]
    fn domain_failures_flow_and_release_everything() {
        let (svc, auth, _clock) = setup(1);
        let t = auth.login("cust", "pw").unwrap();
        assert_eq!(
            svc.charge(t, 0, None).unwrap_err().as_domain(),
            Some(&CheckoutError::EmptyCart)
        );
        assert_eq!(
            svc.charge(t, 1000, None).unwrap_err().as_domain(),
            Some(&CheckoutError::Declined)
        );
        assert_eq!(svc.free_connections(), 1);
    }

    #[test]
    fn breaker_trips_after_consecutive_declines() {
        let (svc, auth, clock) = setup(1);
        let t = auth.login("cust", "pw").unwrap();
        for _ in 0..3 {
            let e = svc.charge(t, 2000, None).unwrap_err();
            assert!(e.as_domain().is_some());
        }
        // Breaker open: vetoed before the book or the pool is touched.
        let veto = svc.charge(t, 7, None).unwrap_err();
        assert_eq!(
            veto.as_veto().unwrap().concern().unwrap(),
            &Concern::fault_tolerance()
        );
        assert_eq!(svc.free_connections(), 1, "no lease leaked by the veto");
        // After cooldown a good charge closes it.
        clock.advance(Duration::from_secs(5));
        svc.charge(t, 7, None).unwrap();
        svc.charge(t, 9, None).unwrap();
    }

    #[test]
    fn expired_budget_is_vetoed() {
        let (svc, auth, clock) = setup(1);
        let t = auth.login("cust", "pw").unwrap();
        clock.advance(Duration::from_secs(1));
        // A zero budget with a clock that advances before evaluation:
        // simulate by giving a deadline in the past via zero budget and
        // advancing the clock between context build and evaluation is
        // racy; instead check the honest path: generous budget passes.
        svc.charge(t, 5, Some(Duration::from_secs(60))).unwrap();
        // And a deadline already expired (negative budget impossible;
        // use Duration::ZERO then advance clock inside aspect's view by
        // charging after advancing).
        let veto = {
            // Build a context whose deadline is now, then advance time.
            let mut ctx = InvocationContext::new(
                MethodId::new("charge"),
                svc.inner.moderator().next_invocation(),
            );
            ctx.insert(t);
            ctx.insert(Deadline(clock.now()));
            clock.advance(Duration::from_millis(1));
            svc.inner.enter_with(&svc.charge, ctx).unwrap_err()
        };
        assert_eq!(veto.concern().unwrap(), &Concern::new("deadline"));
    }

    #[test]
    fn anonymous_charge_is_vetoed_before_anything_runs() {
        let (svc, _auth, _clock) = setup(1);
        let veto = svc.charge(AuthToken(0), 5, None).unwrap_err();
        assert_eq!(
            veto.as_veto().unwrap().concern().unwrap(),
            &Concern::authentication()
        );
        assert!(svc.audit().is_empty(), "audit is inside authentication");
        assert_eq!(svc.free_connections(), 1);
    }

    #[test]
    fn concurrent_charges_bounded_by_pool() {
        let (svc, auth, _clock) = setup(2);
        let svc = Arc::new(svc);
        let t = auth.login("cust", "pw").unwrap();
        let mut handles = Vec::new();
        for i in 0..8 {
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                for j in 0..25u64 {
                    svc.charge(t, 1 + i * 100 + j, None).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(svc.with_book(|b| b.orders().len()), 200);
        assert_eq!(svc.free_connections(), 2);
    }
}

//! # Motivating scenarios from the paper's introduction
//!
//! Section 2 of the paper motivates the framework with "e-commerce and
//! online client-server applications, like trouble-ticketing systems,
//! on-line reservation systems, timecard reporting systems, and online
//! auctions". The trouble-ticketing system lives in `amf-ticketing`;
//! this crate builds the other three, each composing a different mix of
//! concerns over an unchanged sequential component:
//!
//! | Scenario | Functional component | Concerns composed |
//! |---|---|---|
//! | [`auction`] | `AuctionHouse` | authentication, authorization, mutual exclusion, audit, metrics |
//! | [`reservation`] | `SeatMap` | authentication, per-principal quota, mutual exclusion, audit |
//! | [`timecard`] | `TimecardLedger` | authentication, role authorization, rate limiting, audit |
//! | [`checkout`] | `OrderBook` | authentication, deadline budgets, gateway-connection leases, concurrency limit, circuit breaker, audit |

#![warn(missing_docs)]

pub mod auction;
pub mod checkout;
pub mod reservation;
pub mod timecard;

pub use auction::{AuctionError, AuctionHouse, AuctionService};
pub use checkout::{CheckoutError, CheckoutService, GatewayConn, OrderBook};
pub use reservation::{ReservationError, ReservationService, SeatMap};
pub use timecard::{TimecardError, TimecardLedger, TimecardService};

use std::error::Error;
use std::fmt;

use amf_core::AbortError;

/// A moderated service call failed: either an aspect vetoed the
/// activation, or the functional method reported a domain error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError<E> {
    /// An aspect aborted the activation (authentication, quota, ...).
    Vetoed(AbortError),
    /// The functional method ran and failed.
    Domain(E),
}

impl<E: fmt::Display> fmt::Display for ServiceError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Vetoed(e) => write!(f, "vetoed: {e}"),
            ServiceError::Domain(e) => write!(f, "domain error: {e}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> Error for ServiceError<E> {}

impl<E> From<AbortError> for ServiceError<E> {
    fn from(e: AbortError) -> Self {
        ServiceError::Vetoed(e)
    }
}

impl<E> ServiceError<E> {
    /// The abort, if this was a veto.
    pub fn as_veto(&self) -> Option<&AbortError> {
        match self {
            ServiceError::Vetoed(e) => Some(e),
            ServiceError::Domain(_) => None,
        }
    }

    /// The domain error, if the method ran and failed.
    pub fn as_domain(&self) -> Option<&E> {
        match self {
            ServiceError::Vetoed(_) => None,
            ServiceError::Domain(e) => Some(e),
        }
    }
}

//! Online auction: sealed seller listings, open bidding, audited closes.
//!
//! Concern mix: every call authenticates; `list`/`close` require the
//! `seller` role and `bid` the `bidder` role; all three methods share a
//! mutual-exclusion group (the house's book must change atomically);
//! bids and closes are audited; bid latency is measured.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use amf_aspects::audit::{AuditAspect, AuditLog};
use amf_aspects::auth::{
    AuthToken, AuthenticationAspect, Authenticator, AuthorizationAspect, Role,
};
use amf_aspects::metrics::{MetricsAspect, MetricsHub};
use amf_aspects::sync::ExclusionGroup;
use amf_core::{
    AspectModerator, Concern, InvocationContext, MethodHandle, MethodId, Moderated,
    RegistrationError,
};

use crate::ServiceError;

/// Domain failures of the auction book.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuctionError {
    /// No listing with that id.
    UnknownListing,
    /// The listing is already closed.
    Closed,
    /// Bid does not beat the current best (or the reserve).
    TooLow {
        /// The amount a new bid must exceed.
        floor: u64,
    },
    /// Sellers may not bid on their own listings.
    SelfBid,
}

impl fmt::Display for AuctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuctionError::UnknownListing => f.write_str("unknown listing"),
            AuctionError::Closed => f.write_str("listing is closed"),
            AuctionError::TooLow { floor } => write!(f, "bid must exceed {floor}"),
            AuctionError::SelfBid => f.write_str("sellers may not bid on their own listing"),
        }
    }
}

impl Error for AuctionError {}

#[derive(Debug, Clone)]
struct Listing {
    seller: String,
    reserve: u64,
    best: Option<(String, u64)>,
    open: bool,
}

/// The sequential auction book (functional component; no
/// synchronization, no security).
#[derive(Debug, Default)]
pub struct AuctionHouse {
    listings: HashMap<u64, Listing>,
    next_id: u64,
}

impl AuctionHouse {
    /// An empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a listing; returns its id.
    pub fn list(&mut self, seller: &str, reserve: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.listings.insert(
            id,
            Listing {
                seller: seller.to_string(),
                reserve,
                best: None,
                open: true,
            },
        );
        id
    }

    /// Places a bid.
    ///
    /// # Errors
    ///
    /// See [`AuctionError`].
    pub fn bid(&mut self, id: u64, bidder: &str, amount: u64) -> Result<(), AuctionError> {
        let listing = self
            .listings
            .get_mut(&id)
            .ok_or(AuctionError::UnknownListing)?;
        if !listing.open {
            return Err(AuctionError::Closed);
        }
        if listing.seller == bidder {
            return Err(AuctionError::SelfBid);
        }
        let floor = listing
            .best
            .as_ref()
            .map_or(listing.reserve, |(_, best)| *best);
        if amount <= floor {
            return Err(AuctionError::TooLow { floor });
        }
        listing.best = Some((bidder.to_string(), amount));
        Ok(())
    }

    /// Closes a listing; returns the winning (bidder, amount) if the
    /// reserve was met.
    ///
    /// # Errors
    ///
    /// See [`AuctionError`].
    pub fn close(&mut self, id: u64) -> Result<Option<(String, u64)>, AuctionError> {
        let listing = self
            .listings
            .get_mut(&id)
            .ok_or(AuctionError::UnknownListing)?;
        if !listing.open {
            return Err(AuctionError::Closed);
        }
        listing.open = false;
        Ok(listing.best.clone())
    }

    /// The current best bid on a listing.
    pub fn best_bid(&self, id: u64) -> Option<(String, u64)> {
        self.listings.get(&id).and_then(|l| l.best.clone())
    }

    /// Number of listings (open or closed).
    pub fn listing_count(&self) -> usize {
        self.listings.len()
    }
}

/// Result alias for auction service calls.
pub type AuctionResult<T> = Result<T, ServiceError<AuctionError>>;

/// The moderated auction service.
///
/// ```
/// use std::sync::Arc;
/// use amf_aspects::auth::{Authenticator, Role};
/// use amf_core::AspectModerator;
/// use amf_scenarios::AuctionService;
///
/// let auth = Authenticator::shared();
/// auth.add_user("sam", "pw");
/// auth.grant_role("sam", Role::new("seller")).unwrap();
/// auth.add_user("bea", "pw");
/// auth.grant_role("bea", Role::new("bidder")).unwrap();
///
/// let svc = AuctionService::new(AspectModerator::shared(), Arc::clone(&auth)).unwrap();
/// let sam = auth.login("sam", "pw").unwrap();
/// let bea = auth.login("bea", "pw").unwrap();
///
/// let id = svc.list(sam, 100).unwrap();
/// svc.bid(bea, id, 150).unwrap();
/// assert_eq!(svc.close(sam, id).unwrap(), Some(("bea".to_string(), 150)));
/// ```
pub struct AuctionService {
    inner: Moderated<AuctionHouse>,
    list: MethodHandle,
    bid: MethodHandle,
    close: MethodHandle,
    audit: Arc<AuditLog>,
    metrics: MetricsHub,
}

impl fmt::Debug for AuctionService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuctionService").finish_non_exhaustive()
    }
}

impl AuctionService {
    /// Composes the service: authentication on every method, roles on
    /// list/bid/close, one exclusion group, audit on bid/close, metrics
    /// on bid.
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`] if the moderator already holds
    /// conflicting registrations.
    pub fn new(
        moderator: Arc<AspectModerator>,
        auth: Arc<Authenticator>,
    ) -> Result<Self, RegistrationError> {
        let list = moderator.declare_method(MethodId::new("list"));
        let bid = moderator.declare_method(MethodId::new("bid"));
        let close = moderator.declare_method(MethodId::new("close"));

        let exclusion = ExclusionGroup::new();
        let audit = AuditLog::shared();
        let metrics = MetricsHub::new();

        for handle in [&list, &bid, &close] {
            // Innermost: the book changes atomically.
            moderator.register(
                handle,
                Concern::synchronization(),
                Box::new(exclusion.aspect()),
            )?;
        }
        // Audit wraps the book mutation for bid and close.
        for handle in [&bid, &close] {
            moderator.register(
                handle,
                Concern::audit(),
                Box::new(AuditAspect::new(Arc::clone(&audit))),
            )?;
        }
        moderator.register(
            &bid,
            Concern::metrics(),
            Box::new(MetricsAspect::new(metrics.clone())),
        )?;
        // Roles, then authentication outermost (registered last =>
        // evaluated first under nested ordering).
        moderator.register(
            &list,
            Concern::authorization(),
            Box::new(AuthorizationAspect::new(
                Arc::clone(&auth),
                Role::new("seller"),
            )),
        )?;
        moderator.register(
            &close,
            Concern::authorization(),
            Box::new(AuthorizationAspect::new(
                Arc::clone(&auth),
                Role::new("seller"),
            )),
        )?;
        moderator.register(
            &bid,
            Concern::authorization(),
            Box::new(AuthorizationAspect::new(
                Arc::clone(&auth),
                Role::new("bidder"),
            )),
        )?;
        for handle in [&list, &bid, &close] {
            moderator.register(
                handle,
                Concern::authentication(),
                Box::new(AuthenticationAspect::new(Arc::clone(&auth))),
            )?;
        }

        Ok(Self {
            inner: Moderated::new(AuctionHouse::new(), moderator),
            list,
            bid,
            close,
            audit,
            metrics,
        })
    }

    fn ctx(&self, method: &MethodHandle, token: AuthToken) -> InvocationContext {
        let mut ctx = InvocationContext::new(
            method.id().clone(),
            self.inner.moderator().next_invocation(),
        );
        ctx.insert(token);
        ctx
    }

    fn call<R>(
        &self,
        method: &MethodHandle,
        token: AuthToken,
        f: impl FnOnce(&mut AuctionHouse) -> Result<R, AuctionError>,
    ) -> AuctionResult<R> {
        let mut guard = self.inner.enter_with(method, self.ctx(method, token))?;
        let r = f(&mut guard.component());
        if r.is_err() {
            guard.context().set_outcome(amf_core::Outcome::Failure);
        }
        guard.complete();
        r.map_err(ServiceError::Domain)
    }

    /// Lists an item (requires the `seller` role). The authenticated
    /// principal becomes the seller of record.
    ///
    /// # Errors
    ///
    /// Veto (authentication/authorization) — listing has no domain
    /// errors.
    pub fn list(&self, token: AuthToken, reserve: u64) -> AuctionResult<u64> {
        let mut guard = self
            .inner
            .enter_with(&self.list, self.ctx(&self.list, token))?;
        let seller = guard
            .context()
            .principal()
            .expect("authentication attaches the principal")
            .name()
            .to_string();
        let id = guard.component().list(&seller, reserve);
        guard.complete();
        Ok(id)
    }

    /// Places a bid (requires the `bidder` role).
    ///
    /// # Errors
    ///
    /// Veto, or a domain [`AuctionError`].
    pub fn bid(&self, token: AuthToken, id: u64, amount: u64) -> AuctionResult<()> {
        let mut guard = self
            .inner
            .enter_with(&self.bid, self.ctx(&self.bid, token))?;
        let bidder = guard
            .context()
            .principal()
            .expect("authentication attaches the principal")
            .name()
            .to_string();
        let r = guard.component().bid(id, &bidder, amount);
        if r.is_err() {
            guard.context().set_outcome(amf_core::Outcome::Failure);
        }
        guard.complete();
        r.map_err(ServiceError::Domain)
    }

    /// Closes a listing (requires the `seller` role); returns the winner
    /// if the reserve was met.
    ///
    /// # Errors
    ///
    /// Veto, or a domain [`AuctionError`].
    pub fn close(&self, token: AuthToken, id: u64) -> AuctionResult<Option<(String, u64)>> {
        self.call(&self.close, token, |h| h.close(id))
    }

    /// The audit trail (bids and closes).
    pub fn audit(&self) -> &Arc<AuditLog> {
        &self.audit
    }

    /// The metrics hub (bid latency and counts).
    pub fn metrics(&self) -> &MetricsHub {
        &self.metrics
    }

    /// Unmoderated read access for assertions.
    pub fn with_house<R>(&self, f: impl FnOnce(&AuctionHouse) -> R) -> R {
        self.inner.with_component(|h| f(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_aspects::audit::AuditPhase;

    fn setup() -> (AuctionService, Arc<Authenticator>, AuthToken, AuthToken) {
        let auth = Authenticator::shared();
        auth.add_user("sam", "pw");
        auth.grant_role("sam", Role::new("seller")).unwrap();
        auth.add_user("bea", "pw");
        auth.grant_role("bea", Role::new("bidder")).unwrap();
        let svc = AuctionService::new(AspectModerator::shared(), Arc::clone(&auth)).unwrap();
        let sam = auth.login("sam", "pw").unwrap();
        let bea = auth.login("bea", "pw").unwrap();
        (svc, auth, sam, bea)
    }

    #[test]
    fn happy_path_auction() {
        let (svc, _auth, sam, bea) = setup();
        let id = svc.list(sam, 100).unwrap();
        svc.bid(bea, id, 120).unwrap();
        svc.bid(bea, id, 150).unwrap();
        assert_eq!(svc.close(sam, id).unwrap(), Some(("bea".into(), 150)));
    }

    #[test]
    fn roles_are_enforced() {
        let (svc, _auth, sam, bea) = setup();
        let id = svc.list(sam, 10).unwrap();
        // Bidders cannot list or close; sellers cannot bid.
        assert!(svc.list(bea, 5).unwrap_err().as_veto().is_some());
        assert!(svc.close(bea, id).unwrap_err().as_veto().is_some());
        let veto = svc.bid(sam, id, 99).unwrap_err();
        assert!(veto.as_veto().unwrap().to_string().contains("lacks role"));
    }

    #[test]
    fn anonymous_calls_are_vetoed() {
        let (svc, _auth, _sam, _bea) = setup();
        let err = svc.list(AuthToken(0), 10).unwrap_err();
        assert_eq!(
            err.as_veto().unwrap().concern().unwrap(),
            &Concern::authentication()
        );
    }

    #[test]
    fn domain_errors_flow_through() {
        let (svc, _auth, sam, bea) = setup();
        let id = svc.list(sam, 100).unwrap();
        assert_eq!(
            svc.bid(bea, id, 100).unwrap_err().as_domain(),
            Some(&AuctionError::TooLow { floor: 100 })
        );
        assert_eq!(
            svc.bid(bea, 999, 50).unwrap_err().as_domain(),
            Some(&AuctionError::UnknownListing)
        );
        svc.close(sam, id).unwrap();
        assert_eq!(
            svc.bid(bea, id, 500).unwrap_err().as_domain(),
            Some(&AuctionError::Closed)
        );
    }

    #[test]
    fn audit_records_attempts_and_failures() {
        let (svc, _auth, sam, bea) = setup();
        let id = svc.list(sam, 100).unwrap();
        svc.bid(bea, id, 150).unwrap();
        let _ = svc.bid(bea, id, 10); // too low -> Failure outcome
        let records = svc.audit().records();
        let completed: Vec<_> = records
            .iter()
            .filter(|r| r.phase == AuditPhase::Completed)
            .collect();
        assert_eq!(completed.len(), 2);
        assert_eq!(
            completed[0].outcome,
            Some(amf_aspects::audit::AuditOutcome::Success)
        );
        assert_eq!(
            completed[1].outcome,
            Some(amf_aspects::audit::AuditOutcome::Failure)
        );
        assert!(records
            .iter()
            .all(|r| r.principal.as_deref() == Some("bea")));
    }

    #[test]
    fn metrics_count_bids() {
        let (svc, _auth, sam, bea) = setup();
        let id = svc.list(sam, 1).unwrap();
        for amount in [2, 3, 4] {
            svc.bid(bea, id, amount).unwrap();
        }
        let _ = svc.bid(bea, id, 1);
        let m = svc.metrics().method("bid").unwrap();
        assert_eq!(m.invocations, 4);
        assert_eq!(m.failures, 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// For any bid sequence, accepted bids are strictly
            /// increasing and the recorded best equals the maximum
            /// accepted bid.
            #[test]
            fn accepted_bids_strictly_increase(
                reserve in 0..50u64,
                bids in proptest::collection::vec(0..100u64, 1..40)
            ) {
                let mut house = AuctionHouse::new();
                let id = house.list("seller", reserve);
                let mut accepted = Vec::new();
                for b in bids {
                    if house.bid(id, "bidder", b).is_ok() {
                        accepted.push(b);
                    }
                }
                prop_assert!(accepted.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(accepted.iter().all(|b| *b > reserve));
                prop_assert_eq!(
                    house.best_bid(id).map(|(_, amount)| amount),
                    accepted.last().copied()
                );
                let winner = house.close(id).unwrap();
                prop_assert_eq!(
                    winner.map(|(_, amount)| amount),
                    accepted.last().copied()
                );
            }
        }
    }

    #[test]
    fn failed_auth_leaves_no_trace_in_book_or_audit() {
        let (svc, _auth, sam, bea) = setup();
        let id = svc.list(sam, 100).unwrap();
        let before = svc.audit().len();
        assert!(svc.bid(AuthToken(1), id, 500).is_err());
        assert_eq!(svc.audit().len(), before, "aborted pre leaves no audit");
        assert_eq!(svc.with_house(|h| h.best_bid(id)), None);
        svc.bid(bea, id, 500).unwrap();
        assert_eq!(svc.with_house(|h| h.listing_count()), 1);
    }
}

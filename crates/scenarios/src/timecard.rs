//! Timecard reporting: employees submit hours (rate-limited), managers
//! approve them (role-gated), everything audited.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use amf_aspects::audit::{AuditAspect, AuditLog};
use amf_aspects::auth::{
    AuthToken, AuthenticationAspect, Authenticator, AuthorizationAspect, Role,
};
use amf_aspects::sched::{RateLimitAspect, ThrottleMode};
use amf_aspects::sync::ExclusionGroup;
use amf_concurrency::{Clock, RateLimiter, RateLimiterConfig};
use amf_core::{
    AspectModerator, Concern, InvocationContext, MethodHandle, MethodId, Moderated, Outcome,
    RegistrationError,
};

use crate::ServiceError;

/// Domain failures of the timecard ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimecardError {
    /// No entry with that id.
    UnknownEntry,
    /// Entry was already approved.
    AlreadyApproved,
    /// Hours outside (0, 24].
    InvalidHours,
}

impl fmt::Display for TimecardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimecardError::UnknownEntry => f.write_str("unknown entry"),
            TimecardError::AlreadyApproved => f.write_str("entry already approved"),
            TimecardError::InvalidHours => f.write_str("hours must be in (0, 24]"),
        }
    }
}

impl Error for TimecardError {}

/// One submitted timecard line.
#[derive(Debug, Clone, PartialEq)]
pub struct TimecardEntry {
    /// Entry id.
    pub id: u64,
    /// Who worked the hours.
    pub employee: String,
    /// Hours worked.
    pub hours: f64,
    /// Whether a manager approved it.
    pub approved: bool,
}

/// The sequential ledger (functional component).
#[derive(Debug, Default)]
pub struct TimecardLedger {
    entries: Vec<TimecardEntry>,
}

impl TimecardLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits hours for `employee`; returns the entry id.
    ///
    /// # Errors
    ///
    /// [`TimecardError::InvalidHours`].
    pub fn submit(&mut self, employee: &str, hours: f64) -> Result<u64, TimecardError> {
        if !(hours > 0.0 && hours <= 24.0) {
            return Err(TimecardError::InvalidHours);
        }
        let id = self.entries.len() as u64;
        self.entries.push(TimecardEntry {
            id,
            employee: employee.to_string(),
            hours,
            approved: false,
        });
        Ok(id)
    }

    /// Approves an entry.
    ///
    /// # Errors
    ///
    /// See [`TimecardError`].
    pub fn approve(&mut self, id: u64) -> Result<(), TimecardError> {
        let entry = self
            .entries
            .get_mut(usize::try_from(id).map_err(|_| TimecardError::UnknownEntry)?)
            .ok_or(TimecardError::UnknownEntry)?;
        if entry.approved {
            return Err(TimecardError::AlreadyApproved);
        }
        entry.approved = true;
        Ok(())
    }

    /// Total approved hours for an employee.
    pub fn approved_hours(&self, employee: &str) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.approved && e.employee == employee)
            .map(|e| e.hours)
            .sum()
    }

    /// All entries, submission order.
    pub fn entries(&self) -> &[TimecardEntry] {
        &self.entries
    }
}

/// Result alias for timecard service calls.
pub type TimecardResult<T> = Result<T, ServiceError<TimecardError>>;

/// The moderated timecard service.
pub struct TimecardService {
    inner: Moderated<TimecardLedger>,
    submit: MethodHandle,
    approve: MethodHandle,
    audit: Arc<AuditLog>,
}

impl fmt::Debug for TimecardService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimecardService").finish_non_exhaustive()
    }
}

impl TimecardService {
    /// Composes the service: submissions throttled to
    /// `submits_per_second`, approvals restricted to the `manager` role,
    /// both methods authenticated, serialized and audited.
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`].
    pub fn new(
        moderator: Arc<AspectModerator>,
        auth: Arc<Authenticator>,
        submits_per_second: u64,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, RegistrationError> {
        let submit = moderator.declare_method(MethodId::new("submit"));
        let approve = moderator.declare_method(MethodId::new("approve"));

        let exclusion = ExclusionGroup::new();
        let audit = AuditLog::shared();
        let limiter = Arc::new(RateLimiter::new(
            RateLimiterConfig::per_second(submits_per_second),
            clock,
        ));

        for handle in [&submit, &approve] {
            moderator.register(
                handle,
                Concern::synchronization(),
                Box::new(exclusion.aspect()),
            )?;
            moderator.register(
                handle,
                Concern::audit(),
                Box::new(AuditAspect::new(Arc::clone(&audit))),
            )?;
        }
        moderator.register(
            &submit,
            Concern::throttling(),
            Box::new(RateLimitAspect::new(limiter, ThrottleMode::Abort)),
        )?;
        moderator.register(
            &approve,
            Concern::authorization(),
            Box::new(AuthorizationAspect::new(
                Arc::clone(&auth),
                Role::new("manager"),
            )),
        )?;
        for handle in [&submit, &approve] {
            moderator.register(
                handle,
                Concern::authentication(),
                Box::new(AuthenticationAspect::new(Arc::clone(&auth))),
            )?;
        }

        Ok(Self {
            inner: Moderated::new(TimecardLedger::new(), moderator),
            submit,
            approve,
            audit,
        })
    }

    fn enter(
        &self,
        method: &MethodHandle,
        token: AuthToken,
    ) -> Result<amf_core::ActivationGuard<'_, TimecardLedger>, amf_core::AbortError> {
        let mut ctx = InvocationContext::new(
            method.id().clone(),
            self.inner.moderator().next_invocation(),
        );
        ctx.insert(token);
        self.inner.enter_with(method, ctx)
    }

    /// Submits hours for the session's principal.
    ///
    /// # Errors
    ///
    /// Veto (authentication, throttling) or domain [`TimecardError`].
    pub fn submit(&self, token: AuthToken, hours: f64) -> TimecardResult<u64> {
        let mut guard = self.enter(&self.submit, token)?;
        let who = guard
            .context()
            .principal()
            .expect("authentication attaches the principal")
            .name()
            .to_string();
        let r = guard.component().submit(&who, hours);
        if r.is_err() {
            guard.context().set_outcome(Outcome::Failure);
        }
        guard.complete();
        r.map_err(ServiceError::Domain)
    }

    /// Approves an entry (requires the `manager` role).
    ///
    /// # Errors
    ///
    /// Veto (authentication, authorization) or domain [`TimecardError`].
    pub fn approve(&self, token: AuthToken, id: u64) -> TimecardResult<()> {
        let mut guard = self.enter(&self.approve, token)?;
        let r = guard.component().approve(id);
        if r.is_err() {
            guard.context().set_outcome(Outcome::Failure);
        }
        guard.complete();
        r.map_err(ServiceError::Domain)
    }

    /// Total approved hours for an employee (unmoderated query).
    pub fn approved_hours(&self, employee: &str) -> f64 {
        self.inner.with_component(|l| l.approved_hours(employee))
    }

    /// The audit trail.
    pub fn audit(&self) -> &Arc<AuditLog> {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_concurrency::ManualClock;

    fn setup(rate: u64) -> (TimecardService, Arc<Authenticator>, ManualClock) {
        let clock = ManualClock::new();
        let auth = Authenticator::shared();
        auth.add_user("emp", "pw");
        auth.add_user("mgr", "pw");
        auth.grant_role("mgr", Role::new("manager")).unwrap();
        let svc = TimecardService::new(
            AspectModerator::shared(),
            Arc::clone(&auth),
            rate,
            Arc::new(clock.clone()),
        )
        .unwrap();
        (svc, auth, clock)
    }

    #[test]
    fn submit_and_approve_flow() {
        let (svc, auth, _clock) = setup(100);
        let emp = auth.login("emp", "pw").unwrap();
        let mgr = auth.login("mgr", "pw").unwrap();
        let id = svc.submit(emp, 8.0).unwrap();
        svc.approve(mgr, id).unwrap();
        assert_eq!(svc.approved_hours("emp"), 8.0);
    }

    #[test]
    fn non_managers_cannot_approve() {
        let (svc, auth, _clock) = setup(100);
        let emp = auth.login("emp", "pw").unwrap();
        let id = svc.submit(emp, 4.0).unwrap();
        let veto = svc.approve(emp, id).unwrap_err();
        assert_eq!(
            veto.as_veto().unwrap().concern().unwrap(),
            &Concern::authorization()
        );
        assert_eq!(svc.approved_hours("emp"), 0.0);
    }

    #[test]
    fn submissions_are_rate_limited() {
        let (svc, auth, clock) = setup(2);
        let emp = auth.login("emp", "pw").unwrap();
        svc.submit(emp, 1.0).unwrap();
        svc.submit(emp, 1.0).unwrap();
        let veto = svc.submit(emp, 1.0).unwrap_err();
        assert_eq!(
            veto.as_veto().unwrap().concern().unwrap(),
            &Concern::throttling()
        );
        clock.advance(std::time::Duration::from_secs(1));
        svc.submit(emp, 1.0).unwrap();
    }

    #[test]
    fn domain_validation_flows_through() {
        let (svc, auth, _clock) = setup(100);
        let emp = auth.login("emp", "pw").unwrap();
        let mgr = auth.login("mgr", "pw").unwrap();
        assert_eq!(
            svc.submit(emp, 0.0).unwrap_err().as_domain(),
            Some(&TimecardError::InvalidHours)
        );
        assert_eq!(
            svc.approve(mgr, 42).unwrap_err().as_domain(),
            Some(&TimecardError::UnknownEntry)
        );
        let id = svc.submit(emp, 2.0).unwrap();
        svc.approve(mgr, id).unwrap();
        assert_eq!(
            svc.approve(mgr, id).unwrap_err().as_domain(),
            Some(&TimecardError::AlreadyApproved)
        );
    }

    #[test]
    fn audit_separates_principals() {
        let (svc, auth, _clock) = setup(100);
        let emp = auth.login("emp", "pw").unwrap();
        let mgr = auth.login("mgr", "pw").unwrap();
        let id = svc.submit(emp, 2.0).unwrap();
        svc.approve(mgr, id).unwrap();
        assert_eq!(svc.audit().records_for_principal("emp").len(), 2);
        assert_eq!(svc.audit().records_for_principal("mgr").len(), 2);
    }

    #[test]
    fn throttle_does_not_waste_tokens_on_failed_auth() {
        let (svc, auth, _clock) = setup(1);
        // Bad token: authentication (outermost) aborts before throttling.
        for _ in 0..3 {
            assert!(svc.submit(AuthToken(1), 1.0).is_err());
        }
        let emp = auth.login("emp", "pw").unwrap();
        svc.submit(emp, 1.0).unwrap();
    }
}

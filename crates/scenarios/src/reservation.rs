//! Online seat reservation: authenticated callers reserve and cancel
//! seats, with a per-principal quota and a fully serialized seat map.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use amf_aspects::audit::{AuditAspect, AuditLog};
use amf_aspects::auth::{AuthToken, AuthenticationAspect, Authenticator};
use amf_aspects::quota::QuotaAspect;
use amf_aspects::sync::ExclusionGroup;
use amf_core::{
    AspectModerator, Concern, InvocationContext, MethodHandle, MethodId, Moderated, Outcome,
    RegistrationError,
};

use crate::ServiceError;

/// Domain failures of the seat map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReservationError {
    /// Seat number beyond the venue size.
    OutOfRange,
    /// Seat already held by someone.
    Taken {
        /// Who holds it.
        by: String,
    },
    /// Cancel of a seat the caller does not hold.
    NotHeld,
}

impl fmt::Display for ReservationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReservationError::OutOfRange => f.write_str("seat out of range"),
            ReservationError::Taken { by } => write!(f, "seat already taken by {by}"),
            ReservationError::NotHeld => f.write_str("seat not held by caller"),
        }
    }
}

impl Error for ReservationError {}

/// The sequential seat map (functional component).
#[derive(Debug, Clone)]
pub struct SeatMap {
    seats: Vec<Option<String>>,
}

impl SeatMap {
    /// A venue of `seats` empty seats.
    ///
    /// # Panics
    ///
    /// Panics if `seats` is zero.
    pub fn new(seats: usize) -> Self {
        assert!(seats > 0, "venue needs at least one seat");
        Self {
            seats: vec![None; seats],
        }
    }

    /// Reserves `seat` for `who`.
    ///
    /// # Errors
    ///
    /// See [`ReservationError`].
    pub fn reserve(&mut self, seat: usize, who: &str) -> Result<(), ReservationError> {
        match self.seats.get_mut(seat) {
            None => Err(ReservationError::OutOfRange),
            Some(Some(holder)) => Err(ReservationError::Taken { by: holder.clone() }),
            Some(slot) => {
                *slot = Some(who.to_string());
                Ok(())
            }
        }
    }

    /// Cancels `who`'s hold on `seat`.
    ///
    /// # Errors
    ///
    /// See [`ReservationError`].
    pub fn cancel(&mut self, seat: usize, who: &str) -> Result<(), ReservationError> {
        match self.seats.get_mut(seat) {
            None => Err(ReservationError::OutOfRange),
            Some(slot) if slot.as_deref() == Some(who) => {
                *slot = None;
                Ok(())
            }
            Some(_) => Err(ReservationError::NotHeld),
        }
    }

    /// Seats still free.
    pub fn available(&self) -> usize {
        self.seats.iter().filter(|s| s.is_none()).count()
    }

    /// Who holds `seat`, if anyone.
    pub fn holder(&self, seat: usize) -> Option<&str> {
        self.seats.get(seat).and_then(|s| s.as_deref())
    }

    /// Seats held by `who`.
    pub fn held_by(&self, who: &str) -> Vec<usize> {
        self.seats
            .iter()
            .enumerate()
            .filter_map(|(i, s)| (s.as_deref() == Some(who)).then_some(i))
            .collect()
    }
}

/// Result alias for reservation service calls.
pub type ReservationResult<T> = Result<T, ServiceError<ReservationError>>;

/// The moderated reservation service.
///
/// ```
/// use std::sync::Arc;
/// use amf_aspects::auth::Authenticator;
/// use amf_core::AspectModerator;
/// use amf_scenarios::ReservationService;
///
/// let auth = Authenticator::shared();
/// auth.add_user("rae", "pw");
/// let svc = ReservationService::new(AspectModerator::shared(), Arc::clone(&auth),
///                                   100, 4).unwrap();
/// let rae = auth.login("rae", "pw").unwrap();
/// svc.reserve(rae, 17).unwrap();
/// assert_eq!(svc.available(), 99);
/// ```
pub struct ReservationService {
    inner: Moderated<SeatMap>,
    reserve: MethodHandle,
    cancel: MethodHandle,
    audit: Arc<AuditLog>,
}

impl fmt::Debug for ReservationService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReservationService").finish_non_exhaustive()
    }
}

impl ReservationService {
    /// Composes the service over a venue of `seats`, with at most
    /// `quota_per_caller` *reserve* activations per principal.
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`].
    pub fn new(
        moderator: Arc<AspectModerator>,
        auth: Arc<Authenticator>,
        seats: usize,
        quota_per_caller: u64,
    ) -> Result<Self, RegistrationError> {
        let reserve = moderator.declare_method(MethodId::new("reserve"));
        let cancel = moderator.declare_method(MethodId::new("cancel"));

        let exclusion = ExclusionGroup::new();
        let audit = AuditLog::shared();

        for handle in [&reserve, &cancel] {
            moderator.register(
                handle,
                Concern::synchronization(),
                Box::new(exclusion.aspect()),
            )?;
            moderator.register(
                handle,
                Concern::audit(),
                Box::new(AuditAspect::new(Arc::clone(&audit))),
            )?;
        }
        // Quota applies to reservations only.
        moderator.register(
            &reserve,
            Concern::quota(),
            Box::new(QuotaAspect::new(quota_per_caller)),
        )?;
        for handle in [&reserve, &cancel] {
            moderator.register(
                handle,
                Concern::authentication(),
                Box::new(AuthenticationAspect::new(Arc::clone(&auth))),
            )?;
        }

        Ok(Self {
            inner: Moderated::new(SeatMap::new(seats), moderator),
            reserve,
            cancel,
            audit,
        })
    }

    fn call(
        &self,
        method: &MethodHandle,
        token: AuthToken,
        f: impl FnOnce(&mut SeatMap, &str) -> Result<(), ReservationError>,
    ) -> ReservationResult<()> {
        let mut ctx = InvocationContext::new(
            method.id().clone(),
            self.inner.moderator().next_invocation(),
        );
        ctx.insert(token);
        let mut guard = self.inner.enter_with(method, ctx)?;
        let who = guard
            .context()
            .principal()
            .expect("authentication attaches the principal")
            .name()
            .to_string();
        let r = f(&mut guard.component(), &who);
        if r.is_err() {
            guard.context().set_outcome(Outcome::Failure);
        }
        guard.complete();
        r.map_err(ServiceError::Domain)
    }

    /// Reserves a seat for the session's principal.
    ///
    /// # Errors
    ///
    /// Veto (authentication, quota) or domain [`ReservationError`].
    pub fn reserve(&self, token: AuthToken, seat: usize) -> ReservationResult<()> {
        self.call(&self.reserve, token, |m, who| m.reserve(seat, who))
    }

    /// Cancels the principal's hold on a seat.
    ///
    /// # Errors
    ///
    /// Veto (authentication) or domain [`ReservationError`].
    pub fn cancel(&self, token: AuthToken, seat: usize) -> ReservationResult<()> {
        self.call(&self.cancel, token, |m, who| m.cancel(seat, who))
    }

    /// Seats still free (unmoderated query).
    pub fn available(&self) -> usize {
        self.inner.with_component(|m| m.available())
    }

    /// Seats held by a principal (unmoderated query).
    pub fn held_by(&self, who: &str) -> Vec<usize> {
        self.inner.with_component(|m| m.held_by(who))
    }

    /// The audit trail.
    pub fn audit(&self) -> &Arc<AuditLog> {
        &self.audit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(seats: usize, quota: u64) -> (ReservationService, Arc<Authenticator>) {
        let auth = Authenticator::shared();
        auth.add_user("rae", "pw");
        auth.add_user("kit", "pw");
        let svc =
            ReservationService::new(AspectModerator::shared(), Arc::clone(&auth), seats, quota)
                .unwrap();
        (svc, auth)
    }

    #[test]
    fn reserve_and_cancel() {
        let (svc, auth) = setup(10, 5);
        let rae = auth.login("rae", "pw").unwrap();
        svc.reserve(rae, 3).unwrap();
        assert_eq!(svc.held_by("rae"), vec![3]);
        svc.cancel(rae, 3).unwrap();
        assert_eq!(svc.available(), 10);
    }

    #[test]
    fn double_booking_is_domain_error() {
        let (svc, auth) = setup(10, 5);
        let rae = auth.login("rae", "pw").unwrap();
        let kit = auth.login("kit", "pw").unwrap();
        svc.reserve(rae, 3).unwrap();
        assert_eq!(
            svc.reserve(kit, 3).unwrap_err().as_domain(),
            Some(&ReservationError::Taken { by: "rae".into() })
        );
    }

    #[test]
    fn cannot_cancel_someone_elses_seat() {
        let (svc, auth) = setup(10, 5);
        let rae = auth.login("rae", "pw").unwrap();
        let kit = auth.login("kit", "pw").unwrap();
        svc.reserve(rae, 3).unwrap();
        assert_eq!(
            svc.cancel(kit, 3).unwrap_err().as_domain(),
            Some(&ReservationError::NotHeld)
        );
    }

    #[test]
    fn quota_caps_reservations_per_principal() {
        let (svc, auth) = setup(10, 2);
        let rae = auth.login("rae", "pw").unwrap();
        svc.reserve(rae, 0).unwrap();
        svc.reserve(rae, 1).unwrap();
        let veto = svc.reserve(rae, 2).unwrap_err();
        assert_eq!(
            veto.as_veto().unwrap().concern().unwrap(),
            &Concern::quota()
        );
        // Cancel is not quota'd.
        svc.cancel(rae, 0).unwrap();
        // Another principal has an independent budget.
        let kit = auth.login("kit", "pw").unwrap();
        svc.reserve(kit, 5).unwrap();
    }

    #[test]
    fn quota_not_consumed_by_vetoed_attempts() {
        // Quota is registered *inside* authentication under nested
        // ordering, so an unauthenticated call never touches it.
        let (svc, auth) = setup(10, 1);
        for _ in 0..3 {
            assert!(svc.reserve(AuthToken(99), 0).is_err());
        }
        let rae = auth.login("rae", "pw").unwrap();
        svc.reserve(rae, 0).unwrap();
    }

    #[test]
    fn out_of_range_is_domain_error() {
        let (svc, auth) = setup(2, 5);
        let rae = auth.login("rae", "pw").unwrap();
        assert_eq!(
            svc.reserve(rae, 7).unwrap_err().as_domain(),
            Some(&ReservationError::OutOfRange)
        );
    }

    #[test]
    fn audit_covers_both_methods() {
        let (svc, auth) = setup(4, 4);
        let rae = auth.login("rae", "pw").unwrap();
        svc.reserve(rae, 0).unwrap();
        svc.cancel(rae, 0).unwrap();
        assert_eq!(svc.audit().records_for_method("reserve").len(), 2);
        assert_eq!(svc.audit().records_for_method("cancel").len(), 2);
    }

    #[test]
    fn concurrent_reservations_never_double_book() {
        let (svc, auth) = setup(32, 64);
        let svc = Arc::new(svc);
        let mut handles = Vec::new();
        for user in ["rae", "kit"] {
            let token = auth.login(user, "pw").unwrap();
            let svc = Arc::clone(&svc);
            handles.push(std::thread::spawn(move || {
                let mut won = 0;
                for seat in 0..32 {
                    if svc.reserve(token, seat).is_ok() {
                        won += 1;
                    }
                }
                won
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 32, "every seat won exactly once");
        assert_eq!(svc.available(), 0);
    }
}

//! Counting semaphore with RAII permits.

use std::fmt;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A counting semaphore.
///
/// Unlike a [`WaitQueue`](crate::WaitQueue), releases are never lost: a
/// release with no waiters increments the permit count for a future
/// acquirer.
///
/// ```
/// use amf_concurrency::Semaphore;
///
/// let s = Semaphore::new(1);
/// {
///     let _permit = s.acquire();
///     assert_eq!(s.available(), 0);
/// } // permit returned on drop
/// assert_eq!(s.available(), 1);
/// ```
pub struct Semaphore {
    permits: Mutex<usize>,
    cond: Condvar,
}

impl fmt::Debug for Semaphore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Semaphore")
            .field("available", &self.available())
            .finish()
    }
}

/// RAII guard returned by [`Semaphore::acquire`]; returns the permit when
/// dropped.
#[derive(Debug)]
pub struct SemaphorePermit<'a> {
    sem: &'a Semaphore,
    released: bool,
}

impl Drop for SemaphorePermit<'_> {
    fn drop(&mut self) {
        if !self.released {
            self.sem.release();
        }
    }
}

impl SemaphorePermit<'_> {
    /// Forgets the permit without returning it to the semaphore,
    /// permanently lowering capacity. Useful for shutdown protocols.
    pub fn forget(mut self) {
        self.released = true;
    }
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Self {
            permits: Mutex::new(permits),
            cond: Condvar::new(),
        }
    }

    /// Number of currently available permits.
    pub fn available(&self) -> usize {
        *self.permits.lock()
    }

    /// Blocks until a permit is available and takes it.
    pub fn acquire(&self) -> SemaphorePermit<'_> {
        let mut p = self.permits.lock();
        while *p == 0 {
            self.cond.wait(&mut p);
        }
        *p -= 1;
        SemaphorePermit {
            sem: self,
            released: false,
        }
    }

    /// Takes a permit if one is immediately available.
    pub fn try_acquire(&self) -> Option<SemaphorePermit<'_>> {
        let mut p = self.permits.lock();
        if *p == 0 {
            None
        } else {
            *p -= 1;
            Some(SemaphorePermit {
                sem: self,
                released: false,
            })
        }
    }

    /// Blocks up to `timeout` for a permit.
    pub fn acquire_timeout(&self, timeout: Duration) -> Option<SemaphorePermit<'_>> {
        let mut p = self.permits.lock();
        while *p == 0 {
            if self.cond.wait_for(&mut p, timeout).timed_out() && *p == 0 {
                return None;
            }
        }
        *p -= 1;
        Some(SemaphorePermit {
            sem: self,
            released: false,
        })
    }

    /// Adds one permit, waking a waiter if any. Usually called via
    /// [`SemaphorePermit`]'s `Drop`, but exposed for hand-off protocols.
    pub fn release(&self) {
        let mut p = self.permits.lock();
        *p += 1;
        drop(p);
        self.cond.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn acquire_decrements_release_increments() {
        let s = Semaphore::new(2);
        let a = s.acquire();
        assert_eq!(s.available(), 1);
        let b = s.acquire();
        assert_eq!(s.available(), 0);
        drop(a);
        assert_eq!(s.available(), 1);
        drop(b);
        assert_eq!(s.available(), 2);
    }

    #[test]
    fn try_acquire_fails_at_zero() {
        let s = Semaphore::new(1);
        let p = s.try_acquire();
        assert!(p.is_some());
        assert!(s.try_acquire().is_none());
        drop(p);
        assert!(s.try_acquire().is_some());
    }

    #[test]
    fn acquire_timeout_times_out() {
        let s = Semaphore::new(0);
        assert!(s.acquire_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn acquire_timeout_succeeds_after_release() {
        let s = Arc::new(Semaphore::new(0));
        let releaser = Arc::clone(&s);
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            releaser.release();
        });
        assert!(s.acquire_timeout(Duration::from_secs(5)).is_some());
        t.join().unwrap();
    }

    #[test]
    fn release_without_waiters_is_remembered() {
        let s = Semaphore::new(0);
        s.release();
        assert!(s.try_acquire().is_some());
    }

    #[test]
    fn forget_permanently_lowers_capacity() {
        let s = Semaphore::new(1);
        s.acquire().forget();
        assert_eq!(s.available(), 0);
        assert!(s.try_acquire().is_none());
    }

    #[test]
    fn bounds_concurrent_critical_section() {
        let s = Arc::new(Semaphore::new(3));
        let inside = Arc::new(Mutex::new(0_i32));
        let max_seen = Arc::new(Mutex::new(0_i32));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let s = Arc::clone(&s);
            let inside = Arc::clone(&inside);
            let max_seen = Arc::clone(&max_seen);
            handles.push(thread::spawn(move || {
                for _ in 0..50 {
                    let _p = s.acquire();
                    let now = {
                        let mut i = inside.lock();
                        *i += 1;
                        *i
                    };
                    {
                        let mut m = max_seen.lock();
                        *m = (*m).max(now);
                    }
                    thread::yield_now();
                    *inside.lock() -= 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(*max_seen.lock() <= 3);
        assert_eq!(s.available(), 3);
    }
}

//! A pool of reusable resources (connections, buffers, licenses).
//!
//! Non-blocking by design: blocking acquisition is supplied by the
//! framework layer (a resource-lease aspect returns `Block` when the
//! pool is dry and the moderator parks the caller).

use std::fmt;

use parking_lot::Mutex;

/// A bag of interchangeable resources checked out and back in.
///
/// ```
/// use amf_concurrency::ResourcePool;
///
/// let pool = ResourcePool::new(vec!["conn-a", "conn-b"]);
/// let conn = pool.checkout().unwrap();
/// assert_eq!(pool.available(), 1);
/// pool.checkin(conn);
/// assert_eq!(pool.available(), 2);
/// ```
pub struct ResourcePool<T> {
    items: Mutex<Vec<T>>,
    capacity: usize,
}

impl<T> fmt::Debug for ResourcePool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResourcePool")
            .field("available", &self.available())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<T> ResourcePool<T> {
    /// Creates a pool initially holding `items`.
    pub fn new(items: Vec<T>) -> Self {
        let capacity = items.len();
        Self {
            items: Mutex::new(items),
            capacity,
        }
    }

    /// Takes a resource, or `None` if the pool is dry.
    pub fn checkout(&self) -> Option<T> {
        self.items.lock().pop()
    }

    /// Returns a resource to the pool.
    ///
    /// # Panics
    ///
    /// Panics if this would exceed the pool's original capacity (a
    /// double check-in bug).
    pub fn checkin(&self, item: T) {
        let mut items = self.items.lock();
        assert!(
            items.len() < self.capacity,
            "resource pool over-filled: double check-in?"
        );
        items.push(item);
    }

    /// Resources currently available.
    pub fn available(&self) -> usize {
        self.items.lock().len()
    }

    /// The pool's total size (available + checked out).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_and_checkin_roundtrip() {
        let pool = ResourcePool::new(vec![1, 2, 3]);
        let a = pool.checkout().unwrap();
        let b = pool.checkout().unwrap();
        assert_eq!(pool.available(), 1);
        pool.checkin(a);
        pool.checkin(b);
        assert_eq!(pool.available(), 3);
        assert_eq!(pool.capacity(), 3);
    }

    #[test]
    fn dry_pool_returns_none() {
        let pool: ResourcePool<u8> = ResourcePool::new(vec![]);
        assert!(pool.checkout().is_none());
        assert_eq!(pool.capacity(), 0);
    }

    #[test]
    #[should_panic(expected = "over-filled")]
    fn double_checkin_panics() {
        let pool = ResourcePool::new(vec![1]);
        pool.checkin(2);
    }

    #[test]
    fn concurrent_checkouts_never_duplicate() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let pool = Arc::new(ResourcePool::new((0..8).collect::<Vec<u32>>()));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..100 {
                    if let Some(v) = pool.checkout() {
                        seen.push(v);
                        pool.checkin(v);
                    }
                }
                seen
            }));
        }
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        // Every observed value is one of the pool's members.
        let valid: HashSet<u32> = (0..8).collect();
        assert!(all.iter().all(|v| valid.contains(v)));
        assert_eq!(pool.available(), 8);
    }
}

//! Engine-agnostic park/wake abstraction for coordination cells.
//!
//! The moderator's coordination protocol (who may evaluate, in what
//! order, which permits are pending) lives entirely in shared state
//! guarded by a mutex — see [`TicketQueue`](crate::TicketQueue). The
//! only thing a concrete threading engine contributes is the ability to
//! *park* until that state may have changed and to *wake* parked
//! parties. [`GrantSource`] and [`Waiter`] capture exactly that
//! contract, so the protocol code never names a condvar and an async
//! engine can slot in without touching it.
//!
//! # Contract
//!
//! - [`Waiter::park`] releases the given guard, blocks the caller, and
//!   re-acquires the lock before returning. Spurious returns are
//!   allowed: callers must re-check their predicate in a loop.
//! - [`Waiter::park_until`] is `park` with a deadline; it returns
//!   `true` when the deadline elapsed without a wake. A racing wake is
//!   allowed to report either way — callers decide by re-checking
//!   state, not by trusting the flag alone.
//! - [`Waiter::wake_one`]/[`Waiter::wake_all`] are *hints*, not
//!   permits: they mean "re-check", never "proceed". Eligibility is
//!   carried by queue state so wakes landing while no one is parked are
//!   harmless (the state persists; the pulse may be lost).
//! - A waiter handle is shared by everything parking on one waitpoint;
//!   wakes must reach every party parked via the same handle.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, MutexGuard};

/// One waitpoint: a place where callers park while a predicate over
/// mutex-guarded state of type `T` is false, and which wakers pulse
/// when that state changes. See the module docs for the full contract.
pub trait Waiter<T>: Send + Sync {
    /// Atomically releases `guard`'s lock, parks the caller, and
    /// re-acquires the lock before returning. May return spuriously.
    fn park(&self, guard: &mut MutexGuard<'_, T>);

    /// Like [`park`](Self::park) with a deadline. Returns `true` if the
    /// deadline elapsed (a racing wake may report either way — re-check
    /// state).
    fn park_until(&self, guard: &mut MutexGuard<'_, T>, deadline: Instant) -> bool;

    /// Like [`park`](Self::park) with a *relative* timeout; returns
    /// `true` if the timeout elapsed (same racing-wake caveat as
    /// [`park_until`](Self::park_until)). Timed protocol waits go
    /// through this entry point with timeouts derived from a
    /// `Clock`, so an engine whose time is virtual (a deterministic
    /// simulator) can honor them without consulting the OS clock. The
    /// default forwards to `park_until` against wall time.
    fn park_for(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        self.park_until(guard, Instant::now() + timeout)
    }

    /// Wakes at least one party parked on this waitpoint, if any.
    fn wake_one(&self);

    /// Wakes every party parked on this waitpoint.
    fn wake_all(&self);
}

/// Factory for [`Waiter`] waitpoints; one engine serves a whole
/// moderator, one waitpoint serves one coordination waitset.
pub trait GrantSource<T>: Send + Sync {
    /// Creates a fresh, independent waitpoint.
    fn waiter(&self) -> Arc<dyn Waiter<T>>;
}

/// The default engine: OS-thread parking on a `parking_lot` condvar.
#[derive(Debug, Default, Clone, Copy)]
pub struct CondvarEngine;

impl<T> GrantSource<T> for CondvarEngine {
    fn waiter(&self) -> Arc<dyn Waiter<T>> {
        Arc::new(CondvarWaiter::default())
    }
}

/// A condvar-backed waitpoint. The condvar must always be used with the
/// same mutex — guaranteed here because each waitpoint belongs to
/// exactly one cell and only that cell's guard is ever passed in.
#[derive(Debug, Default)]
pub struct CondvarWaiter {
    cond: Condvar,
}

impl<T> Waiter<T> for CondvarWaiter {
    fn park(&self, guard: &mut MutexGuard<'_, T>) {
        self.cond.wait(guard);
    }

    fn park_until(&self, guard: &mut MutexGuard<'_, T>, deadline: Instant) -> bool {
        self.cond.wait_until(guard, deadline).timed_out()
    }

    fn park_for(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        self.cond.wait_for(guard, timeout).timed_out()
    }

    fn wake_one(&self) {
        self.cond.notify_one();
    }

    fn wake_all(&self) {
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn condvar_waiter_parks_and_wakes() {
        let engine = CondvarEngine;
        let waiter: Arc<dyn Waiter<bool>> = GrantSource::<bool>::waiter(&engine);
        let state = Arc::new(Mutex::new(false));
        let woke = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (w, s, k) = (waiter.clone(), state.clone(), woke.clone());
                thread::spawn(move || {
                    let mut g = s.lock();
                    while !*g {
                        w.park(&mut g);
                    }
                    k.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();

        thread::sleep(Duration::from_millis(20));
        *state.lock() = true;
        waiter.wake_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woke.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn park_until_times_out_without_wake() {
        let waiter = CondvarWaiter::default();
        let state = Mutex::new(());
        let mut g = state.lock();
        let deadline = Instant::now() + Duration::from_millis(10);
        assert!(Waiter::<()>::park_until(&waiter, &mut g, deadline));
    }

    #[test]
    fn park_until_reports_wake_before_deadline() {
        let waiter = Arc::new(CondvarWaiter::default());
        let state = Arc::new(Mutex::new(false));
        let (w, s) = (waiter.clone(), state.clone());
        let h = thread::spawn(move || {
            let mut g = s.lock();
            let deadline = Instant::now() + Duration::from_secs(5);
            while !*g {
                if Waiter::<bool>::park_until(&*w, &mut g, deadline) {
                    return true; // timed out — re-check found predicate false
                }
            }
            false
        });
        thread::sleep(Duration::from_millis(20));
        *state.lock() = true;
        Waiter::<bool>::wake_all(&*waiter);
        assert!(!h.join().unwrap(), "woken before the 5s deadline");
    }
}

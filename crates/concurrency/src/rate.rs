//! Token-bucket rate limiter.
//!
//! Substrate for the scheduling/throttling aspects: the paper lists
//! "scheduling" and "throughput" among the interaction concerns that must
//! be separable from functional code.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::clock::Clock;

/// Configuration for a [`RateLimiter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimiterConfig {
    /// Maximum number of stored tokens (burst size).
    pub burst: u64,
    /// Tokens replenished per second.
    pub tokens_per_second: f64,
}

impl RateLimiterConfig {
    /// A limiter allowing `rate` operations per second with a burst of the
    /// same size.
    pub fn per_second(rate: u64) -> Self {
        Self {
            burst: rate.max(1),
            tokens_per_second: rate as f64,
        }
    }
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last_refill: Duration,
}

/// A token bucket: each operation consumes one token; tokens refill at a
/// fixed rate up to a burst cap.
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use amf_concurrency::{ManualClock, RateLimiter, RateLimiterConfig};
///
/// let clock = ManualClock::new();
/// let rl = RateLimiter::new(RateLimiterConfig { burst: 2, tokens_per_second: 1.0 },
///                           Arc::new(clock.clone()));
/// assert!(rl.try_acquire());
/// assert!(rl.try_acquire());
/// assert!(!rl.try_acquire());       // bucket drained
/// clock.advance(Duration::from_secs(1));
/// assert!(rl.try_acquire());        // one token refilled
/// ```
pub struct RateLimiter {
    config: RateLimiterConfig,
    clock: Arc<dyn Clock>,
    state: Mutex<BucketState>,
}

impl fmt::Debug for RateLimiter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RateLimiter")
            .field("config", &self.config)
            .field("available", &self.available())
            .finish()
    }
}

impl RateLimiter {
    /// Creates a full bucket governed by `config`, measuring time with
    /// `clock`.
    pub fn new(config: RateLimiterConfig, clock: Arc<dyn Clock>) -> Self {
        let now = clock.now();
        Self {
            config,
            clock,
            state: Mutex::new(BucketState {
                tokens: config.burst as f64,
                last_refill: now,
            }),
        }
    }

    fn refill(&self, st: &mut BucketState) {
        let now = self.clock.now();
        let elapsed = now.saturating_sub(st.last_refill);
        st.last_refill = now;
        st.tokens = (st.tokens + elapsed.as_secs_f64() * self.config.tokens_per_second)
            .min(self.config.burst as f64);
    }

    /// Consumes a token if available; never blocks.
    pub fn try_acquire(&self) -> bool {
        let mut st = self.state.lock();
        self.refill(&mut st);
        if st.tokens >= 1.0 {
            st.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Returns one token to the bucket (capped at the burst size). Used
    /// when a consumer acquired a token but its operation was rolled
    /// back.
    pub fn deposit(&self) {
        let mut st = self.state.lock();
        self.refill(&mut st);
        st.tokens = (st.tokens + 1.0).min(self.config.burst as f64);
    }

    /// Whole tokens currently available.
    pub fn available(&self) -> u64 {
        let mut st = self.state.lock();
        self.refill(&mut st);
        st.tokens as u64
    }

    /// Time until the next token becomes available, or zero if one is
    /// available now.
    pub fn time_to_next_token(&self) -> Duration {
        let mut st = self.state.lock();
        self.refill(&mut st);
        if st.tokens >= 1.0 {
            Duration::ZERO
        } else {
            let deficit = 1.0 - st.tokens;
            Duration::from_secs_f64(deficit / self.config.tokens_per_second)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn limiter(burst: u64, rate: f64) -> (RateLimiter, ManualClock) {
        let clock = ManualClock::new();
        let rl = RateLimiter::new(
            RateLimiterConfig {
                burst,
                tokens_per_second: rate,
            },
            Arc::new(clock.clone()),
        );
        (rl, clock)
    }

    #[test]
    fn starts_full() {
        let (rl, _c) = limiter(5, 1.0);
        assert_eq!(rl.available(), 5);
    }

    #[test]
    fn drains_and_refills() {
        let (rl, c) = limiter(2, 2.0);
        assert!(rl.try_acquire());
        assert!(rl.try_acquire());
        assert!(!rl.try_acquire());
        c.advance(Duration::from_millis(500)); // one token at 2/s
        assert!(rl.try_acquire());
        assert!(!rl.try_acquire());
    }

    #[test]
    fn refill_caps_at_burst() {
        let (rl, c) = limiter(3, 100.0);
        c.advance(Duration::from_secs(60));
        assert_eq!(rl.available(), 3);
    }

    #[test]
    fn time_to_next_token_is_zero_when_available() {
        let (rl, _c) = limiter(1, 1.0);
        assert_eq!(rl.time_to_next_token(), Duration::ZERO);
    }

    #[test]
    fn time_to_next_token_counts_down() {
        let (rl, c) = limiter(1, 1.0);
        assert!(rl.try_acquire());
        let t0 = rl.time_to_next_token();
        assert!(t0 > Duration::from_millis(900) && t0 <= Duration::from_secs(1));
        c.advance(Duration::from_millis(600));
        let t1 = rl.time_to_next_token();
        assert!(t1 <= Duration::from_millis(400));
    }

    #[test]
    fn per_second_constructor() {
        let cfg = RateLimiterConfig::per_second(10);
        assert_eq!(cfg.burst, 10);
        assert_eq!(cfg.tokens_per_second, 10.0);
        // Degenerate rate of zero still yields a usable burst of one.
        assert_eq!(RateLimiterConfig::per_second(0).burst, 1);
    }
}

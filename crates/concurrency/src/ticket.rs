//! The ticketed-FIFO grant discipline.
//!
//! [`TicketQueue`] is the one ticketed first-in-first-out state machine
//! in the workspace: pure queue *state*, no parking. Callers hold their
//! own lock (a coordination cell's mutex in `amf-core`, the
//! [`WaitQueue`]'s own mutex here) and drive the queue through its
//! transitions; a separate [`Waiter`](crate::Waiter) engine does the
//! actual parking. That split is what lets the same discipline back a
//! blocking condition queue today and an async grant engine later.
//!
//! Wake permits are *state* — pending signals and broadcast sweeps —
//! rather than bare condvar pulses, so a notification landing while a
//! waiter's lock is released (e.g. during the moderator's rollback
//! notification) is retained instead of lost. The wake primitive only
//! says "queue state changed, re-check"; eligibility lives here.
//!
//! # Batched grants
//!
//! Constructed with `batch = true`, the queue *extends* a departing
//! holder's grant to its successor: when a ticket settles and leaves
//! (its activation resumed or aborted) while no other permit is
//! pending, the new queue front receives a one-ticket batched sweep and
//! may evaluate immediately. A waker that freed `k` resources at once
//! thus admits the front-`k` prefix of the queue in one cursor-ordered
//! chain of lock handoffs — each admission settles under the lock the
//! previous holder just released — instead of `k` sequential
//! wake/complete round trips (the capacity-`k` convoy). The chain stops
//! at the first waiter that re-blocks, so over-admission costs exactly
//! one re-check. Order is still strictly ticket order: the extension is
//! a sweep with a cursor, never a free-for-all, which is what preserves
//! no-overtake (model-checked in `amf-verify`, where the
//! `split_batch_overtake` ablation shows what goes wrong without the
//! cursor).
//!
//! [`WaitQueue`]: crate::WaitQueue

use std::collections::VecDeque;

/// How a caller obtained the right to proceed; determines which queue
/// state [`TicketQueue::settle`] consumes when the evaluation settles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Grant {
    /// First evaluation of a caller that found the queue empty — it
    /// holds no ticket yet. Settling consumes nothing.
    First,
    /// The ticket is the cursor of an active sweep (broadcast or
    /// batched extension).
    Sweep,
    /// The ticket is the queue head and a single-waiter signal is
    /// pending.
    Signal,
    /// An out-of-band re-evaluation granted by the caller itself (the
    /// moderator's rollback-recheck backstop). Settling consumes
    /// nothing.
    Backstop,
}

/// An active sweep: every ticket in `cursor..end` gets one evaluation
/// in ticket order; `cursor` is the ticket currently allowed to
/// evaluate. `batched` marks a batched-grant extension (installed by
/// [`TicketQueue::settle`]) as opposed to a broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sweep {
    cursor: u64,
    end: u64,
    batched: bool,
}

/// Ticketed FIFO wait state. All operations must run under the caller's
/// lock — the queue carries no synchronization of its own.
///
/// ```
/// use amf_concurrency::{Grant, TicketQueue};
///
/// let mut q = TicketQueue::new(false);
/// let t0 = q.enqueue();
/// let t1 = q.enqueue();
/// q.wake_one();
/// assert_eq!(q.grant_for(t1), None); // strictly first-parked-first-served
/// assert_eq!(q.grant_for(t0), Some(Grant::Signal));
/// q.settle(t0, Grant::Signal, true);
/// assert_eq!(q.grant_for(t1), None); // the signal died with its grant
/// ```
#[derive(Debug, Default)]
pub struct TicketQueue {
    /// Whether a departing grant extends to the successor (module docs:
    /// batched grants).
    batch: bool,
    /// Next ticket to issue; monotonic per queue.
    next_ticket: u64,
    /// Parked tickets, oldest first. Always sorted ascending: tickets
    /// are issued in order and removals preserve order.
    waiting: VecDeque<u64>,
    /// Pending single-waiter permits: the queue head may evaluate once
    /// per signal. Never exceeds the queue length.
    signals: u64,
    /// Active sweep, if any.
    sweep: Option<Sweep>,
}

impl TicketQueue {
    /// Creates an empty queue. `batch` enables batched grant extension
    /// (module docs); pass `false` for strict one-at-a-time handoffs.
    pub fn new(batch: bool) -> Self {
        Self {
            batch,
            ..Self::default()
        }
    }

    /// Number of tickets currently queued.
    pub fn len(&self) -> usize {
        self.waiting.len()
    }

    /// Whether no ticket is queued.
    pub fn is_empty(&self) -> bool {
        self.waiting.is_empty()
    }

    /// Whether any ticket is queued.
    pub fn has_waiters(&self) -> bool {
        !self.waiting.is_empty()
    }

    /// Whether any unconsumed wake permit exists.
    pub fn has_pending(&self) -> bool {
        self.signals > 0 || self.sweep.is_some()
    }

    /// Issues the next ticket and parks it at the back of the queue.
    pub fn enqueue(&mut self) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.waiting.push_back(ticket);
        ticket
    }

    /// The permit, if any, entitling `ticket` to proceed now.
    pub fn grant_for(&self, ticket: u64) -> Option<Grant> {
        if self.sweep.is_some_and(|s| s.cursor == ticket) {
            return Some(Grant::Sweep);
        }
        if self.signals > 0 && self.waiting.front() == Some(&ticket) {
            return Some(Grant::Signal);
        }
        None
    }

    /// Records one broadcast notification: (re)starts a sweep over
    /// every currently ticketed waiter. A notification with no waiters
    /// is lost (condition-queue semantics), same as a condvar broadcast
    /// with nobody parked.
    ///
    /// Restarting from the head on merge gives already-swept tickets a
    /// harmless extra evaluation; each sweep stays finite because `end`
    /// is fixed at permit time.
    pub fn wake_all(&mut self) {
        if let Some(&front) = self.waiting.front() {
            self.sweep = Some(Sweep {
                cursor: front,
                end: self.next_ticket,
                batched: false,
            });
        }
    }

    /// Records one single-waiter notification: the queue head may
    /// evaluate once more. Lost when no waiter is queued.
    pub fn wake_one(&mut self) {
        if !self.waiting.is_empty() {
            self.signals = (self.signals + 1).min(self.waiting.len() as u64);
        }
    }

    /// Consumes the permit behind a finished evaluation; removes the
    /// ticket when its holder is leaving the queue (resume or abort).
    /// With batching enabled, a departure extends the grant to the new
    /// queue front when no other permit covers it (module docs).
    ///
    /// Returns `true` when the settled grant was a batched extension —
    /// the caller's hook for a `batched_grants` counter.
    pub fn settle(&mut self, ticket: u64, grant: Grant, leaving: bool) -> bool {
        let batched_serve =
            grant == Grant::Sweep && self.sweep.is_some_and(|s| s.cursor == ticket && s.batched);
        match grant {
            Grant::Sweep => self.advance_sweep(ticket),
            Grant::Signal => self.signals -= 1,
            Grant::First | Grant::Backstop => {}
        }
        if leaving {
            self.remove(ticket);
            if self.batch {
                self.extend_to_front();
            }
        }
        batched_serve
    }

    /// Surrenders a cancelled (timed-out) ticket. Pending permits are
    /// *not* discarded: signals re-attach to the new head, an active
    /// sweep advances past the leaver, and a batched extension is
    /// re-issued to the successor, so successors are never stranded by
    /// a cancellation.
    pub fn cancel(&mut self, ticket: u64) {
        self.remove(ticket);
        if self.batch {
            // A cancelled holder of an extension grant consumed no
            // resource; the extension passes on whole.
            self.extend_to_front();
        }
    }

    fn remove(&mut self, ticket: u64) {
        // A departing ticket may hold the sweep cursor under a grant
        // other than `Sweep`: a wake issued *during its own evaluation*
        // (aspect quarantine, deregister from an aspect) starts the
        // sweep at the queue head — the evaluator itself. Pass the
        // cursor on, or the sweep dangles and strands every successor.
        if self.sweep.is_some_and(|s| s.cursor == ticket) {
            self.advance_sweep(ticket);
        }
        if let Some(pos) = self.waiting.iter().position(|&t| t == ticket) {
            self.waiting.remove(pos);
        }
        self.signals = self.signals.min(self.waiting.len() as u64);
        if self.waiting.is_empty() {
            self.sweep = None;
        }
    }

    /// Moves an active sweep's cursor to the next ticketed waiter after
    /// `after`, ending the sweep when none remains below its end.
    fn advance_sweep(&mut self, after: u64) {
        let Some(Sweep { end, batched, .. }) = self.sweep else {
            return;
        };
        self.sweep = self
            .waiting
            .iter()
            .copied()
            .find(|&t| t > after && t < end)
            .map(|next| Sweep {
                cursor: next,
                end,
                batched,
            });
    }

    /// Installs a one-ticket batched sweep at the queue front, unless a
    /// permit already covers someone. Called on departures when
    /// batching is enabled.
    fn extend_to_front(&mut self) {
        if self.sweep.is_none() && self.signals == 0 {
            if let Some(&front) = self.waiting.front() {
                self.sweep = Some(Sweep {
                    cursor: front,
                    end: front + 1,
                    batched: true,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_grants_front_only() {
        let mut q = TicketQueue::new(false);
        let t0 = q.enqueue();
        let t1 = q.enqueue();
        assert_eq!(q.grant_for(t0), None);
        q.wake_one();
        assert_eq!(q.grant_for(t0), Some(Grant::Signal));
        assert_eq!(q.grant_for(t1), None);
        assert!(!q.settle(t0, Grant::Signal, true));
        assert_eq!(q.grant_for(t1), None, "signal died with its grant");
        assert!(q.has_waiters());
    }

    #[test]
    fn signals_cap_at_queue_length() {
        let mut q = TicketQueue::new(false);
        let t0 = q.enqueue();
        q.wake_one();
        q.wake_one();
        q.wake_one();
        q.settle(t0, Grant::Signal, true);
        assert!(!q.has_pending(), "banked signals capped at one waiter");
    }

    #[test]
    fn wake_without_waiters_is_lost() {
        let mut q = TicketQueue::new(false);
        q.wake_one();
        q.wake_all();
        let t0 = q.enqueue();
        assert_eq!(q.grant_for(t0), None);
    }

    #[test]
    fn sweep_serves_in_ticket_order() {
        let mut q = TicketQueue::new(false);
        let t0 = q.enqueue();
        let t1 = q.enqueue();
        let t2 = q.enqueue();
        q.wake_all();
        assert_eq!(q.grant_for(t1), None);
        assert_eq!(q.grant_for(t0), Some(Grant::Sweep));
        q.settle(t0, Grant::Sweep, true);
        assert_eq!(q.grant_for(t2), None);
        assert_eq!(q.grant_for(t1), Some(Grant::Sweep));
        q.settle(t1, Grant::Sweep, false); // re-blocked, stays queued
        assert_eq!(q.grant_for(t2), Some(Grant::Sweep));
        q.settle(t2, Grant::Sweep, false);
        assert!(!q.has_pending(), "sweep ends at its fixed end");
    }

    #[test]
    fn sweep_excludes_tickets_issued_after_the_wake() {
        let mut q = TicketQueue::new(false);
        let t0 = q.enqueue();
        q.wake_all();
        let t1 = q.enqueue();
        q.settle(t0, Grant::Sweep, true);
        assert_eq!(q.grant_for(t1), None, "t1 arrived after the broadcast");
    }

    #[test]
    fn cancel_reattaches_signal_to_successor() {
        let mut q = TicketQueue::new(false);
        let t0 = q.enqueue();
        let t1 = q.enqueue();
        q.wake_one();
        assert_eq!(q.grant_for(t0), Some(Grant::Signal));
        q.cancel(t0);
        assert_eq!(q.grant_for(t1), Some(Grant::Signal));
    }

    #[test]
    fn cancel_passes_sweep_cursor_on() {
        let mut q = TicketQueue::new(false);
        let t0 = q.enqueue();
        let t1 = q.enqueue();
        q.wake_all();
        q.cancel(t0);
        assert_eq!(q.grant_for(t1), Some(Grant::Sweep));
    }

    #[test]
    fn remove_of_non_cursor_holder_passes_head_started_sweep() {
        // A wake issued during the evaluator's own pass (quarantine,
        // deregister) starts the sweep at the head — the evaluator. Its
        // departure under a non-Sweep grant must pass the cursor on.
        let mut q = TicketQueue::new(false);
        let t0 = q.enqueue();
        let t1 = q.enqueue();
        q.wake_one();
        assert_eq!(q.grant_for(t0), Some(Grant::Signal));
        q.wake_all(); // issued mid-evaluation: cursor lands on t0
        q.settle(t0, Grant::Signal, true);
        assert_eq!(q.grant_for(t1), Some(Grant::Sweep));
    }

    #[test]
    fn batched_departure_extends_grant_to_successor() {
        let mut q = TicketQueue::new(true);
        let t0 = q.enqueue();
        let t1 = q.enqueue();
        let t2 = q.enqueue();
        q.wake_one();
        assert!(
            !q.settle(t0, Grant::Signal, true),
            "signal serve, not batched"
        );
        // t1 is admitted without any fresh notification.
        assert_eq!(q.grant_for(t1), Some(Grant::Sweep));
        assert!(q.settle(t1, Grant::Sweep, true), "batched extension serve");
        // The chain keeps extending while holders leave.
        assert_eq!(q.grant_for(t2), Some(Grant::Sweep));
        assert!(
            q.settle(t2, Grant::Sweep, false),
            "counted even on re-block"
        );
        assert!(!q.has_pending(), "a re-block ends the batch");
    }

    #[test]
    fn batched_extension_respects_existing_permits() {
        let mut q = TicketQueue::new(true);
        let t0 = q.enqueue();
        let t1 = q.enqueue();
        q.wake_one();
        q.wake_one();
        q.settle(t0, Grant::Signal, true);
        // A banked signal already covers t1: no extension on top.
        assert_eq!(q.grant_for(t1), Some(Grant::Signal));
        assert!(!q.settle(t1, Grant::Signal, false));
        assert!(!q.has_pending());
    }

    #[test]
    fn batched_extension_survives_cancellation() {
        let mut q = TicketQueue::new(true);
        let t0 = q.enqueue();
        let t1 = q.enqueue();
        let t2 = q.enqueue();
        q.wake_one();
        q.settle(t0, Grant::Signal, true);
        assert_eq!(q.grant_for(t1), Some(Grant::Sweep));
        // t1 times out while holding the extension: it passes on whole.
        q.cancel(t1);
        assert_eq!(q.grant_for(t2), Some(Grant::Sweep));
        assert!(q.settle(t2, Grant::Sweep, true));
        assert!(q.is_empty());
    }

    #[test]
    fn unbatched_departure_does_not_extend() {
        let mut q = TicketQueue::new(false);
        let t0 = q.enqueue();
        let t1 = q.enqueue();
        q.wake_one();
        q.settle(t0, Grant::Signal, true);
        assert_eq!(
            q.grant_for(t1),
            None,
            "one-at-a-time: the successor waits for its own wake"
        );
    }

    #[test]
    fn empty_queue_invariants() {
        let mut q = TicketQueue::new(true);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        let t0 = q.enqueue();
        assert_eq!(q.len(), 1);
        q.wake_all();
        q.settle(t0, Grant::Sweep, true);
        assert!(q.is_empty());
        assert!(!q.has_pending(), "sweep cleared with the last waiter");
    }
}

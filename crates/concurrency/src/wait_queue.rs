//! FIFO wait queue with condition-queue semantics.
//!
//! The paper keeps one waiting queue per participating method
//! (`PutWaitingQueue`, `AssignWaitingQueue`, ...) and `notify()`s it from
//! the post-activation phase. Java's `notify()` wakes an *arbitrary*
//! waiter; [`WaitQueue`] strengthens that to first-in-first-out so that
//! fairness experiments (E5/E6) are deterministic.
//!
//! Like a Java condition queue — and unlike a semaphore — a notification
//! with no waiters is lost.

use std::collections::VecDeque;
use std::fmt;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Outcome of a timed wait on a [`WaitQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitStatus {
    /// The waiter was notified.
    Notified,
    /// The timeout elapsed before a notification arrived.
    TimedOut,
}

#[derive(Debug, Default)]
struct State {
    next_ticket: u64,
    /// Tickets currently parked, oldest first.
    waiting: VecDeque<u64>,
    /// Tickets that have been granted a wakeup but have not yet resumed.
    granted: Vec<u64>,
}

/// A first-in-first-out condition queue.
///
/// ```
/// use std::sync::Arc;
/// use std::thread;
/// use amf_concurrency::WaitQueue;
///
/// let q = Arc::new(WaitQueue::new());
/// let waiter = Arc::clone(&q);
/// let t = thread::spawn(move || waiter.wait());
/// while q.len() == 0 {
///     thread::yield_now();
/// }
/// q.notify_one();
/// t.join().unwrap();
/// ```
#[derive(Default)]
pub struct WaitQueue {
    state: Mutex<State>,
    cond: Condvar,
}

impl fmt::Debug for WaitQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaitQueue")
            .field("waiting", &self.len())
            .finish()
    }
}

impl WaitQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of threads currently parked on the queue.
    pub fn len(&self) -> usize {
        self.state.lock().waiting.len()
    }

    /// Whether no thread is parked on the queue.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parks the calling thread until it is notified.
    ///
    /// Waiters are woken in arrival order by [`WaitQueue::notify_one`].
    pub fn wait(&self) {
        let mut st = self.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting.push_back(ticket);
        loop {
            if let Some(pos) = st.granted.iter().position(|&t| t == ticket) {
                st.granted.swap_remove(pos);
                return;
            }
            self.cond.wait(&mut st);
        }
    }

    /// Parks the calling thread until notified or until `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> WaitStatus {
        let mut st = self.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting.push_back(ticket);
        loop {
            if let Some(pos) = st.granted.iter().position(|&t| t == ticket) {
                st.granted.swap_remove(pos);
                return WaitStatus::Notified;
            }
            if self.cond.wait_for(&mut st, timeout).timed_out() {
                // Re-check: a grant may have raced with the timeout.
                if let Some(pos) = st.granted.iter().position(|&t| t == ticket) {
                    st.granted.swap_remove(pos);
                    return WaitStatus::Notified;
                }
                if let Some(pos) = st.waiting.iter().position(|&t| t == ticket) {
                    st.waiting.remove(pos);
                }
                return WaitStatus::TimedOut;
            }
        }
    }

    /// Wakes the longest-waiting thread, if any. A notification with no
    /// waiters is lost (condition-queue semantics).
    pub fn notify_one(&self) {
        let mut st = self.state.lock();
        if let Some(ticket) = st.waiting.pop_front() {
            st.granted.push(ticket);
            drop(st);
            self.cond.notify_all();
        }
    }

    /// Wakes every parked thread.
    pub fn notify_all(&self) {
        let mut st = self.state.lock();
        let drained: Vec<u64> = st.waiting.drain(..).collect();
        st.granted.extend(drained);
        drop(st);
        self.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    fn spin_until_len(q: &WaitQueue, n: usize) {
        while q.len() < n {
            thread::yield_now();
        }
    }

    #[test]
    fn starts_empty() {
        let q = WaitQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn notify_without_waiters_is_lost() {
        let q = WaitQueue::new();
        q.notify_one();
        // A subsequent wait must NOT consume the earlier notification.
        assert_eq!(
            q.wait_timeout(Duration::from_millis(20)),
            WaitStatus::TimedOut
        );
    }

    #[test]
    fn notify_one_wakes_exactly_one() {
        let q = Arc::new(WaitQueue::new());
        let woken = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            let woken = Arc::clone(&woken);
            handles.push(thread::spawn(move || {
                q.wait();
                woken.fetch_add(1, Ordering::SeqCst);
            }));
        }
        spin_until_len(&q, 3);
        q.notify_one();
        while woken.load(Ordering::SeqCst) < 1 {
            thread::yield_now();
        }
        thread::sleep(Duration::from_millis(20));
        assert_eq!(woken.load(Ordering::SeqCst), 1);
        q.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn wakeups_are_fifo() {
        let q = Arc::new(WaitQueue::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..4 {
            let qi = Arc::clone(&q);
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                // Serialize arrival: thread i waits until i threads are parked.
                spin_until_len(&qi, i);
                qi.wait();
                order.lock().push(i);
            }));
            spin_until_len(&q, i + 1);
        }
        for _ in 0..4 {
            let before = order.lock().len();
            q.notify_one();
            while order.lock().len() == before {
                thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn timed_wait_returns_notified_when_signaled() {
        let q = Arc::new(WaitQueue::new());
        let waiter = Arc::clone(&q);
        let t = thread::spawn(move || waiter.wait_timeout(Duration::from_secs(10)));
        spin_until_len(&q, 1);
        q.notify_one();
        assert_eq!(t.join().unwrap(), WaitStatus::Notified);
    }

    #[test]
    fn timed_wait_times_out() {
        let q = WaitQueue::new();
        assert_eq!(
            q.wait_timeout(Duration::from_millis(10)),
            WaitStatus::TimedOut
        );
        assert!(q.is_empty(), "timed-out waiter must deregister itself");
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let q = Arc::new(WaitQueue::new());
        let mut handles = Vec::new();
        for _ in 0..5 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || q.wait()));
        }
        spin_until_len(&q, 5);
        q.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
    }
}

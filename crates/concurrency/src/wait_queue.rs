//! FIFO wait queue with condition-queue semantics.
//!
//! The paper keeps one waiting queue per participating method
//! (`PutWaitingQueue`, `AssignWaitingQueue`, ...) and `notify()`s it from
//! the post-activation phase. Java's `notify()` wakes an *arbitrary*
//! waiter; [`WaitQueue`] strengthens that to first-in-first-out so that
//! fairness experiments (E5/E6) are deterministic.
//!
//! Like a Java condition queue — and unlike a semaphore — a notification
//! with no waiters is lost.
//!
//! The FIFO discipline itself lives in [`TicketQueue`] (the one
//! ticketed-FIFO state machine in the workspace, shared with the
//! moderator's coordination cells); this type pairs it with a
//! [`CondvarWaiter`] waitpoint and a self-contained blocking API.
//! Because grants are cursor-ordered queue state rather than per-thread
//! tokens, every state change that leaves a permit pending is followed
//! by a broadcast (`handoff`) so the now-eligible ticket re-checks —
//! the pulse says "re-check", the queue says who may go.
//!
//! # Unwind safety
//!
//! The queue is audited for use under panicking callers (the
//! moderator's fault-containment work): `parking_lot` mutexes do not
//! poison, every state transition (`enqueue`, `cancel`, `settle`)
//! happens entirely inside the queue's own lock, and no user-supplied
//! code ever runs while that lock is held — so an aspect panic caught
//! by the moderator can never leave the [`TicketQueue`] half-mutated or
//! strand a waiter here. The protocol-level hazard (a departing ticket
//! that holds a wake permit or sweep cursor) is handled inside
//! [`TicketQueue::cancel`]/[`TicketQueue::settle`].

use std::fmt;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, MutexGuard};

use crate::engine::{CondvarWaiter, Waiter};
use crate::ticket::TicketQueue;

/// Outcome of a timed wait on a [`WaitQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitStatus {
    /// The waiter was notified.
    Notified,
    /// The timeout elapsed before a notification arrived.
    TimedOut,
}

/// A first-in-first-out condition queue.
///
/// ```
/// use std::sync::Arc;
/// use std::thread;
/// use amf_concurrency::WaitQueue;
///
/// let q = Arc::new(WaitQueue::new());
/// let waiter = Arc::clone(&q);
/// let t = thread::spawn(move || waiter.wait());
/// while q.len() == 0 {
///     thread::yield_now();
/// }
/// q.notify_one();
/// t.join().unwrap();
/// ```
#[derive(Default)]
pub struct WaitQueue {
    state: Mutex<TicketQueue>,
    point: CondvarWaiter,
}

impl fmt::Debug for WaitQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WaitQueue")
            .field("waiting", &self.len())
            .finish()
    }
}

impl WaitQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of threads currently parked on the queue.
    pub fn len(&self) -> usize {
        self.state.lock().len()
    }

    /// Whether no thread is parked on the queue.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Releases the lock and broadcasts if a permit is still pending, so
    /// the ticket the permit now covers re-checks. Required because a
    /// sweep cursor advancing onto a parked ticket carries no pulse of
    /// its own.
    fn handoff(&self, st: MutexGuard<'_, TicketQueue>) {
        let pending = st.has_pending();
        drop(st);
        if pending {
            Waiter::<TicketQueue>::wake_all(&self.point);
        }
    }

    /// Parks the calling thread until it is notified.
    ///
    /// Waiters are woken in arrival order by [`WaitQueue::notify_one`].
    pub fn wait(&self) {
        let mut st = self.state.lock();
        let ticket = st.enqueue();
        loop {
            if let Some(grant) = st.grant_for(ticket) {
                st.settle(ticket, grant, true);
                self.handoff(st);
                return;
            }
            self.point.park(&mut st);
        }
    }

    /// Parks the calling thread until notified or until `timeout` elapses.
    ///
    /// The timeout is converted to an absolute deadline up front, so
    /// spurious wakeups and grant re-checks cannot extend the wait past
    /// `timeout` (each `Condvar::wait_for` retry used to restart the
    /// full timeout).
    pub fn wait_timeout(&self, timeout: Duration) -> WaitStatus {
        self.wait_deadline(Instant::now() + timeout)
    }

    /// Parks the calling thread until notified or until `deadline` passes.
    ///
    /// Deadline expiry wins over a racing grant: if `notify_one` selects
    /// this ticket after the deadline has already passed, the waiter
    /// still returns [`WaitStatus::TimedOut`] and the grant is handed to
    /// the next parked ticket instead of being silently consumed — a
    /// cancelled ticket must not strand its successors.
    pub fn wait_deadline(&self, deadline: Instant) -> WaitStatus {
        self.wait_deadline_core(deadline, None)
    }

    /// Implementation of the timed wait with a test-only seam.
    ///
    /// `race_window`, when present, runs with the queue lock released at
    /// the exact point where the waiter has decided to time out but has
    /// not yet surrendered its ticket — the window in which a concurrent
    /// `notify_one` can still select the cancelling ticket. Production
    /// callers pass `None`, which adds no unlock.
    fn wait_deadline_core(&self, deadline: Instant, race_window: Option<&dyn Fn()>) -> WaitStatus {
        let mut st = self.state.lock();
        let ticket = st.enqueue();
        loop {
            if Instant::now() < deadline {
                if let Some(grant) = st.grant_for(ticket) {
                    st.settle(ticket, grant, true);
                    self.handoff(st);
                    return WaitStatus::Notified;
                }
                self.point.park_until(&mut st, deadline);
                continue;
            }
            // Deadline passed: surrender the ticket.
            if let Some(window) = race_window {
                drop(st);
                window();
                st = self.state.lock();
            }
            // `cancel` re-attaches any permit this ticket held — a
            // signal moves to the new head, a sweep cursor passes on —
            // and the handoff broadcast reaches the successor.
            st.cancel(ticket);
            self.handoff(st);
            return WaitStatus::TimedOut;
        }
    }

    /// Wakes the longest-waiting thread, if any. A notification with no
    /// waiters is lost (condition-queue semantics).
    pub fn notify_one(&self) {
        let mut st = self.state.lock();
        st.wake_one();
        self.handoff(st);
    }

    /// Wakes every parked thread.
    pub fn notify_all(&self) {
        let mut st = self.state.lock();
        st.wake_all();
        self.handoff(st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::thread;

    fn spin_until_len(q: &WaitQueue, n: usize) {
        while q.len() < n {
            thread::yield_now();
        }
    }

    #[test]
    fn starts_empty() {
        let q = WaitQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn notify_without_waiters_is_lost() {
        let q = WaitQueue::new();
        q.notify_one();
        // A subsequent wait must NOT consume the earlier notification.
        assert_eq!(
            q.wait_timeout(Duration::from_millis(20)),
            WaitStatus::TimedOut
        );
    }

    #[test]
    fn notify_one_wakes_exactly_one() {
        let q = Arc::new(WaitQueue::new());
        let woken = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            let woken = Arc::clone(&woken);
            handles.push(thread::spawn(move || {
                q.wait();
                woken.fetch_add(1, Ordering::SeqCst);
            }));
        }
        spin_until_len(&q, 3);
        q.notify_one();
        while woken.load(Ordering::SeqCst) < 1 {
            thread::yield_now();
        }
        thread::sleep(Duration::from_millis(20));
        assert_eq!(woken.load(Ordering::SeqCst), 1);
        q.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn wakeups_are_fifo() {
        let q = Arc::new(WaitQueue::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..4 {
            let qi = Arc::clone(&q);
            let order = Arc::clone(&order);
            handles.push(thread::spawn(move || {
                // Serialize arrival: thread i waits until i threads are parked.
                spin_until_len(&qi, i);
                qi.wait();
                order.lock().push(i);
            }));
            spin_until_len(&q, i + 1);
        }
        for _ in 0..4 {
            let before = order.lock().len();
            q.notify_one();
            while order.lock().len() == before {
                thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn timed_wait_returns_notified_when_signaled() {
        let q = Arc::new(WaitQueue::new());
        let waiter = Arc::clone(&q);
        let t = thread::spawn(move || waiter.wait_timeout(Duration::from_secs(10)));
        spin_until_len(&q, 1);
        q.notify_one();
        assert_eq!(t.join().unwrap(), WaitStatus::Notified);
    }

    #[test]
    fn timed_wait_times_out() {
        let q = WaitQueue::new();
        assert_eq!(
            q.wait_timeout(Duration::from_millis(10)),
            WaitStatus::TimedOut
        );
        assert!(q.is_empty(), "timed-out waiter must deregister itself");
    }

    #[test]
    fn cancelled_ticket_hands_grant_to_successor() {
        // Regression: a ticket selected by `notify_one` after its
        // deadline has already passed must hand the grant to the next
        // parked ticket on the way out, not consume it. The race window
        // seam opens the exact gap between "decided to time out" and
        // "surrendered the ticket".
        let q = Arc::new(WaitQueue::new());
        let handle: Mutex<Option<thread::JoinHandle<()>>> = Mutex::new(None);
        let already_expired = Instant::now() - Duration::from_millis(1);
        let status = q.wait_deadline_core(
            already_expired,
            Some(&|| {
                let successor = Arc::clone(&q);
                *handle.lock() = Some(thread::spawn(move || successor.wait()));
                // Successor parks behind the cancelling ticket...
                spin_until_len(&q, 2);
                // ...and the racing notification selects the front
                // ticket — the one that is about to cancel.
                q.notify_one();
            }),
        );
        assert_eq!(status, WaitStatus::TimedOut);
        // The handed-off grant must reach the successor.
        handle.lock().take().unwrap().join().unwrap();
        assert!(q.is_empty());
    }

    #[test]
    fn timed_wait_deadline_is_absolute() {
        // Regression: grants to *earlier* tickets broadcast-wake a timed
        // waiter; each recheck used to restart the full timeout, so
        // steady churn could extend the wait without bound.
        let q = Arc::new(WaitQueue::new());
        let mut ahead = Vec::new();
        for _ in 0..4 {
            let quc = Arc::clone(&q);
            ahead.push(thread::spawn(move || quc.wait()));
        }
        spin_until_len(&q, 4);
        let timed = Arc::clone(&q);
        let t = thread::spawn(move || {
            let start = Instant::now();
            let status = timed.wait_timeout(Duration::from_millis(50));
            (status, start.elapsed())
        });
        spin_until_len(&q, 5);
        // Churn: wake one of the earlier tickets every 15 ms, past the
        // timed waiter's deadline.
        for _ in 0..4 {
            thread::sleep(Duration::from_millis(15));
            q.notify_one();
        }
        let (status, elapsed) = t.join().unwrap();
        assert_eq!(status, WaitStatus::TimedOut);
        assert!(
            elapsed < Duration::from_millis(150),
            "timeout restarted under churn: waited {elapsed:?}"
        );
        for h in ahead {
            h.join().unwrap();
        }
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let q = Arc::new(WaitQueue::new());
        let mut handles = Vec::new();
        for _ in 0..5 {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || q.wait()));
        }
        spin_until_len(&q, 5);
        q.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        assert!(q.is_empty());
    }
}

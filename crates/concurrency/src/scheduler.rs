//! Pending-request scheduler.
//!
//! The paper names *scheduling* as one of the aspectual properties that cut
//! across functional components. This module provides the policy engine a
//! scheduling aspect delegates to: a queue of pending activations drained
//! according to a pluggable [`SchedulerPolicy`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// Ordering policy for draining pending requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerPolicy {
    /// First come, first served.
    #[default]
    Fifo,
    /// Last come, first served (favors fresh work; starves old).
    Lifo,
    /// Highest priority first; FIFO among equals.
    Priority,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry<T> {
    priority: u32,
    seq: u64,
    item: T,
}

impl<T: Eq> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on priority, FIFO (min seq) among equals.
        self.priority
            .cmp(&other.priority)
            .then_with(|| Reverse(self.seq).cmp(&Reverse(other.seq)))
    }
}

impl<T: Eq> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A queue of pending requests drained according to a [`SchedulerPolicy`].
///
/// Not internally synchronized; wrap in a
/// [`Monitor`](crate::Monitor) (or use it from inside an aspect, which
/// already runs under the moderator's lock).
///
/// ```
/// use amf_concurrency::{Scheduler, SchedulerPolicy};
///
/// let mut s = Scheduler::new(SchedulerPolicy::Priority);
/// s.enqueue_with_priority("low", 1);
/// s.enqueue_with_priority("high", 9);
/// assert_eq!(s.dequeue(), Some("high"));
/// assert_eq!(s.dequeue(), Some("low"));
/// ```
pub struct Scheduler<T> {
    policy: SchedulerPolicy,
    fifo: VecDeque<Entry<T>>,
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> fmt::Debug for Scheduler<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("policy", &self.policy)
            .field("len", &self.len())
            .finish()
    }
}

impl<T: Eq> Default for Scheduler<T> {
    fn default() -> Self {
        Self::new(SchedulerPolicy::default())
    }
}

impl<T> Scheduler<T> {
    /// Creates an empty scheduler with the given policy.
    pub fn new(policy: SchedulerPolicy) -> Self {
        Self {
            policy,
            fifo: VecDeque::new(),
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> SchedulerPolicy {
        self.policy
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        match self.policy {
            SchedulerPolicy::Fifo | SchedulerPolicy::Lifo => self.fifo.len(),
            SchedulerPolicy::Priority => self.heap.len(),
        }
    }

    /// Whether no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Eq> Scheduler<T> {
    /// Enqueues with default priority zero.
    pub fn enqueue(&mut self, item: T) {
        self.enqueue_with_priority(item, 0);
    }

    /// Enqueues with an explicit priority (only meaningful under
    /// [`SchedulerPolicy::Priority`]; ignored otherwise).
    pub fn enqueue_with_priority(&mut self, item: T, priority: u32) {
        let entry = Entry {
            priority,
            seq: self.next_seq,
            item,
        };
        self.next_seq += 1;
        match self.policy {
            SchedulerPolicy::Fifo | SchedulerPolicy::Lifo => self.fifo.push_back(entry),
            SchedulerPolicy::Priority => self.heap.push(entry),
        }
    }

    /// The request [`Scheduler::dequeue`] would return next, without
    /// removing it.
    pub fn peek(&self) -> Option<&T> {
        match self.policy {
            SchedulerPolicy::Fifo => self.fifo.front().map(|e| &e.item),
            SchedulerPolicy::Lifo => self.fifo.back().map(|e| &e.item),
            SchedulerPolicy::Priority => self.heap.peek().map(|e| &e.item),
        }
    }

    /// Removes the first pending request matching `pred`, regardless of
    /// policy order; returns whether one was found. Used to cancel a
    /// request that gave up (e.g. a timed-out waiter).
    pub fn cancel(&mut self, pred: impl Fn(&T) -> bool) -> bool
    where
        T: Clone,
    {
        match self.policy {
            SchedulerPolicy::Fifo | SchedulerPolicy::Lifo => {
                if let Some(pos) = self.fifo.iter().position(|e| pred(&e.item)) {
                    self.fifo.remove(pos);
                    return true;
                }
                false
            }
            SchedulerPolicy::Priority => {
                let before = self.heap.len();
                let entries: Vec<Entry<T>> = self.heap.drain().collect();
                let mut removed = false;
                for e in entries {
                    if !removed && pred(&e.item) {
                        removed = true;
                    } else {
                        self.heap.push(e);
                    }
                }
                debug_assert!(self.heap.len() + usize::from(removed) == before);
                removed
            }
        }
    }

    /// Removes and returns the next request under the active policy.
    pub fn dequeue(&mut self) -> Option<T> {
        match self.policy {
            SchedulerPolicy::Fifo => self.fifo.pop_front().map(|e| e.item),
            SchedulerPolicy::Lifo => self.fifo.pop_back().map(|e| e.item),
            SchedulerPolicy::Priority => self.heap.pop().map(|e| e.item),
        }
    }

    /// Drains every pending request in policy order.
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(item) = self.dequeue() {
            out.push(item);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut s = Scheduler::new(SchedulerPolicy::Fifo);
        for i in 0..5 {
            s.enqueue(i);
        }
        assert_eq!(s.drain(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn lifo_reverses_arrival_order() {
        let mut s = Scheduler::new(SchedulerPolicy::Lifo);
        for i in 0..5 {
            s.enqueue(i);
        }
        assert_eq!(s.drain(), vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn priority_orders_by_priority_then_fifo() {
        let mut s = Scheduler::new(SchedulerPolicy::Priority);
        s.enqueue_with_priority("a", 1);
        s.enqueue_with_priority("b", 3);
        s.enqueue_with_priority("c", 3);
        s.enqueue_with_priority("d", 2);
        assert_eq!(s.drain(), vec!["b", "c", "d", "a"]);
    }

    #[test]
    fn len_and_is_empty_track() {
        let mut s = Scheduler::new(SchedulerPolicy::Priority);
        assert!(s.is_empty());
        s.enqueue(1);
        s.enqueue(2);
        assert_eq!(s.len(), 2);
        s.dequeue();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn default_policy_is_fifo() {
        let s: Scheduler<u8> = Scheduler::default();
        assert_eq!(s.policy(), SchedulerPolicy::Fifo);
    }

    #[test]
    fn dequeue_on_empty_is_none() {
        let mut s: Scheduler<u8> = Scheduler::new(SchedulerPolicy::Lifo);
        assert_eq!(s.dequeue(), None);
    }
}

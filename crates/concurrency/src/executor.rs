//! A fixed-size worker thread pool.
//!
//! The network service layer dispatches connection handlers onto this
//! pool instead of spawning one OS thread per accept. Tasks are plain
//! boxed closures drained FIFO; shutdown is cooperative (no new work is
//! accepted, workers drain what was already queued, then exit).

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A fixed set of worker threads executing queued closures.
///
/// ```
/// use amf_concurrency::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(4);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..16 {
///     let hits = Arc::clone(&hits);
///     pool.spawn(move || { hits.fetch_add(1, Ordering::SeqCst); });
/// }
/// pool.shutdown();
/// assert_eq!(hits.load(Ordering::SeqCst), 16);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    size: usize,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.size)
            .field("queued", &self.queued())
            .finish()
    }
}

impl WorkerPool {
    /// Starts `size` worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "worker pool needs at least one thread");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            work_ready: Condvar::new(),
        });
        let workers = (0..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("amf-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
            size,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Tasks waiting for a free worker.
    pub fn queued(&self) -> usize {
        self.shared.state.lock().queue.len()
    }

    /// Enqueues `task`; it runs as soon as a worker is free. Tasks
    /// submitted after [`WorkerPool::shutdown`] are silently dropped.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock();
        if state.shutting_down {
            return;
        }
        state.queue.push_back(Box::new(task));
        drop(state);
        self.shared.work_ready.notify_one();
    }

    /// Stops accepting work and joins every worker. Tasks already
    /// queued still run; only tasks submitted afterwards are dropped.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock();
            state.shutting_down = true;
        }
        self.shared.work_ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                shared.work_ready.wait(&mut state);
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_every_spawned_task() {
        let pool = WorkerPool::new(3);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn long_tasks_overlap_across_workers() {
        let pool = WorkerPool::new(4);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for _ in 0..4 {
            let running = Arc::clone(&running);
            let peak = Arc::clone(&peak);
            pool.spawn(move || {
                let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(50));
                running.fetch_sub(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "tasks should run concurrently, peak was {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn spawn_after_shutdown_is_dropped() {
        let pool = WorkerPool::new(1);
        pool.shutdown();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        pool.spawn(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert_eq!(pool.queued(), 0);
    }
}

//! Time sources.
//!
//! Aspects that reason about time (rate limiting, token expiry, latency
//! metrics) take a [`Clock`] so tests can drive time deterministically with
//! a [`ManualClock`] while production code uses the [`SystemClock`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source measured as a [`Duration`] since an arbitrary
/// epoch fixed at construction.
///
/// Implementations must be monotonic: successive calls to [`Clock::now`]
/// never go backwards.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Time elapsed since this clock's epoch.
    fn now(&self) -> Duration;
}

/// Wall-clock backed [`Clock`] using [`Instant`].
///
/// ```
/// use amf_concurrency::{Clock, SystemClock};
/// let c = SystemClock::new();
/// let a = c.now();
/// let b = c.now();
/// assert!(b >= a);
/// ```
#[derive(Debug, Clone)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// Creates a clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }
}

/// A hand-advanced [`Clock`] for deterministic tests.
///
/// Cloning a `ManualClock` yields a handle to the *same* underlying time, so
/// a test can hold one handle while the system under test holds another.
///
/// ```
/// use std::time::Duration;
/// use amf_concurrency::{Clock, ManualClock};
///
/// let clock = ManualClock::new();
/// let handle = clock.clone();
/// clock.advance(Duration::from_secs(3));
/// assert_eq!(handle.now(), Duration::from_secs(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a manual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta`.
    pub fn advance(&self, delta: Duration) {
        let nanos = u64::try_from(delta.as_nanos()).expect("manual clock overflow");
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute offset from its epoch.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time (clocks are
    /// monotonic).
    pub fn set(&self, at: Duration) {
        let nanos = u64::try_from(at.as_nanos()).expect("manual clock overflow");
        let prev = self.nanos.swap(nanos, Ordering::SeqCst);
        assert!(nanos >= prev, "manual clock moved backwards");
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let c = SystemClock::new();
        let mut prev = c.now();
        for _ in 0..100 {
            let next = c.now();
            assert!(next >= prev);
            prev = next;
        }
    }

    #[test]
    fn manual_clock_starts_at_zero() {
        let c = ManualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::new();
        c.advance(Duration::from_millis(250));
        c.advance(Duration::from_millis(250));
        assert_eq!(c.now(), Duration::from_millis(500));
    }

    #[test]
    fn manual_clock_handles_share_time() {
        let c = ManualClock::new();
        let h = c.clone();
        c.advance(Duration::from_secs(1));
        assert_eq!(h.now(), Duration::from_secs(1));
        h.advance(Duration::from_secs(1));
        assert_eq!(c.now(), Duration::from_secs(2));
    }

    #[test]
    fn manual_clock_set_absolute() {
        let c = ManualClock::new();
        c.set(Duration::from_secs(5));
        assert_eq!(c.now(), Duration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_backwards_set() {
        let c = ManualClock::new();
        c.set(Duration::from_secs(5));
        c.set(Duration::from_secs(4));
    }

    #[test]
    fn clock_is_object_safe() {
        let clocks: Vec<Box<dyn Clock>> =
            vec![Box::new(SystemClock::new()), Box::new(ManualClock::new())];
        for c in &clocks {
            let _ = c.now();
        }
    }
}

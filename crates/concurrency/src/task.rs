//! A task engine: M:N cooperative execution behind the [`GrantSource`] seam.
//!
//! [`TaskEngine`] runs closures ("tasks") on a small pool of worker
//! threads and implements [`GrantSource`]/[`Waiter`] so a moderator can
//! park invocations without pinning one OS thread per caller forever.
//! Rust cannot suspend a native stack, so a parked task does occupy its
//! worker's stack — the engine compensates Go-style: every blocking
//! region (a park, or an explicit [`TaskEngine::block_in_place`]) is
//! bracketed by blocked-worker accounting, and when the runnable worker
//! count drops below the core size while work is queued, a spare worker
//! is spawned (up to a cap). Spare workers retire once the queue drains
//! and the core is covered again. The net effect is that thousands of
//! *idle* connections cost nothing (the readiness front holds them
//! without tasks), while *parked* invocations transiently consume
//! workers that the engine replaces on demand.
//!
//! Timed parks ([`Waiter::park_for`]/[`Waiter::park_until`]) are served
//! by a hashed timer wheel driven off the engine's [`Clock`] seam: each
//! armed park registers a deadline into one of [`WHEEL_SLOTS`] buckets
//! (hashed by deadline tick, keeping per-bucket lists short), and a
//! single driver thread sweeps due buckets once per tick while any
//! timer is armed — and sleeps indefinitely otherwise. Because the
//! driver polls `clock.now()` each tick, a [`ManualClock`] advanced by
//! a test fires timeouts within one wall tick.
//!
//! Lock order (never reversed): coordination-cell mutex → waitpoint
//! queue → park token; coordination-cell mutex → pool.
//!
//! [`ManualClock`]: crate::ManualClock

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::clock::{Clock, SystemClock};
use crate::engine::{GrantSource, Waiter};

/// Number of buckets in the timer wheel. Deadlines hash into a bucket
/// by tick index, so concurrent timed parks spread across buckets and
/// each sweep touches short lists.
pub const WHEEL_SLOTS: usize = 64;

/// Timer wheel granularity. Deadlines are honored to within roughly one
/// tick, which is far below the protocol timeouts (milliseconds to
/// seconds) that flow through [`Waiter::park_for`].
const WHEEL_TICK: Duration = Duration::from_millis(1);

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Mutable pool state behind one mutex: the run queue plus the worker
/// census the handoff policy steers by.
struct PoolState {
    queue: VecDeque<Job>,
    /// Workers currently live (running, waiting for work, or blocked).
    alive: usize,
    /// Workers currently inside a blocking region (parked or offloaded).
    blocked: usize,
    shutdown: bool,
}

impl PoolState {
    fn runnable(&self) -> usize {
        self.alive - self.blocked
    }
}

struct EngineShared {
    pool: Mutex<PoolState>,
    work: Condvar,
    /// Target number of runnable workers; the steady-state pool size.
    core: usize,
    /// Hard cap on live workers, including transiently blocked ones.
    max_workers: usize,
    tasks_parked: AtomicU64,
    tasks_executed: AtomicU64,
    wheel: TimerWheel,
    clock: Arc<dyn Clock>,
    /// Join handles for every spawned worker, collected at shutdown.
    /// Lock order: `pool` may be held while pushing here, never the
    /// reverse.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

thread_local! {
    /// The engine whose worker pool this thread belongs to, if any.
    /// Lets blocking regions distinguish "I am one of this engine's
    /// workers" (do handoff accounting) from a foreign thread parking
    /// through a [`TaskWaiter`] (just block, condvar-style).
    static CURRENT_ENGINE: std::cell::RefCell<Option<Weak<EngineShared>>> =
        const { std::cell::RefCell::new(None) };
}

fn on_engine_worker(shared: &Arc<EngineShared>) -> bool {
    CURRENT_ENGINE.with(|c| {
        c.borrow()
            .as_ref()
            .and_then(Weak::upgrade)
            .is_some_and(|a| Arc::ptr_eq(&a, shared))
    })
}

/// Spawns workers until either the queue's demand is met by runnable
/// workers or the cap is reached. Called with the pool lock held.
fn ensure_capacity(shared: &Arc<EngineShared>, g: &mut PoolState) {
    while !g.shutdown
        && !g.queue.is_empty()
        && g.runnable() < shared.core.min(g.queue.len())
        && g.alive < shared.max_workers
    {
        g.alive += 1;
        let s = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("amf-task-worker".into())
            .spawn(move || worker_loop(s))
            .expect("spawn task worker");
        shared.handles.lock().push(handle);
    }
}

/// Marks this thread blocked (if it is an engine worker) and spawns a
/// replacement when queued work would otherwise starve. Returns whether
/// accounting was entered, for the matching [`exit_blocked`].
fn enter_blocked(shared: &Arc<EngineShared>) -> bool {
    if !on_engine_worker(shared) {
        return false;
    }
    let mut g = shared.pool.lock();
    g.blocked += 1;
    ensure_capacity(shared, &mut g);
    true
}

fn exit_blocked(shared: &EngineShared, entered: bool) {
    if entered {
        shared.pool.lock().blocked -= 1;
    }
}

fn worker_loop(shared: Arc<EngineShared>) {
    CURRENT_ENGINE.with(|c| *c.borrow_mut() = Some(Arc::downgrade(&shared)));
    loop {
        let job = {
            let mut g = shared.pool.lock();
            loop {
                if g.shutdown {
                    g.alive -= 1;
                    return;
                }
                if let Some(job) = g.queue.pop_front() {
                    break job;
                }
                // A spare left over from a blocking storm retires once
                // the queue is dry and the core is covered without it.
                if g.runnable() > shared.core {
                    g.alive -= 1;
                    return;
                }
                shared.work.wait(&mut g);
            }
        };
        shared.tasks_executed.fetch_add(1, Ordering::Relaxed);
        // A panicking task must not silently shrink the pool: contain
        // it here. (The moderator already contains aspect panics, so
        // this is defense in depth for direct `spawn` users.)
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

// ---------------------------------------------------------------------
// Park tokens and waitpoints
// ---------------------------------------------------------------------

#[derive(Default)]
struct ParkFlags {
    woken: bool,
    timed_out: bool,
}

/// One park occasion: fresh per `park` call, single-use. Wakers and the
/// timer wheel race to fire it; whoever flips `woken` first decides how
/// the park reports.
struct ParkToken {
    flags: Mutex<ParkFlags>,
    cv: Condvar,
}

impl ParkToken {
    fn new() -> Self {
        Self {
            flags: Mutex::new(ParkFlags::default()),
            cv: Condvar::new(),
        }
    }

    /// Blocks until fired; returns whether the firing was a timeout.
    fn wait(&self) -> bool {
        let mut g = self.flags.lock();
        while !g.woken {
            self.cv.wait(&mut g);
        }
        g.timed_out
    }

    /// Fires as a wake. Returns `false` if the token already fired (a
    /// timeout won the race), so the waker can spend the wake on the
    /// next parked token instead of losing it.
    fn fire_wake(&self) -> bool {
        let mut g = self.flags.lock();
        if g.woken {
            return false;
        }
        g.woken = true;
        self.cv.notify_one();
        true
    }

    /// Fires as a timeout, unless a wake already won the race.
    fn fire_timeout(&self) {
        let mut g = self.flags.lock();
        if g.woken {
            return;
        }
        g.woken = true;
        g.timed_out = true;
        self.cv.notify_one();
    }
}

/// A [`TaskEngine`] waitpoint: a FIFO of parked tokens. Registration
/// happens while the caller still holds the coordination-cell guard, so
/// a waker holding that same lock can never miss a parker.
struct TaskWaiter {
    shared: Arc<EngineShared>,
    parked: Mutex<VecDeque<Arc<ParkToken>>>,
}

impl TaskWaiter {
    fn park_inner<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Option<Duration>) -> bool {
        let token = Arc::new(ParkToken::new());
        // Register under the cell guard: anyone who observes our state
        // change and wakes (they must hold the cell lock to observe it)
        // is guaranteed to find our token queued.
        self.parked.lock().push_back(Arc::clone(&token));
        if let Some(t) = timeout {
            let deadline = self.shared.clock.now() + t;
            self.shared.wheel.register(deadline, Arc::downgrade(&token));
        }
        self.shared.tasks_parked.fetch_add(1, Ordering::SeqCst);
        let timed_out = MutexGuard::unlocked(guard, || {
            let entered = enter_blocked(&self.shared);
            let timed_out = token.wait();
            exit_blocked(&self.shared, entered);
            timed_out
        });
        self.shared.tasks_parked.fetch_sub(1, Ordering::SeqCst);
        if timed_out {
            // A wake removes the token when it fires it; a timeout
            // leaves it queued, so the parker cleans up here lest a
            // later wake_one be spent skipping corpses.
            let mut q = self.parked.lock();
            if let Some(i) = q.iter().position(|t| Arc::ptr_eq(t, &token)) {
                q.remove(i);
            }
        }
        timed_out
    }
}

impl<T> Waiter<T> for TaskWaiter {
    fn park(&self, guard: &mut MutexGuard<'_, T>) {
        self.park_inner(guard, None);
    }

    fn park_until(&self, guard: &mut MutexGuard<'_, T>, deadline: Instant) -> bool {
        self.park_inner(
            guard,
            Some(deadline.saturating_duration_since(Instant::now())),
        )
    }

    fn park_for(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        self.park_inner(guard, Some(timeout))
    }

    fn wake_one(&self) {
        let mut q = self.parked.lock();
        while let Some(t) = q.pop_front() {
            if t.fire_wake() {
                return;
            }
        }
    }

    fn wake_all(&self) {
        for t in self.parked.lock().drain(..) {
            t.fire_wake();
        }
    }
}

// ---------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------

struct WheelEntry {
    deadline: Duration,
    token: Weak<ParkToken>,
}

/// Hashed timer wheel: deadlines bucket by tick index so each bucket's
/// list stays short. The driver sweeps buckets once per tick while any
/// timer is armed, comparing entry deadlines against `clock.now()`, and
/// sleeps on a condvar when the wheel is empty.
struct TimerWheel {
    slots: Vec<Mutex<Vec<WheelEntry>>>,
    /// Count of live entries; the driver parks indefinitely at zero.
    armed: AtomicUsize,
    gate: Mutex<()>,
    gate_cv: Condvar,
    stop: AtomicBool,
}

impl TimerWheel {
    fn new() -> Self {
        Self {
            slots: (0..WHEEL_SLOTS).map(|_| Mutex::new(Vec::new())).collect(),
            armed: AtomicUsize::new(0),
            gate: Mutex::new(()),
            gate_cv: Condvar::new(),
            stop: AtomicBool::new(false),
        }
    }

    fn slot_of(deadline: Duration) -> usize {
        (deadline.as_nanos() / WHEEL_TICK.as_nanos()) as usize % WHEEL_SLOTS
    }

    fn register(&self, deadline: Duration, token: Weak<ParkToken>) {
        self.slots[Self::slot_of(deadline)]
            .lock()
            .push(WheelEntry { deadline, token });
        self.armed.fetch_add(1, Ordering::SeqCst);
        // Take the gate briefly so a driver between its armed-check and
        // its wait cannot miss this notify.
        drop(self.gate.lock());
        self.gate_cv.notify_one();
    }

    /// One sweep: fires every due entry, prunes dead ones. Returns how
    /// many entries were removed.
    fn sweep(&self, now: Duration) -> usize {
        let mut removed = 0;
        for slot in &self.slots {
            let mut g = slot.lock();
            g.retain(|e| {
                let Some(t) = e.token.upgrade() else {
                    removed += 1;
                    return false;
                };
                if e.deadline <= now {
                    t.fire_timeout();
                    removed += 1;
                    return false;
                }
                true
            });
        }
        removed
    }
}

fn timer_loop(shared: Arc<EngineShared>) {
    let wheel = &shared.wheel;
    loop {
        {
            let mut g = wheel.gate.lock();
            if wheel.stop.load(Ordering::SeqCst) {
                return;
            }
            if wheel.armed.load(Ordering::SeqCst) == 0 {
                wheel.gate_cv.wait(&mut g);
            } else {
                wheel.gate_cv.wait_for(&mut g, WHEEL_TICK);
            }
            if wheel.stop.load(Ordering::SeqCst) {
                return;
            }
        }
        let removed = wheel.sweep(shared.clock.now());
        if removed > 0 {
            wheel.armed.fetch_sub(removed, Ordering::SeqCst);
        }
    }
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// M:N task execution engine; see the module docs for the design.
///
/// ```
/// use amf_concurrency::TaskEngine;
/// use std::sync::mpsc;
///
/// let engine = TaskEngine::new(2);
/// let (tx, rx) = mpsc::channel();
/// engine.spawn(move || tx.send(21 * 2).unwrap());
/// assert_eq!(rx.recv().unwrap(), 42);
/// ```
pub struct TaskEngine {
    shared: Arc<EngineShared>,
    timer: Mutex<Option<JoinHandle<()>>>,
}

impl TaskEngine {
    /// An engine targeting `core` runnable workers (minimum 1), capped
    /// at `8 * core` (at least 32) live workers during blocking storms.
    pub fn new(core: usize) -> Self {
        Self::with_clock(core, Arc::new(SystemClock::new()))
    }

    /// Like [`new`](Self::new) with an explicit time source for timed
    /// parks; tests pass a [`ManualClock`](crate::ManualClock).
    pub fn with_clock(core: usize, clock: Arc<dyn Clock>) -> Self {
        let core = core.max(1);
        let shared = Arc::new(EngineShared {
            pool: Mutex::new(PoolState {
                queue: VecDeque::new(),
                alive: 0,
                blocked: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            core,
            max_workers: (core * 8).max(32),
            tasks_parked: AtomicU64::new(0),
            tasks_executed: AtomicU64::new(0),
            wheel: TimerWheel::new(),
            clock,
            handles: Mutex::new(Vec::new()),
        });
        let timer = {
            let s = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("amf-task-timer".into())
                .spawn(move || timer_loop(s))
                .expect("spawn timer thread")
        };
        Self {
            shared,
            timer: Mutex::new(Some(timer)),
        }
    }

    /// Enqueues a task. Workers are spawned lazily up to the core size;
    /// tasks submitted after [`shutdown`](Self::shutdown) are dropped.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let mut g = self.shared.pool.lock();
        if g.shutdown {
            return;
        }
        g.queue.push_back(Box::new(job));
        ensure_capacity(&self.shared, &mut g);
        drop(g);
        self.shared.work.notify_one();
    }

    /// Runs a blocking closure with blocked-worker accounting, so a
    /// legacy blocking aspect callback (file IO, an external RPC) can't
    /// starve the pool: while `f` blocks, a spare worker covers the
    /// queue. On a thread that is not an engine worker this is just
    /// `f()`.
    pub fn block_in_place<R>(&self, f: impl FnOnce() -> R) -> R {
        let entered = enter_blocked(&self.shared);
        let r = f();
        exit_blocked(&self.shared, entered);
        r
    }

    /// Number of parks currently suspended across all waitpoints.
    pub fn tasks_parked(&self) -> u64 {
        self.shared.tasks_parked.load(Ordering::SeqCst)
    }

    /// Total tasks executed since construction.
    pub fn tasks_executed(&self) -> u64 {
        self.shared.tasks_executed.load(Ordering::Relaxed)
    }

    /// Live worker threads right now (runnable + blocked).
    pub fn workers_alive(&self) -> usize {
        self.shared.pool.lock().alive
    }

    /// Stops accepting work, wakes idle workers, and joins every worker
    /// and the timer thread. Queued-but-unstarted tasks are dropped;
    /// running tasks finish first. Idempotent; also runs on [`Drop`].
    pub fn shutdown(&self) {
        self.shared.pool.lock().shutdown = true;
        self.shared.work.notify_all();
        self.shared.wheel.stop.store(true, Ordering::SeqCst);
        drop(self.shared.wheel.gate.lock());
        self.shared.wheel.gate_cv.notify_all();
        if let Some(t) = self.timer.lock().take() {
            let _ = t.join();
        }
        loop {
            let drained: Vec<_> = self.shared.handles.lock().drain(..).collect();
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
    }
}

impl Drop for TaskEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for TaskEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let g = self.shared.pool.lock();
        f.debug_struct("TaskEngine")
            .field("core", &self.shared.core)
            .field("max_workers", &self.shared.max_workers)
            .field("alive", &g.alive)
            .field("blocked", &g.blocked)
            .field("queued", &g.queue.len())
            .field("tasks_parked", &self.tasks_parked())
            .finish()
    }
}

impl<T> GrantSource<T> for TaskEngine {
    fn waiter(&self) -> Arc<dyn Waiter<T>> {
        Arc::new(TaskWaiter {
            shared: Arc::clone(&self.shared),
            parked: Mutex::new(VecDeque::new()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn tasks_run_and_counter_advances() {
        let engine = TaskEngine::new(2);
        let (tx, rx) = mpsc::channel();
        for i in 0..16 {
            let tx = tx.clone();
            engine.spawn(move || tx.send(i).unwrap());
        }
        let mut got: Vec<i32> = (0..16).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
        assert!(engine.tasks_executed() >= 16);
    }

    #[test]
    fn park_and_wake_through_the_waiter_seam() {
        let engine = Arc::new(TaskEngine::new(2));
        let waiter: Arc<dyn Waiter<bool>> = GrantSource::<bool>::waiter(&*engine);
        let state = Arc::new(Mutex::new(false));
        let woke = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (w, s, k) = (waiter.clone(), state.clone(), woke.clone());
                std::thread::spawn(move || {
                    let mut g = s.lock();
                    while !*g {
                        w.park(&mut g);
                    }
                    k.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();

        while engine.tasks_parked() < 3 {
            std::thread::yield_now();
        }
        *state.lock() = true;
        waiter.wake_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woke.load(Ordering::SeqCst), 3);
        assert_eq!(engine.tasks_parked(), 0);
    }

    #[test]
    fn parked_worker_does_not_starve_the_queue() {
        // One-core engine: a task parks, then a second task (which can
        // only run if a spare worker was spawned) performs the wake.
        let engine = Arc::new(TaskEngine::new(1));
        let waiter: Arc<dyn Waiter<bool>> = GrantSource::<bool>::waiter(&*engine);
        let state = Arc::new(Mutex::new(false));
        let (tx, rx) = mpsc::channel();

        {
            let (w, s, tx) = (waiter.clone(), state.clone(), tx.clone());
            engine.spawn(move || {
                let mut g = s.lock();
                while !*g {
                    w.park(&mut g);
                }
                tx.send("parker").unwrap();
            });
        }
        while engine.tasks_parked() < 1 {
            std::thread::yield_now();
        }
        {
            let (w, s) = (waiter.clone(), state.clone());
            engine.spawn(move || {
                *s.lock() = true;
                w.wake_all();
                tx.send("waker").unwrap();
            });
        }
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, ["parker", "waker"]);
    }

    #[test]
    fn block_in_place_spawns_cover_and_releases_it() {
        let engine = Arc::new(TaskEngine::new(1));
        let (tx, rx) = mpsc::channel();
        let (btx, brx) = mpsc::channel();
        {
            let engine2 = Arc::clone(&engine);
            let tx = tx.clone();
            engine.spawn(move || {
                engine2.block_in_place(|| {
                    // Hold the only core worker hostage until the
                    // second task proves a spare covered the queue.
                    brx.recv().unwrap();
                });
                tx.send("blocker").unwrap();
            });
        }
        engine.spawn(move || tx.send("covered").unwrap());
        assert_eq!(rx.recv().unwrap(), "covered");
        btx.send(()).unwrap();
        assert_eq!(rx.recv().unwrap(), "blocker");
    }

    #[test]
    fn timed_park_fires_via_the_wheel() {
        let engine = TaskEngine::new(1);
        let waiter: Arc<dyn Waiter<()>> = GrantSource::<()>::waiter(&engine);
        let state = Mutex::new(());
        let mut g = state.lock();
        let start = Instant::now();
        assert!(waiter.park_for(&mut g, Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn manual_clock_drives_timed_parks() {
        let clock = Arc::new(ManualClock::new());
        let engine = Arc::new(TaskEngine::with_clock(1, clock.clone()));
        let waiter: Arc<dyn Waiter<()>> = GrantSource::<()>::waiter(&*engine);
        let state = Arc::new(Mutex::new(()));
        let (w, s) = (waiter.clone(), state.clone());
        let h = std::thread::spawn(move || {
            let mut g = s.lock();
            w.park_for(&mut g, Duration::from_secs(3600))
        });
        while engine.tasks_parked() < 1 {
            std::thread::yield_now();
        }
        clock.advance(Duration::from_secs(3601));
        assert!(h.join().unwrap(), "virtual deadline should time out");
    }

    #[test]
    fn wake_one_skips_a_timed_out_token() {
        let engine = Arc::new(TaskEngine::new(2));
        let waiter: Arc<dyn Waiter<bool>> = GrantSource::<bool>::waiter(&*engine);
        let state = Arc::new(Mutex::new(false));

        // First parker times out almost immediately; second parks
        // without a deadline. A single wake_one after the timeout must
        // reach the live parker, not be spent on the corpse.
        let (w, s) = (waiter.clone(), state.clone());
        let timed = std::thread::spawn(move || {
            let mut g = s.lock();
            w.park_for(&mut g, Duration::from_millis(5))
        });
        assert!(timed.join().unwrap());

        let (w, s) = (waiter.clone(), state.clone());
        let live = std::thread::spawn(move || {
            let mut g = s.lock();
            while !*g {
                w.park(&mut g);
            }
        });
        while engine.tasks_parked() < 1 {
            std::thread::yield_now();
        }
        *state.lock() = true;
        waiter.wake_one();
        live.join().unwrap();
    }

    #[test]
    fn shutdown_is_idempotent_and_drops_queued_work() {
        let engine = TaskEngine::new(2);
        engine.spawn(|| {});
        engine.shutdown();
        engine.shutdown();
        engine.spawn(|| panic!("must never run"));
        assert_eq!(engine.workers_alive(), 0);
    }

    #[test]
    fn panicking_task_does_not_kill_the_pool() {
        let engine = TaskEngine::new(1);
        let (tx, rx) = mpsc::channel();
        engine.spawn(|| panic!("contained"));
        engine.spawn(move || tx.send(()).unwrap());
        rx.recv_timeout(Duration::from_secs(5))
            .expect("pool survived the panic");
    }
}

//! Guarded-suspension monitor: the Rust rendering of a Java object with
//! `synchronized` methods and `wait()`/`notify()`.
//!
//! The paper's moderator is "synchronized" on per-method wait queues; this
//! type packages the `Mutex` + `Condvar` pair those idioms need.

use std::fmt;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, MutexGuard};

/// A mutex-protected value with an attached condition variable, supporting
/// the guarded-suspension idiom (`wait` until a predicate over the state
/// holds).
///
/// ```
/// use amf_concurrency::Monitor;
///
/// let m = Monitor::new(vec![1, 2, 3]);
/// let len = m.with(|v| v.len());
/// assert_eq!(len, 3);
/// ```
pub struct Monitor<T> {
    state: Mutex<T>,
    cond: Condvar,
}

impl<T: fmt::Debug> fmt::Debug for Monitor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.state.try_lock() {
            Some(guard) => f.debug_struct("Monitor").field("state", &*guard).finish(),
            None => f
                .debug_struct("Monitor")
                .field("state", &"<locked>")
                .finish(),
        }
    }
}

impl<T: Default> Default for Monitor<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T> Monitor<T> {
    /// Creates a monitor protecting `value`.
    pub fn new(value: T) -> Self {
        Self {
            state: Mutex::new(value),
            cond: Condvar::new(),
        }
    }

    /// Runs `f` with the state locked and returns its result.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.state.lock();
        f(&mut guard)
    }

    /// Locks the state and returns the raw guard, for multi-step critical
    /// sections that also need [`Monitor::wait_on`].
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.state.lock()
    }

    /// Blocks until `pred` holds, then runs `f` under the lock.
    ///
    /// Wakes up whenever another thread calls [`Monitor::notify_all`] (or
    /// [`Monitor::notify_one`]) and re-checks the predicate, so spurious
    /// wakeups are harmless.
    pub fn when<R>(&self, mut pred: impl FnMut(&T) -> bool, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.state.lock();
        while !pred(&guard) {
            self.cond.wait(&mut guard);
        }
        f(&mut guard)
    }

    /// Like [`Monitor::when`] but gives up after `timeout`, returning
    /// `None` if the predicate never held.
    pub fn when_timeout<R>(
        &self,
        mut pred: impl FnMut(&T) -> bool,
        timeout: Duration,
        f: impl FnOnce(&mut T) -> R,
    ) -> Option<R> {
        let mut guard = self.state.lock();
        while !pred(&guard) {
            if self.cond.wait_for(&mut guard, timeout).timed_out() && !pred(&guard) {
                return None;
            }
        }
        Some(f(&mut guard))
    }

    /// Waits on the monitor's condition with a caller-held guard. Returns
    /// the guard so the critical section can continue.
    ///
    /// The guard must have come from [`Monitor::lock`] on this same
    /// monitor.
    pub fn wait_on<'a>(&self, guard: &mut MutexGuard<'a, T>) {
        self.cond.wait(guard);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.cond.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.cond.notify_all();
    }

    /// Consumes the monitor and returns the inner value.
    pub fn into_inner(self) -> T {
        self.state.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn with_returns_closure_result() {
        let m = Monitor::new(41);
        assert_eq!(m.with(|v| *v + 1), 42);
    }

    #[test]
    fn when_blocks_until_predicate() {
        let m = Arc::new(Monitor::new(0_u32));
        let setter = Arc::clone(&m);
        let t = thread::spawn(move || {
            setter.with(|v| *v = 7);
            setter.notify_all();
        });
        let seen = m.when(|v| *v == 7, |v| *v);
        assert_eq!(seen, 7);
        t.join().unwrap();
    }

    #[test]
    fn when_timeout_times_out() {
        let m = Monitor::new(false);
        let r = m.when_timeout(|v| *v, Duration::from_millis(20), |_| ());
        assert!(r.is_none());
    }

    #[test]
    fn when_timeout_succeeds_if_predicate_already_true() {
        let m = Monitor::new(true);
        let r = m.when_timeout(|v| *v, Duration::from_millis(20), |_| "ok");
        assert_eq!(r, Some("ok"));
    }

    #[test]
    fn notify_one_wakes_a_waiter() {
        let m = Arc::new(Monitor::new(0_u32));
        let waiter = Arc::clone(&m);
        let t = thread::spawn(move || waiter.when(|v| *v > 0, |v| *v));
        // Let the waiter park, then update and signal.
        thread::sleep(Duration::from_millis(10));
        m.with(|v| *v = 5);
        m.notify_one();
        assert_eq!(t.join().unwrap(), 5);
    }

    #[test]
    fn into_inner_returns_state() {
        let m = Monitor::new(String::from("x"));
        assert_eq!(m.into_inner(), "x");
    }

    #[test]
    fn default_constructs_default_state() {
        let m: Monitor<Vec<u8>> = Monitor::default();
        assert!(m.with(|v| v.is_empty()));
    }

    #[test]
    fn debug_does_not_deadlock_under_lock() {
        let m = Monitor::new(1);
        let _g = m.lock();
        let s = format!("{m:?}");
        assert!(s.contains("<locked>"));
    }

    #[test]
    fn many_threads_increment_safely() {
        let m = Arc::new(Monitor::new(0_u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = Arc::clone(&m);
            handles.push(thread::spawn(move || {
                for _ in 0..1000 {
                    m.with(|v| *v += 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.with(|v| *v), 8000);
    }
}

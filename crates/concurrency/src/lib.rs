//! Concurrency substrate for the Aspect Moderator framework.
//!
//! The ICDCS 2001 paper assumes the Java concurrency model: every object is
//! a monitor with `synchronized` blocks, `wait()` and `notify()`. This crate
//! provides the equivalent primitives for Rust, built on [`parking_lot`],
//! plus the auxiliary machinery the aspect library and the benchmark
//! harness need (ring buffers, schedulers, rate limiters, virtual clocks).
//!
//! Nothing in this crate knows about aspects; it is the layer *below* the
//! framework, usable on its own.
//!
//! # Quick tour
//!
//! ```
//! use amf_concurrency::{Monitor, Semaphore, RingBuffer};
//!
//! // A guarded-suspension monitor, the paper's wait/notify idiom.
//! let m = Monitor::new(0_u32);
//! m.with(|v| *v += 1);
//! assert_eq!(m.with(|v| *v), 1);
//!
//! // A counting semaphore.
//! let s = Semaphore::new(2);
//! let _p = s.acquire();
//!
//! // A plain ring buffer (synchronization supplied externally, e.g. by
//! // synchronization aspects).
//! let mut rb = RingBuffer::with_capacity(4);
//! rb.push_back("ticket").unwrap();
//! assert_eq!(rb.pop_front(), Some("ticket"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod engine;
pub mod executor;
pub mod latch;
pub mod monitor;
pub mod pool;
pub mod rate;
pub mod ring;
pub mod scheduler;
pub mod semaphore;
pub mod task;
pub mod ticket;
pub mod wait_queue;

pub use clock::{Clock, ManualClock, SystemClock};
pub use engine::{CondvarEngine, CondvarWaiter, GrantSource, Waiter};
pub use executor::WorkerPool;
pub use latch::CountdownLatch;
pub use monitor::Monitor;
pub use pool::ResourcePool;
pub use rate::{RateLimiter, RateLimiterConfig};
pub use ring::{RingBuffer, RingFullError, SyncRingBuffer};
pub use scheduler::{Scheduler, SchedulerPolicy};
pub use semaphore::{Semaphore, SemaphorePermit};
pub use task::TaskEngine;
pub use ticket::{Grant, TicketQueue};
pub use wait_queue::{WaitQueue, WaitStatus};

//! Countdown latch for test and benchmark rendezvous.

use std::fmt;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// A one-shot barrier: threads [`CountdownLatch::wait`] until the count
/// reaches zero via [`CountdownLatch::count_down`].
///
/// ```
/// use std::sync::Arc;
/// use std::thread;
/// use amf_concurrency::CountdownLatch;
///
/// let latch = Arc::new(CountdownLatch::new(2));
/// let mut handles = Vec::new();
/// for _ in 0..2 {
///     let latch = Arc::clone(&latch);
///     handles.push(thread::spawn(move || latch.count_down()));
/// }
/// latch.wait();
/// for h in handles { h.join().unwrap(); }
/// assert_eq!(latch.count(), 0);
/// ```
pub struct CountdownLatch {
    count: Mutex<usize>,
    cond: Condvar,
}

impl fmt::Debug for CountdownLatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CountdownLatch")
            .field("count", &self.count())
            .finish()
    }
}

impl CountdownLatch {
    /// Creates a latch that opens after `count` calls to
    /// [`CountdownLatch::count_down`].
    pub fn new(count: usize) -> Self {
        Self {
            count: Mutex::new(count),
            cond: Condvar::new(),
        }
    }

    /// Remaining count.
    pub fn count(&self) -> usize {
        *self.count.lock()
    }

    /// Decrements the count; at zero, releases all waiters. Further calls
    /// are no-ops.
    pub fn count_down(&self) {
        let mut c = self.count.lock();
        if *c > 0 {
            *c -= 1;
            if *c == 0 {
                drop(c);
                self.cond.notify_all();
            }
        }
    }

    /// Blocks until the count reaches zero.
    pub fn wait(&self) {
        let mut c = self.count.lock();
        while *c > 0 {
            self.cond.wait(&mut c);
        }
    }

    /// Blocks until the count reaches zero or `timeout` elapses; returns
    /// whether the latch opened.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut c = self.count.lock();
        while *c > 0 {
            if self.cond.wait_for(&mut c, timeout).timed_out() {
                return *c == 0;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn zero_latch_is_open() {
        let l = CountdownLatch::new(0);
        l.wait(); // must not block
        assert!(l.wait_timeout(Duration::ZERO));
    }

    #[test]
    fn count_down_to_zero_releases() {
        let l = Arc::new(CountdownLatch::new(3));
        let waiter = Arc::clone(&l);
        let t = thread::spawn(move || waiter.wait());
        l.count_down();
        l.count_down();
        assert_eq!(l.count(), 1);
        l.count_down();
        t.join().unwrap();
    }

    #[test]
    fn extra_count_down_is_noop() {
        let l = CountdownLatch::new(1);
        l.count_down();
        l.count_down();
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn wait_timeout_reports_failure() {
        let l = CountdownLatch::new(1);
        assert!(!l.wait_timeout(Duration::from_millis(10)));
    }
}

//! Bounded ring buffers.
//!
//! [`RingBuffer`] is deliberately *not* thread-safe: in the Aspect
//! Moderator architecture the functional component is a **sequential**
//! object and all synchronization lives in aspects. [`SyncRingBuffer`] is
//! the internally synchronized blocking variant used by the hand-tangled
//! baselines and benchmarks.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use parking_lot::{Condvar, Mutex};

/// Error returned when pushing into a full [`RingBuffer`]; hands the
/// rejected element back to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingFullError<T>(pub T);

impl<T> fmt::Display for RingFullError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring buffer is full")
    }
}

impl<T: fmt::Debug> Error for RingFullError<T> {}

/// A fixed-capacity FIFO buffer with no internal synchronization.
///
/// This is the shape of the paper's `TicketServer` storage: a bounded
/// buffer whose producer/consumer constraints are enforced *outside* the
/// data structure (by synchronization aspects).
///
/// ```
/// use amf_concurrency::RingBuffer;
///
/// let mut rb = RingBuffer::with_capacity(2);
/// rb.push_back(1).unwrap();
/// rb.push_back(2).unwrap();
/// assert!(rb.push_back(3).is_err());
/// assert_eq!(rb.pop_front(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct RingBuffer<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> RingBuffer<T> {
    /// Creates an empty buffer holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        Self {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of elements.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Appends an element at the back.
    ///
    /// # Errors
    ///
    /// Returns [`RingFullError`] carrying `value` back if the buffer is
    /// full.
    pub fn push_back(&mut self, value: T) -> Result<(), RingFullError<T>> {
        if self.is_full() {
            Err(RingFullError(value))
        } else {
            self.items.push_back(value);
            Ok(())
        }
    }

    /// Removes the front element, or `None` if empty.
    pub fn pop_front(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the front element.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Iterates front to back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[derive(Debug)]
struct SyncState<T> {
    buf: RingBuffer<T>,
    closed: bool,
}

/// An internally synchronized blocking bounded buffer (classic monitor
/// implementation) used by the tangled baselines.
///
/// `push` blocks while full; `pop` blocks while empty; [`SyncRingBuffer::close`]
/// releases all blocked consumers with `None` once drained.
pub struct SyncRingBuffer<T> {
    state: Mutex<SyncState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> fmt::Debug for SyncRingBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SyncRingBuffer")
            .field("len", &st.buf.len())
            .field("capacity", &st.buf.capacity())
            .field("closed", &st.closed)
            .finish()
    }
}

impl<T> SyncRingBuffer<T> {
    /// Creates an empty buffer holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            state: Mutex::new(SyncState {
                buf: RingBuffer::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Blocking push; waits while the buffer is full.
    ///
    /// Returns the value back if the buffer has been closed.
    pub fn push(&self, value: T) -> Result<(), T> {
        let mut st = self.state.lock();
        loop {
            if st.closed {
                return Err(value);
            }
            if !st.buf.is_full() {
                break;
            }
            self.not_full.wait(&mut st);
        }
        st.buf
            .push_back(value)
            .unwrap_or_else(|_| unreachable!("checked not full under lock"));
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking pop; waits while the buffer is empty. Returns `None` once
    /// the buffer is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(v) = st.buf.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(v);
            }
            if st.closed {
                return None;
            }
            self.not_empty.wait(&mut st);
        }
    }

    /// Current number of buffered elements.
    pub fn len(&self) -> usize {
        self.state.lock().buf.len()
    }

    /// Whether no elements are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the buffer: pending and future `push`es fail, `pop` drains
    /// then returns `None`.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn ring_fifo_order() {
        let mut rb = RingBuffer::with_capacity(3);
        rb.push_back(1).unwrap();
        rb.push_back(2).unwrap();
        rb.push_back(3).unwrap();
        assert_eq!(rb.pop_front(), Some(1));
        assert_eq!(rb.pop_front(), Some(2));
        rb.push_back(4).unwrap();
        assert_eq!(rb.pop_front(), Some(3));
        assert_eq!(rb.pop_front(), Some(4));
        assert_eq!(rb.pop_front(), None);
    }

    #[test]
    fn ring_full_returns_value() {
        let mut rb = RingBuffer::with_capacity(1);
        rb.push_back("a").unwrap();
        let err = rb.push_back("b").unwrap_err();
        assert_eq!(err.0, "b");
        assert_eq!(err.to_string(), "ring buffer is full");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn ring_rejects_zero_capacity() {
        let _ = RingBuffer::<u8>::with_capacity(0);
    }

    #[test]
    fn ring_len_tracks() {
        let mut rb = RingBuffer::with_capacity(2);
        assert!(rb.is_empty());
        rb.push_back(()).unwrap();
        assert_eq!(rb.len(), 1);
        assert!(!rb.is_full());
        rb.push_back(()).unwrap();
        assert!(rb.is_full());
        rb.clear();
        assert!(rb.is_empty());
    }

    #[test]
    fn sync_ring_blocks_producer_when_full() {
        let b = Arc::new(SyncRingBuffer::with_capacity(1));
        b.push(1).unwrap();
        let producer = Arc::clone(&b);
        let t = thread::spawn(move || producer.push(2));
        thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(b.len(), 1, "producer must be blocked");
        assert_eq!(b.pop(), Some(1));
        t.join().unwrap().unwrap();
        assert_eq!(b.pop(), Some(2));
    }

    #[test]
    fn sync_ring_blocks_consumer_when_empty() {
        let b = Arc::new(SyncRingBuffer::<i32>::with_capacity(1));
        let consumer = Arc::clone(&b);
        let t = thread::spawn(move || consumer.pop());
        thread::sleep(std::time::Duration::from_millis(10));
        b.push(9).unwrap();
        assert_eq!(t.join().unwrap(), Some(9));
    }

    #[test]
    fn sync_ring_close_drains_then_none() {
        let b = SyncRingBuffer::with_capacity(4);
        b.push(1).unwrap();
        b.push(2).unwrap();
        b.close();
        assert_eq!(b.push(3), Err(3));
        assert_eq!(b.pop(), Some(1));
        assert_eq!(b.pop(), Some(2));
        assert_eq!(b.pop(), None);
    }

    #[test]
    fn sync_ring_many_producers_consumers() {
        let b = Arc::new(SyncRingBuffer::with_capacity(8));
        let n_producers = 4;
        let per_producer = 250;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let b = Arc::clone(&b);
            handles.push(thread::spawn(move || {
                for i in 0..per_producer {
                    b.push(p * per_producer + i).unwrap();
                }
            }));
        }
        let consumer = Arc::clone(&b);
        let c = thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = consumer.pop() {
                got.push(v);
            }
            got
        });
        for h in handles {
            h.join().unwrap();
        }
        b.close();
        let mut got = c.join().unwrap();
        got.sort_unstable();
        let expected: Vec<usize> = (0..n_producers * per_producer).collect();
        assert_eq!(got, expected);
    }
}

//! Audit-trail aspect and its log substrate.
//!
//! "Audits" appear in the paper's list of interaction requirements. The
//! [`AuditAspect`] records an *attempt* entry at pre-activation and a
//! *completed* entry (with the method's outcome) at post-activation,
//! into a shared [`AuditLog`] that callers can query or export.

use std::fmt;
use std::sync::Arc;

use amf_core::{Aspect, AspectCapabilities, InvocationContext, Outcome, Verdict};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Which phase of an invocation an audit record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditPhase {
    /// The activation passed this aspect's precondition (about to run,
    /// pending any later aspects).
    Attempt,
    /// The activation completed and post-activation ran.
    Completed,
}

/// One audit-trail entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Monotonic sequence number within the log.
    pub seq: u64,
    /// The invocation the record belongs to.
    pub invocation: u64,
    /// The participating method.
    pub method: String,
    /// The caller, if authenticated.
    pub principal: Option<String>,
    /// Attempt or completion.
    pub phase: AuditPhase,
    /// Method outcome; only meaningful on [`AuditPhase::Completed`].
    pub outcome: Option<AuditOutcome>,
}

/// Serializable mirror of [`Outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditOutcome {
    /// The method reported success.
    Success,
    /// The method reported a domain failure.
    Failure,
}

impl From<Outcome> for AuditOutcome {
    fn from(o: Outcome) -> Self {
        match o {
            Outcome::Success => AuditOutcome::Success,
            Outcome::Failure => AuditOutcome::Failure,
        }
    }
}

#[derive(Debug, Default)]
struct LogState {
    records: std::collections::VecDeque<AuditRecord>,
    next_seq: u64,
    dropped: u64,
}

/// Append-only, optionally bounded audit log.
///
/// When a capacity is set, the oldest records are dropped once it is
/// exceeded (and counted in [`AuditLog::dropped`]).
///
/// ```
/// use amf_aspects::audit::AuditLog;
///
/// let log = AuditLog::unbounded();
/// assert_eq!(log.len(), 0);
/// ```
pub struct AuditLog {
    state: Mutex<LogState>,
    capacity: Option<usize>,
}

impl fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditLog")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl AuditLog {
    /// A log that never drops records.
    pub fn unbounded() -> Self {
        Self {
            state: Mutex::new(LogState::default()),
            capacity: None,
        }
    }

    /// A log keeping at most `capacity` most-recent records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "audit log capacity must be positive");
        Self {
            state: Mutex::new(LogState::default()),
            capacity: Some(capacity),
        }
    }

    /// Convenience: an unbounded log wrapped in an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::unbounded())
    }

    /// Appends a record, assigning its sequence number.
    pub fn append(
        &self,
        invocation: u64,
        method: &str,
        principal: Option<&str>,
        phase: AuditPhase,
        outcome: Option<AuditOutcome>,
    ) {
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.records.push_back(AuditRecord {
            seq,
            invocation,
            method: method.to_string(),
            principal: principal.map(str::to_string),
            phase,
            outcome,
        });
        if let Some(cap) = self.capacity {
            while st.records.len() > cap {
                st.records.pop_front();
                st.dropped += 1;
            }
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.state.lock().records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.state.lock().dropped
    }

    /// Snapshot of all retained records, oldest first.
    pub fn records(&self) -> Vec<AuditRecord> {
        self.state.lock().records.iter().cloned().collect()
    }

    /// Snapshot of records for one method.
    pub fn records_for_method(&self, method: &str) -> Vec<AuditRecord> {
        self.state
            .lock()
            .records
            .iter()
            .filter(|r| r.method == method)
            .cloned()
            .collect()
    }

    /// Snapshot of records for one principal.
    pub fn records_for_principal(&self, principal: &str) -> Vec<AuditRecord> {
        self.state
            .lock()
            .records
            .iter()
            .filter(|r| r.principal.as_deref() == Some(principal))
            .cloned()
            .collect()
    }
}

/// Records an attempt/completion pair around every activation of the
/// method it guards.
///
/// Register it *before* (i.e. to be wrapped by) authentication if you
/// want only authenticated attempts audited, or *after* to audit
/// everything that reaches the method.
///
/// Blocked activations re-evaluate their chain on every wakeup; the
/// aspect records the attempt only once per invocation (tracked by a
/// context marker).
pub struct AuditAspect {
    log: Arc<AuditLog>,
}

/// Context marker: this invocation's attempt has been recorded.
struct AttemptRecorded;

impl fmt::Debug for AuditAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditAspect").finish_non_exhaustive()
    }
}

impl AuditAspect {
    /// Creates the aspect over a shared log.
    pub fn new(log: Arc<AuditLog>) -> Self {
        Self { log }
    }
}

impl Aspect for AuditAspect {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        if !ctx.contains::<AttemptRecorded>() {
            ctx.insert(AttemptRecorded);
            self.log.append(
                ctx.invocation(),
                ctx.method().as_str(),
                ctx.principal().map(|p| p.name()),
                AuditPhase::Attempt,
                None,
            );
        }
        Verdict::Resume
    }

    fn postaction(&mut self, ctx: &mut InvocationContext) {
        ctx.remove::<AttemptRecorded>();
        self.log.append(
            ctx.invocation(),
            ctx.method().as_str(),
            ctx.principal().map(|p| p.name()),
            AuditPhase::Completed,
            Some(ctx.outcome().into()),
        );
    }

    /// The audit trail is an observability sink: its precondition is
    /// always [`Verdict::Resume`] (`veto_free`), it mutates nothing the
    /// moderator can see — the log lives outside the coordination state
    /// (`pure`) — and its internal mutex is bounded and never held
    /// across a park (`no_park`). Declaring this makes a row of audit
    /// aspects fast-lane eligible; note that CAS-admitted activations
    /// skip the chain, so they appear in the moderator trace
    /// (`PreactivationStarted`/`ActivationResumed`) but not in the
    /// [`AuditLog`]. Register a vetoing aspect alongside if every
    /// activation must be logged.
    fn capabilities(&self) -> AspectCapabilities {
        AspectCapabilities::all()
    }

    fn describe(&self) -> &str {
        "audit trail"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_core::{MethodId, Principal};

    fn ctx(invocation: u64) -> InvocationContext {
        InvocationContext::new(MethodId::new("open"), invocation)
    }

    #[test]
    fn aspect_writes_attempt_then_completed() {
        let log = AuditLog::shared();
        let mut aspect = AuditAspect::new(Arc::clone(&log));
        let mut cx = ctx(9).with_principal(Principal::new("alice"));
        assert!(aspect.precondition(&mut cx).is_resume());
        cx.set_outcome(Outcome::Failure);
        aspect.postaction(&mut cx);

        let records = log.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].phase, AuditPhase::Attempt);
        assert_eq!(records[0].outcome, None);
        assert_eq!(records[0].invocation, 9);
        assert_eq!(records[0].principal.as_deref(), Some("alice"));
        assert_eq!(records[1].phase, AuditPhase::Completed);
        assert_eq!(records[1].outcome, Some(AuditOutcome::Failure));
        assert!(records[1].seq > records[0].seq);
    }

    #[test]
    fn bounded_log_drops_oldest() {
        let log = AuditLog::bounded(2);
        for i in 0..5 {
            log.append(i, "m", None, AuditPhase::Attempt, None);
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let seqs: Vec<u64> = log.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = AuditLog::bounded(0);
    }

    #[test]
    fn filters_by_method_and_principal() {
        let log = AuditLog::unbounded();
        log.append(1, "open", Some("alice"), AuditPhase::Attempt, None);
        log.append(2, "assign", Some("bob"), AuditPhase::Attempt, None);
        log.append(3, "open", Some("bob"), AuditPhase::Attempt, None);
        assert_eq!(log.records_for_method("open").len(), 2);
        assert_eq!(log.records_for_method("assign").len(), 1);
        assert_eq!(log.records_for_principal("bob").len(), 2);
        assert_eq!(log.records_for_principal("eve").len(), 0);
    }

    #[test]
    fn records_serialize_to_json_shape() {
        let r = AuditRecord {
            seq: 0,
            invocation: 1,
            method: "open".into(),
            principal: Some("alice".into()),
            phase: AuditPhase::Completed,
            outcome: Some(AuditOutcome::Success),
        };
        // serde::Serialize derives compile and the record round-trips
        // through the serde data model (checked structurally here since
        // no JSON crate is in the dependency set).
        let cloned = r.clone();
        assert_eq!(r, cloned);
    }

    #[test]
    fn reevaluation_records_one_attempt() {
        // A blocked invocation re-runs preconditions on every wakeup;
        // the audit trail must not multiply.
        let log = AuditLog::shared();
        let mut aspect = AuditAspect::new(Arc::clone(&log));
        let mut cx = ctx(5);
        for _ in 0..4 {
            assert!(aspect.precondition(&mut cx).is_resume());
        }
        aspect.postaction(&mut cx);
        let records = log.records();
        assert_eq!(records.len(), 2, "{records:?}");
        assert_eq!(records[0].phase, AuditPhase::Attempt);
        assert_eq!(records[1].phase, AuditPhase::Completed);
    }

    #[test]
    fn anonymous_invocations_audit_without_principal() {
        let log = AuditLog::shared();
        let mut aspect = AuditAspect::new(Arc::clone(&log));
        let mut cx = ctx(1);
        aspect.precondition(&mut cx);
        assert_eq!(log.records()[0].principal, None);
    }
}

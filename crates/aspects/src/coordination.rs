//! Coordination aspects beyond the bounded buffer: rendezvous barriers,
//! resource leases and deadlines.
//!
//! "Coordination" closes the paper's list of interaction properties.
//! These aspects show the same pre/post protocol expressing coordination
//! patterns the paper never worked out:
//!
//! * [`BarrierAspect`] — a method that only proceeds once `k` callers
//!   have arrived (batch commit, all-or-nothing starts);
//! * [`ResourceLeaseAspect`] — each activation borrows one item from a
//!   [`ResourcePool`], attached to the invocation context for the method
//!   body, returned at post-activation;
//! * [`DeadlineAspect`] — activations carrying a [`Deadline`] abort once
//!   it has passed (admission control for latency budgets).

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use amf_concurrency::{Clock, ResourcePool, SystemClock};
use amf_core::{Aspect, InvocationContext, ReleaseCause, Verdict};

/// Rendezvous gate: activations block until `k` of them have arrived,
/// then the whole cohort proceeds.
///
/// Waiters are woken by the moderator's normal notification flow: the
/// `k`-th arrival resumes immediately, and each completing activation's
/// post-activation wakes the next cohort member. A caller that times
/// out deregisters itself (via `on_cancel`) without poisoning the
/// barrier.
pub struct BarrierAspect {
    k: usize,
    waiting: HashSet<u64>,
    released: HashSet<u64>,
    generations: u64,
}

impl fmt::Debug for BarrierAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BarrierAspect")
            .field("k", &self.k)
            .field("waiting", &self.waiting.len())
            .field("released", &self.released.len())
            .field("generations", &self.generations)
            .finish()
    }
}

impl BarrierAspect {
    /// A barrier releasing cohorts of `k` activations.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "barrier cohort must be positive");
        Self {
            k,
            waiting: HashSet::new(),
            released: HashSet::new(),
            generations: 0,
        }
    }

    /// Completed cohorts so far.
    pub fn generations(&self) -> u64 {
        self.generations
    }
}

impl Aspect for BarrierAspect {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        let inv = ctx.invocation();
        if self.released.remove(&inv) {
            return Verdict::Resume;
        }
        self.waiting.insert(inv);
        if self.waiting.len() >= self.k {
            self.generations += 1;
            self.waiting.remove(&inv);
            self.released.extend(self.waiting.drain());
            Verdict::Resume
        } else {
            Verdict::Block
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {}

    fn on_release(&mut self, ctx: &InvocationContext, _cause: ReleaseCause) {
        // A cohort member whose *later* aspect blocked/aborted rejoins
        // the released set so it passes straight through on re-entry.
        self.released.insert(ctx.invocation());
    }

    fn on_cancel(&mut self, ctx: &InvocationContext) {
        let inv = ctx.invocation();
        self.waiting.remove(&inv);
        self.released.remove(&inv);
    }

    fn describe(&self) -> &str {
        "rendezvous barrier"
    }
}

/// Context attribute carrying the resource leased to this activation by
/// a [`ResourceLeaseAspect`]. The method body uses it via
/// [`Lease::get`]/[`Lease::get_mut`], or takes ownership with
/// [`Lease::take`] (assuming responsibility for the item).
///
/// A `Lease` is an RAII token: if it is dropped still holding the item
/// — the activation was rolled back, timed out, or abandoned — the
/// item returns to its pool automatically, so no path leaks pool
/// capacity.
pub struct Lease<T: Send + 'static> {
    item: Option<T>,
    pool: Arc<ResourcePool<T>>,
}

impl<T: Send + fmt::Debug> fmt::Debug for Lease<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lease").field("item", &self.item).finish()
    }
}

impl<T: Send> Lease<T> {
    /// Takes ownership of the leased resource. The taker is then
    /// responsible for returning it to the pool.
    pub fn take(&mut self) -> Option<T> {
        self.item.take()
    }

    /// Reads the leased resource without taking it.
    pub fn get(&self) -> Option<&T> {
        self.item.as_ref()
    }

    /// Mutably borrows the leased resource (the common pattern: use it
    /// inside the method body, let the aspect return it).
    pub fn get_mut(&mut self) -> Option<&mut T> {
        self.item.as_mut()
    }
}

impl<T: Send> Drop for Lease<T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.pool.checkin(item);
        }
    }
}

/// Leases one item from a shared [`ResourcePool`] per activation:
/// blocks while the pool is dry, attaches the item to the context as a
/// [`Lease<T>`], and returns it at post-activation.
///
/// Rollback safety: when a later aspect blocks or aborts after the
/// lease resumed, the leased item stays attached to the context — the
/// re-evaluated precondition *reuses* it instead of checking out a
/// second one, and any path that drops the context (timeout, abort)
/// returns the item via [`Lease`]'s destructor.
pub struct ResourceLeaseAspect<T: Send + 'static> {
    pool: Arc<ResourcePool<T>>,
}

impl<T: Send> fmt::Debug for ResourceLeaseAspect<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResourceLeaseAspect")
            .field("pool", &self.pool)
            .finish()
    }
}

impl<T: Send> ResourceLeaseAspect<T> {
    /// Creates the aspect over a shared pool.
    pub fn new(pool: Arc<ResourcePool<T>>) -> Self {
        Self { pool }
    }
}

impl<T: Send + 'static> Aspect for ResourceLeaseAspect<T> {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        // Re-evaluation after a rollback: the previous lease is still
        // attached — reuse it.
        if ctx.get::<Lease<T>>().is_some_and(|l| l.get().is_some()) {
            return Verdict::Resume;
        }
        match self.pool.checkout() {
            Some(item) => {
                ctx.insert(Lease {
                    item: Some(item),
                    pool: Arc::clone(&self.pool),
                });
                Verdict::Resume
            }
            None => Verdict::Block,
        }
    }

    fn postaction(&mut self, ctx: &mut InvocationContext) {
        // Dropping the lease returns an untaken item to the pool.
        drop(ctx.remove::<Lease<T>>());
    }

    fn describe(&self) -> &str {
        "resource lease"
    }
}

/// Context attribute: the absolute time (on the aspect's clock) after
/// which the activation is no longer worth running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline(pub Duration);

/// Aborts activations whose [`Deadline`] has passed — both on first
/// evaluation and on every re-evaluation after blocking, so a caller
/// parked behind a slow queue fails fast once its budget is gone.
///
/// Activations without a deadline pass through.
pub struct DeadlineAspect {
    clock: Arc<dyn Clock>,
}

impl fmt::Debug for DeadlineAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeadlineAspect").finish_non_exhaustive()
    }
}

impl DeadlineAspect {
    /// Deadline checks on the system clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(SystemClock::new()))
    }

    /// Deadline checks on a caller-supplied clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self { clock }
    }

    /// The aspect's clock, for callers computing absolute deadlines.
    pub fn now(&self) -> Duration {
        self.clock.now()
    }
}

impl Default for DeadlineAspect {
    fn default() -> Self {
        Self::new()
    }
}

impl Aspect for DeadlineAspect {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        match ctx.get::<Deadline>() {
            Some(Deadline(at)) if self.clock.now() > *at => Verdict::abort("deadline exceeded"),
            _ => Verdict::Resume,
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {}

    fn describe(&self) -> &str {
        "deadline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_concurrency::ManualClock;
    use amf_core::MethodId;

    fn ctx(invocation: u64) -> InvocationContext {
        InvocationContext::new(MethodId::new("m"), invocation)
    }

    #[test]
    fn barrier_releases_cohort_of_k() {
        let mut b = BarrierAspect::new(3);
        let mut c1 = ctx(1);
        let mut c2 = ctx(2);
        let mut c3 = ctx(3);
        assert!(b.precondition(&mut c1).is_block());
        assert!(b.precondition(&mut c2).is_block());
        // Third arrival trips the barrier and passes.
        assert!(b.precondition(&mut c3).is_resume());
        assert_eq!(b.generations(), 1);
        // The parked two pass on re-evaluation.
        assert!(b.precondition(&mut c1).is_resume());
        assert!(b.precondition(&mut c2).is_resume());
        // A fresh arrival starts the next generation.
        let mut c4 = ctx(4);
        assert!(b.precondition(&mut c4).is_block());
    }

    #[test]
    fn barrier_cancel_removes_waiter() {
        let mut b = BarrierAspect::new(2);
        let mut c1 = ctx(1);
        let c1_ref = ctx(1);
        assert!(b.precondition(&mut c1).is_block());
        b.on_cancel(&c1_ref);
        // A single new arrival must NOT be released by the ghost.
        let mut c2 = ctx(2);
        assert!(b.precondition(&mut c2).is_block());
        let mut c3 = ctx(3);
        assert!(b.precondition(&mut c3).is_resume());
    }

    #[test]
    fn barrier_release_rejoins_cohort() {
        let mut b = BarrierAspect::new(2);
        let mut c1 = ctx(1);
        let mut c2 = ctx(2);
        assert!(b.precondition(&mut c1).is_block());
        assert!(b.precondition(&mut c2).is_resume());
        // c2's later aspect blocked; on re-entry it passes straight
        // through instead of waiting for a whole new cohort.
        b.on_release(&ctx(2), ReleaseCause::Blocked);
        assert!(b.precondition(&mut c2).is_resume());
    }

    #[test]
    #[should_panic(expected = "cohort must be positive")]
    fn zero_barrier_rejected() {
        let _ = BarrierAspect::new(0);
    }

    #[test]
    fn lease_attaches_and_returns_resource() {
        let pool = Arc::new(ResourcePool::new(vec!["conn"]));
        let mut a = ResourceLeaseAspect::new(Arc::clone(&pool));
        let mut c = ctx(1);
        assert!(a.precondition(&mut c).is_resume());
        assert_eq!(pool.available(), 0);
        assert_eq!(
            c.get::<Lease<&str>>().and_then(Lease::get).copied(),
            Some("conn")
        );
        a.postaction(&mut c);
        assert_eq!(pool.available(), 1);
        assert!(!c.contains::<Lease<&str>>());
    }

    #[test]
    fn lease_blocks_on_dry_pool() {
        let pool = Arc::new(ResourcePool::new(vec![1_u32]));
        let mut a = ResourceLeaseAspect::new(Arc::clone(&pool));
        let mut c1 = ctx(1);
        let mut c2 = ctx(2);
        assert!(a.precondition(&mut c1).is_resume());
        assert!(a.precondition(&mut c2).is_block());
        a.postaction(&mut c1);
        assert!(a.precondition(&mut c2).is_resume());
    }

    #[test]
    fn lease_taken_by_body_is_callers_responsibility() {
        let pool = Arc::new(ResourcePool::new(vec![9_u32]));
        let mut a = ResourceLeaseAspect::new(Arc::clone(&pool));
        let mut c = ctx(1);
        a.precondition(&mut c);
        let item = c.get_mut::<Lease<u32>>().unwrap().take().unwrap();
        a.postaction(&mut c); // nothing to return
        assert_eq!(pool.available(), 0);
        pool.checkin(item);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn reevaluation_reuses_the_existing_lease() {
        // A later aspect blocked after the lease resumed; on the next
        // pass the precondition must NOT check out a second item.
        let pool = Arc::new(ResourcePool::new(vec!["only"]));
        let mut a = ResourceLeaseAspect::new(Arc::clone(&pool));
        let mut c = ctx(1);
        assert!(a.precondition(&mut c).is_resume());
        assert_eq!(pool.available(), 0);
        // Rollback happened (on_release is a no-op for leases), chain
        // re-evaluates with the same context:
        assert!(a.precondition(&mut c).is_resume());
        assert_eq!(pool.available(), 0, "no double checkout");
        a.postaction(&mut c);
        assert_eq!(pool.available(), 1, "single item returned once");
    }

    #[test]
    fn dropped_context_returns_the_lease() {
        // Timeout/abort paths drop the invocation context; the lease's
        // destructor must hand the item back.
        let pool = Arc::new(ResourcePool::new(vec![1_u8, 2]));
        let mut a = ResourceLeaseAspect::new(Arc::clone(&pool));
        {
            let mut c = ctx(1);
            assert!(a.precondition(&mut c).is_resume());
            assert_eq!(pool.available(), 1);
            // c dropped here without any postaction.
        }
        assert_eq!(pool.available(), 2, "destructor returned the item");
    }

    #[test]
    fn deadline_aborts_past_budget() {
        let clock = ManualClock::new();
        let mut a = DeadlineAspect::with_clock(Arc::new(clock.clone()));
        let mut c = ctx(1);
        c.insert(Deadline(Duration::from_millis(100)));
        assert!(a.precondition(&mut c).is_resume());
        clock.advance(Duration::from_millis(101));
        match a.precondition(&mut c) {
            Verdict::Abort(r) => assert!(r.message().contains("deadline")),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn no_deadline_passes_through() {
        let mut a = DeadlineAspect::new();
        let mut c = ctx(1);
        assert!(a.precondition(&mut c).is_resume());
        let _ = a.now();
    }
}

//! Scheduling and throughput aspects.
//!
//! *Scheduling* is one of the paper's canonical aspects (it appears in
//! the aspect bank of Figure 1). [`AdmissionAspect`] turns a method into
//! a policy-ordered admission gate: at most `max_concurrent` activations
//! run at once and waiters are admitted FIFO / LIFO / by priority.
//! [`RateLimitAspect`] throttles a method's throughput with a token
//! bucket.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use amf_concurrency::{RateLimiter, Scheduler, SchedulerPolicy};
use amf_core::{Aspect, InvocationContext, ReleaseCause, Verdict};
use parking_lot::Mutex;

/// Priority attached to an invocation context by the caller; read by
/// [`AdmissionAspect`] under [`SchedulerPolicy::Priority`]. Higher wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Priority(pub u32);

#[derive(Debug)]
struct AdmissionState {
    running: usize,
    max_concurrent: usize,
    queue: Scheduler<u64>,
    enrolled: HashSet<u64>,
}

/// Policy-ordered admission gate: a fair semaphore as an aspect.
///
/// At most `max_concurrent` activations of the guarded method run
/// simultaneously; when the gate is full, callers block and are admitted
/// in policy order ([`SchedulerPolicy::Fifo`], `Lifo`, or `Priority`
/// keyed by the [`Priority`] context attribute).
///
/// Several methods may *share* one gate by cloning the aspect's group
/// (see [`AdmissionGroup`]).
#[derive(Debug, Clone)]
pub struct AdmissionGroup {
    state: Arc<Mutex<AdmissionState>>,
}

impl AdmissionGroup {
    /// Creates a gate admitting `max_concurrent` activations at a time,
    /// ordered by `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrent` is zero.
    pub fn new(max_concurrent: usize, policy: SchedulerPolicy) -> Self {
        assert!(max_concurrent > 0, "admission gate needs capacity");
        Self {
            state: Arc::new(Mutex::new(AdmissionState {
                running: 0,
                max_concurrent,
                queue: Scheduler::new(policy),
                enrolled: HashSet::new(),
            })),
        }
    }

    /// Mints the admission aspect for one method of the group.
    pub fn aspect(&self) -> AdmissionAspect {
        AdmissionAspect {
            state: Arc::clone(&self.state),
        }
    }

    /// (activations running, callers waiting) right now.
    pub fn load(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.running, st.queue.len())
    }
}

/// Admission aspect minted by [`AdmissionGroup::aspect`].
pub struct AdmissionAspect {
    state: Arc<Mutex<AdmissionState>>,
}

impl fmt::Debug for AdmissionAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdmissionAspect")
            .field("state", &*self.state.lock())
            .finish()
    }
}

impl Aspect for AdmissionAspect {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        let inv = ctx.invocation();
        let mut st = self.state.lock();
        if !st.enrolled.contains(&inv) {
            // First evaluation for this invocation: take a queue position.
            let priority = ctx.get::<Priority>().copied().unwrap_or_default().0;
            st.queue.enqueue_with_priority(inv, priority);
            st.enrolled.insert(inv);
        }
        if st.running < st.max_concurrent && st.queue.peek() == Some(&inv) {
            st.queue.dequeue();
            st.enrolled.remove(&inv);
            st.running += 1;
            Verdict::Resume
        } else {
            Verdict::Block
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {
        self.state.lock().running -= 1;
    }

    fn on_release(&mut self, _ctx: &InvocationContext, _cause: ReleaseCause) {
        self.state.lock().running -= 1;
    }

    fn on_cancel(&mut self, ctx: &InvocationContext) {
        let inv = ctx.invocation();
        let mut st = self.state.lock();
        if st.enrolled.remove(&inv) {
            st.queue.cancel(|&i| i == inv);
        }
    }

    fn describe(&self) -> &str {
        "admission gate"
    }
}

/// What a [`RateLimitAspect`] does when the bucket is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThrottleMode {
    /// Fail the activation (`429`-style).
    #[default]
    Abort,
    /// Park the caller; it re-evaluates whenever traffic completes.
    /// Note that wakeups come from *post-activations*, so a fully idle
    /// system will not wake blocked callers when tokens refill — prefer
    /// `Abort` (with caller retry) for idle-bursty workloads.
    Block,
}

/// Token-bucket throughput throttle.
pub struct RateLimitAspect {
    limiter: Arc<RateLimiter>,
    mode: ThrottleMode,
}

impl fmt::Debug for RateLimitAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RateLimitAspect")
            .field("mode", &self.mode)
            .field("limiter", &self.limiter)
            .finish()
    }
}

impl RateLimitAspect {
    /// Creates a throttle over a shared limiter.
    pub fn new(limiter: Arc<RateLimiter>, mode: ThrottleMode) -> Self {
        Self { limiter, mode }
    }
}

impl Aspect for RateLimitAspect {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        if self.limiter.try_acquire() {
            Verdict::Resume
        } else {
            match self.mode {
                ThrottleMode::Abort => Verdict::abort("rate limit exceeded"),
                ThrottleMode::Block => Verdict::Block,
            }
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {}

    fn on_release(&mut self, _ctx: &InvocationContext, _cause: ReleaseCause) {
        // Hand the unused token back.
        self.limiter.deposit();
    }

    fn describe(&self) -> &str {
        "rate limit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_concurrency::{ManualClock, RateLimiterConfig};
    use amf_core::MethodId;

    fn ctx(invocation: u64) -> InvocationContext {
        InvocationContext::new(MethodId::new("m"), invocation)
    }

    fn ctx_with_priority(invocation: u64, p: u32) -> InvocationContext {
        let mut c = ctx(invocation);
        c.insert(Priority(p));
        c
    }

    #[test]
    fn admits_up_to_capacity() {
        let group = AdmissionGroup::new(2, SchedulerPolicy::Fifo);
        let mut a = group.aspect();
        let mut c1 = ctx(1);
        let mut c2 = ctx(2);
        let mut c3 = ctx(3);
        assert!(a.precondition(&mut c1).is_resume());
        assert!(a.precondition(&mut c2).is_resume());
        assert!(a.precondition(&mut c3).is_block());
        assert_eq!(group.load(), (2, 1));
        a.postaction(&mut c1);
        assert!(a.precondition(&mut c3).is_resume());
    }

    #[test]
    fn fifo_admits_in_arrival_order() {
        let group = AdmissionGroup::new(1, SchedulerPolicy::Fifo);
        let mut a = group.aspect();
        let mut c1 = ctx(1);
        let mut c2 = ctx(2);
        let mut c3 = ctx(3);
        assert!(a.precondition(&mut c1).is_resume());
        assert!(a.precondition(&mut c2).is_block()); // enrolls 2
        assert!(a.precondition(&mut c3).is_block()); // enrolls 3
        a.postaction(&mut c1);
        // 3 re-evaluates first (as after a notify-all) but 2 is the head.
        assert!(a.precondition(&mut c3).is_block());
        assert!(a.precondition(&mut c2).is_resume());
        a.postaction(&mut c2);
        assert!(a.precondition(&mut c3).is_resume());
    }

    #[test]
    fn priority_order_beats_arrival_order() {
        let group = AdmissionGroup::new(1, SchedulerPolicy::Priority);
        let mut a = group.aspect();
        let mut holder = ctx(1);
        let mut low = ctx_with_priority(2, 1);
        let mut high = ctx_with_priority(3, 9);
        assert!(a.precondition(&mut holder).is_resume());
        assert!(a.precondition(&mut low).is_block());
        assert!(a.precondition(&mut high).is_block());
        a.postaction(&mut holder);
        assert!(a.precondition(&mut low).is_block());
        assert!(a.precondition(&mut high).is_resume());
    }

    #[test]
    fn cancel_removes_enrollment() {
        let group = AdmissionGroup::new(1, SchedulerPolicy::Fifo);
        let mut a = group.aspect();
        let mut holder = ctx(1);
        let mut waiter = ctx(2);
        let mut late = ctx(3);
        assert!(a.precondition(&mut holder).is_resume());
        assert!(a.precondition(&mut waiter).is_block());
        assert!(a.precondition(&mut late).is_block());
        // Waiter 2 times out and cancels; 3 must now be the head.
        a.on_cancel(&waiter);
        a.postaction(&mut holder);
        assert!(a.precondition(&mut late).is_resume());
        assert_eq!(group.load(), (1, 0));
    }

    #[test]
    fn release_frees_slot() {
        let group = AdmissionGroup::new(1, SchedulerPolicy::Fifo);
        let mut a = group.aspect();
        let mut c1 = ctx(1);
        assert!(a.precondition(&mut c1).is_resume());
        a.on_release(&c1, ReleaseCause::Aborted);
        let mut c2 = ctx(2);
        assert!(a.precondition(&mut c2).is_resume());
    }

    #[test]
    fn reevaluation_does_not_double_enroll() {
        let group = AdmissionGroup::new(1, SchedulerPolicy::Fifo);
        let mut a = group.aspect();
        let mut holder = ctx(1);
        let mut waiter = ctx(2);
        assert!(a.precondition(&mut holder).is_resume());
        for _ in 0..5 {
            assert!(a.precondition(&mut waiter).is_block());
        }
        assert_eq!(group.load(), (1, 1), "five re-evaluations, one entry");
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_rejected() {
        let _ = AdmissionGroup::new(0, SchedulerPolicy::Fifo);
    }

    fn limiter(burst: u64, rate: f64, clock: &ManualClock) -> Arc<RateLimiter> {
        Arc::new(RateLimiter::new(
            RateLimiterConfig {
                burst,
                tokens_per_second: rate,
            },
            Arc::new(clock.clone()),
        ))
    }

    #[test]
    fn rate_limit_aborts_when_drained() {
        let clock = ManualClock::new();
        let mut a = RateLimitAspect::new(limiter(1, 1.0, &clock), ThrottleMode::Abort);
        let mut c = ctx(1);
        assert!(a.precondition(&mut c).is_resume());
        match a.precondition(&mut c) {
            Verdict::Abort(r) => assert!(r.message().contains("rate limit")),
            other => panic!("expected abort, got {other:?}"),
        }
        clock.advance(std::time::Duration::from_secs(1));
        assert!(a.precondition(&mut c).is_resume());
    }

    #[test]
    fn rate_limit_blocks_in_block_mode() {
        let clock = ManualClock::new();
        let mut a = RateLimitAspect::new(limiter(1, 1.0, &clock), ThrottleMode::Block);
        let mut c = ctx(1);
        assert!(a.precondition(&mut c).is_resume());
        assert!(a.precondition(&mut c).is_block());
    }

    #[test]
    fn rate_limit_release_returns_token() {
        let clock = ManualClock::new();
        let l = limiter(1, 0.001, &clock);
        let mut a = RateLimitAspect::new(Arc::clone(&l), ThrottleMode::Abort);
        let mut c = ctx(1);
        assert!(a.precondition(&mut c).is_resume());
        assert_eq!(l.available(), 0);
        a.on_release(&c, ReleaseCause::Blocked);
        assert_eq!(l.available(), 1);
    }
}

//! Reusable aspect library for the Aspect Moderator framework.
//!
//! The paper lists the interaction concerns that cut across functional
//! components: "load balancing, fault tolerance, throughput, security,
//! audits, location transparency, concurrency, and coordination". This
//! crate packages each as a reusable [`Aspect`](amf_core::Aspect)
//! implementation plus whatever substrate it needs:
//!
//! | Module | Concern | Aspects |
//! |---|---|---|
//! | [`sync`] | concurrency / coordination | bounded-buffer producer/consumer pair, mutual-exclusion group, readers–writer |
//! | [`coordination`] | rendezvous / resources / latency budgets | barrier, resource lease, deadline |
//! | [`auth`] | security | authentication, role authorization (+ user/session substrate) |
//! | [`audit`] | audits | audit-trail recording |
//! | [`sched`] | scheduling / throughput | policy-ordered admission, rate limiting |
//! | [`fault`] | fault tolerance | circuit breaker, failure injection |
//! | [`metrics`] | performance visibility | latency/counter collection |
//! | [`quota`] | resource governance | per-principal quotas |
//!
//! Every aspect here follows the same contract: its `precondition`
//! *reserves* state, its `postaction` *commits*, and its `on_release`
//! undoes a reservation when a later aspect in the chain blocks or
//! aborts (see `amf-core`'s rollback policy).

#![warn(missing_docs)]

pub mod audit;
pub mod auth;
pub mod coordination;
pub mod fault;
pub mod metrics;
pub mod quota;
pub mod sched;
pub mod sync;

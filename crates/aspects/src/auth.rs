//! Security aspects: authentication and role-based authorization, plus
//! the user/session substrate they need.
//!
//! The paper's adaptability showcase (Section 5.3) introduces an
//! `AUTHENTICATE` concern without touching the functional code; this
//! module supplies the pieces: an [`Authenticator`] (user registry,
//! salted credential hashes, expiring session tokens), an
//! [`AuthenticationAspect`] that verifies the caller's token, and an
//! [`AuthorizationAspect`] that enforces role requirements.
//!
//! The credential hash is a salted FNV-1a — a deliberate, documented
//! stand-in for a real KDF (the sanctioned dependency set has no crypto
//! crate); it exercises the same code path without pretending to be
//! secure.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use amf_concurrency::{Clock, SystemClock};
use amf_core::{Aspect, InvocationContext, Principal, Verdict};
use parking_lot::Mutex;
use rand::{Rng, SeedableRng};

/// A named capability granted to users, checked by
/// [`AuthorizationAspect`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Role(Arc<str>);

impl Role {
    /// Creates a role by name.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        Self(name.into())
    }

    /// The role name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Role {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

/// Opaque session token returned by [`Authenticator::login`]. Callers
/// attach it to an invocation context; [`AuthenticationAspect`] resolves
/// it back to a [`Principal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthToken(pub u64);

/// Authentication failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// No user with that name.
    UnknownUser,
    /// Password did not match.
    BadPassword,
    /// The token was never issued or was revoked.
    InvalidToken,
    /// The token's session exceeded its time-to-live.
    Expired,
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            AuthError::UnknownUser => "unknown user",
            AuthError::BadPassword => "bad password",
            AuthError::InvalidToken => "invalid token",
            AuthError::Expired => "session expired",
        };
        f.write_str(msg)
    }
}

impl Error for AuthError {}

#[derive(Debug)]
struct UserRecord {
    salt: u64,
    hash: u64,
    roles: HashSet<Role>,
}

#[derive(Debug)]
struct Session {
    user: String,
    issued_at: Duration,
}

#[derive(Debug)]
struct AuthState {
    users: HashMap<String, UserRecord>,
    sessions: HashMap<u64, Session>,
    rng: rand::rngs::StdRng,
}

/// User registry and session manager.
///
/// ```
/// use amf_aspects::auth::{Authenticator, Role};
///
/// let auth = Authenticator::new();
/// auth.add_user("alice", "s3cret");
/// auth.grant_role("alice", Role::new("operator")).unwrap();
/// let token = auth.login("alice", "s3cret").unwrap();
/// let principal = auth.validate(token).unwrap();
/// assert_eq!(principal.name(), "alice");
/// assert!(auth.has_role(&principal, &Role::new("operator")));
/// ```
pub struct Authenticator {
    state: Mutex<AuthState>,
    clock: Arc<dyn Clock>,
    ttl: Option<Duration>,
}

impl fmt::Debug for Authenticator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Authenticator")
            .field("users", &st.users.len())
            .field("sessions", &st.sessions.len())
            .field("ttl", &self.ttl)
            .finish()
    }
}

/// Salted FNV-1a over the password bytes. NOT cryptographic; see module
/// docs.
fn credential_hash(salt: u64, password: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for b in password.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Default for Authenticator {
    fn default() -> Self {
        Self::new()
    }
}

impl Authenticator {
    /// Creates an authenticator with no session expiry, on the system
    /// clock.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(SystemClock::new()))
    }

    /// Creates an authenticator on a caller-supplied clock (tests use a
    /// [`ManualClock`](amf_concurrency::ManualClock)).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            state: Mutex::new(AuthState {
                users: HashMap::new(),
                sessions: HashMap::new(),
                rng: rand::rngs::StdRng::seed_from_u64(0x5eed),
            }),
            clock,
            ttl: None,
        }
    }

    /// Sets a session time-to-live (builder style).
    #[must_use]
    pub fn with_ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Convenience: a fresh authenticator wrapped in an [`Arc`].
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Registers (or re-registers, resetting roles) a user.
    pub fn add_user(&self, name: &str, password: &str) {
        let mut st = self.state.lock();
        let salt = st.rng.gen();
        st.users.insert(
            name.to_string(),
            UserRecord {
                salt,
                hash: credential_hash(salt, password),
                roles: HashSet::new(),
            },
        );
    }

    /// Grants a role to a user.
    ///
    /// # Errors
    ///
    /// [`AuthError::UnknownUser`] if the user is not registered.
    pub fn grant_role(&self, name: &str, role: Role) -> Result<(), AuthError> {
        let mut st = self.state.lock();
        st.users
            .get_mut(name)
            .ok_or(AuthError::UnknownUser)?
            .roles
            .insert(role);
        Ok(())
    }

    /// Verifies credentials and opens a session.
    ///
    /// # Errors
    ///
    /// [`AuthError::UnknownUser`] or [`AuthError::BadPassword`].
    pub fn login(&self, name: &str, password: &str) -> Result<AuthToken, AuthError> {
        let mut st = self.state.lock();
        let user = st.users.get(name).ok_or(AuthError::UnknownUser)?;
        if credential_hash(user.salt, password) != user.hash {
            return Err(AuthError::BadPassword);
        }
        let token: u64 = st.rng.gen();
        let issued_at = self.clock.now();
        st.sessions.insert(
            token,
            Session {
                user: name.to_string(),
                issued_at,
            },
        );
        Ok(AuthToken(token))
    }

    /// Resolves a token to its principal.
    ///
    /// # Errors
    ///
    /// [`AuthError::InvalidToken`] for unknown/revoked tokens,
    /// [`AuthError::Expired`] past the TTL (the session is then removed).
    pub fn validate(&self, token: AuthToken) -> Result<Principal, AuthError> {
        let mut st = self.state.lock();
        let session = st.sessions.get(&token.0).ok_or(AuthError::InvalidToken)?;
        if let Some(ttl) = self.ttl {
            if self.clock.now().saturating_sub(session.issued_at) > ttl {
                st.sessions.remove(&token.0);
                return Err(AuthError::Expired);
            }
        }
        Ok(Principal::new(session.user.clone()))
    }

    /// Closes a session; returns whether it existed.
    pub fn logout(&self, token: AuthToken) -> bool {
        self.state.lock().sessions.remove(&token.0).is_some()
    }

    /// Whether `principal` holds `role`.
    pub fn has_role(&self, principal: &Principal, role: &Role) -> bool {
        self.state
            .lock()
            .users
            .get(principal.name())
            .is_some_and(|u| u.roles.contains(role))
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.state.lock().sessions.len()
    }
}

/// Verifies that the invocation carries a valid [`AuthToken`] attribute
/// (or an already-attached principal), aborting otherwise. On success,
/// resolves the token and attaches the [`Principal`] to the context so
/// downstream aspects (authorization, audit, quota) can use it.
///
/// Mirrors the paper's `OpenAuthenticationAspect` /
/// `AssignAuthenticationAspect` (Figures 13–18): a security precondition
/// that *aborts* rather than blocks.
pub struct AuthenticationAspect {
    auth: Arc<Authenticator>,
}

impl fmt::Debug for AuthenticationAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuthenticationAspect")
            .finish_non_exhaustive()
    }
}

impl AuthenticationAspect {
    /// Creates the aspect over a shared authenticator.
    pub fn new(auth: Arc<Authenticator>) -> Self {
        Self { auth }
    }
}

impl Aspect for AuthenticationAspect {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        match ctx.get::<AuthToken>().copied() {
            Some(token) => match self.auth.validate(token) {
                Ok(principal) => {
                    ctx.set_principal(principal);
                    Verdict::Resume
                }
                Err(e) => Verdict::abort(format!("authentication failed: {e}")),
            },
            None => Verdict::abort("authentication failed: no token presented"),
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {}

    fn describe(&self) -> &str {
        "authentication"
    }
}

/// Requires the (already authenticated) principal to hold a specific
/// role; aborts otherwise.
pub struct AuthorizationAspect {
    auth: Arc<Authenticator>,
    required: Role,
}

impl fmt::Debug for AuthorizationAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuthorizationAspect")
            .field("required", &self.required)
            .finish_non_exhaustive()
    }
}

impl AuthorizationAspect {
    /// Creates the aspect requiring `required` on every activation.
    pub fn new(auth: Arc<Authenticator>, required: Role) -> Self {
        Self { auth, required }
    }
}

impl Aspect for AuthorizationAspect {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        match ctx.principal() {
            Some(principal) => Verdict::resume_or_abort(
                self.auth.has_role(principal, &self.required),
                format!("principal `{principal}` lacks role `{}`", self.required),
            ),
            None => Verdict::abort("authorization requires an authenticated principal"),
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {}

    fn describe(&self) -> &str {
        "authorization"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_concurrency::ManualClock;
    use amf_core::MethodId;

    fn ctx() -> InvocationContext {
        InvocationContext::new(MethodId::new("open"), 1)
    }

    #[test]
    fn login_roundtrip() {
        let auth = Authenticator::new();
        auth.add_user("alice", "pw");
        let t = auth.login("alice", "pw").unwrap();
        assert_eq!(auth.validate(t).unwrap().name(), "alice");
        assert_eq!(auth.session_count(), 1);
        assert!(auth.logout(t));
        assert!(!auth.logout(t));
        assert_eq!(auth.validate(t), Err(AuthError::InvalidToken));
    }

    #[test]
    fn wrong_credentials_rejected() {
        let auth = Authenticator::new();
        auth.add_user("alice", "pw");
        assert_eq!(auth.login("bob", "pw"), Err(AuthError::UnknownUser));
        assert_eq!(auth.login("alice", "nope"), Err(AuthError::BadPassword));
    }

    #[test]
    fn sessions_expire_by_ttl() {
        let clock = ManualClock::new();
        let auth =
            Authenticator::with_clock(Arc::new(clock.clone())).with_ttl(Duration::from_secs(60));
        auth.add_user("alice", "pw");
        let t = auth.login("alice", "pw").unwrap();
        clock.advance(Duration::from_secs(59));
        assert!(auth.validate(t).is_ok());
        clock.advance(Duration::from_secs(2));
        assert_eq!(auth.validate(t), Err(AuthError::Expired));
        // Expired session is pruned: now invalid, not expired.
        assert_eq!(auth.validate(t), Err(AuthError::InvalidToken));
    }

    #[test]
    fn roles_are_per_user() {
        let auth = Authenticator::new();
        auth.add_user("alice", "pw");
        auth.add_user("bob", "pw");
        auth.grant_role("alice", Role::new("admin")).unwrap();
        assert!(auth.has_role(&Principal::new("alice"), &Role::new("admin")));
        assert!(!auth.has_role(&Principal::new("bob"), &Role::new("admin")));
        assert!(!auth.has_role(&Principal::new("eve"), &Role::new("admin")));
        assert_eq!(
            auth.grant_role("eve", Role::new("admin")),
            Err(AuthError::UnknownUser)
        );
    }

    #[test]
    fn distinct_salts_give_distinct_hashes() {
        // Same password, two users: stored hashes must differ.
        let h1 = credential_hash(1, "pw");
        let h2 = credential_hash(2, "pw");
        assert_ne!(h1, h2);
    }

    #[test]
    fn authentication_aspect_resolves_principal() {
        let auth = Authenticator::shared();
        auth.add_user("alice", "pw");
        let token = auth.login("alice", "pw").unwrap();
        let mut aspect = AuthenticationAspect::new(Arc::clone(&auth));
        let mut cx = ctx();
        cx.insert(token);
        assert!(aspect.precondition(&mut cx).is_resume());
        assert_eq!(cx.principal().unwrap().name(), "alice");
    }

    #[test]
    fn authentication_aspect_aborts_without_token() {
        let auth = Authenticator::shared();
        let mut aspect = AuthenticationAspect::new(auth);
        let mut cx = ctx();
        match aspect.precondition(&mut cx) {
            Verdict::Abort(r) => assert!(r.message().contains("no token")),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn authentication_aspect_aborts_on_bad_token() {
        let auth = Authenticator::shared();
        let mut aspect = AuthenticationAspect::new(auth);
        let mut cx = ctx();
        cx.insert(AuthToken(12345));
        match aspect.precondition(&mut cx) {
            Verdict::Abort(r) => assert!(r.message().contains("invalid token")),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn authorization_aspect_enforces_role() {
        let auth = Authenticator::shared();
        auth.add_user("alice", "pw");
        auth.add_user("bob", "pw");
        auth.grant_role("alice", Role::new("operator")).unwrap();
        let mut aspect = AuthorizationAspect::new(Arc::clone(&auth), Role::new("operator"));

        let mut cx = ctx();
        cx.set_principal(Principal::new("alice"));
        assert!(aspect.precondition(&mut cx).is_resume());

        let mut cx = ctx();
        cx.set_principal(Principal::new("bob"));
        match aspect.precondition(&mut cx) {
            Verdict::Abort(r) => assert!(r.message().contains("lacks role")),
            other => panic!("expected abort, got {other:?}"),
        }

        let mut cx = ctx();
        assert!(aspect.precondition(&mut cx).is_abort());
    }

    #[test]
    fn tokens_are_unique_per_login() {
        let auth = Authenticator::new();
        auth.add_user("alice", "pw");
        let t1 = auth.login("alice", "pw").unwrap();
        let t2 = auth.login("alice", "pw").unwrap();
        assert_ne!(t1, t2);
        assert_eq!(auth.session_count(), 2);
    }
}

//! Performance-metrics aspect: per-method invocation counts, failure
//! counts and latency histograms, collected without touching functional
//! code.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use amf_concurrency::{Clock, SystemClock};
use amf_core::{Aspect, AspectCapabilities, InvocationContext, Outcome, Verdict};
use parking_lot::Mutex;

/// Fixed-boundary latency histogram.
///
/// Buckets are cumulative-style boundaries: a sample lands in the first
/// bucket whose bound is `>=` the sample; an overflow bucket catches the
/// rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<Duration>,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<Duration>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n],
            overflow: 0,
            total: 0,
        }
    }

    /// Eight exponential buckets from 1µs to 100ms — a sensible default
    /// for in-process method latencies.
    pub fn default_latency() -> Self {
        Self::new(
            [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 100_000_000]
                .into_iter()
                .map(Duration::from_micros)
                .collect(),
        )
    }

    /// Records a sample.
    pub fn record(&mut self, sample: Duration) {
        self.total += 1;
        for (i, bound) in self.bounds.iter().enumerate() {
            if sample <= *bound {
                self.counts[i] += 1;
                return;
            }
        }
        self.overflow += 1;
    }

    /// Total recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The approximate `q`-quantile (0.0–1.0): the upper bound of the
    /// bucket containing it, or the last bound for overflow samples.
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(self.bounds[i]);
            }
        }
        self.bounds.last().copied()
    }

    /// (bound, count) pairs plus the overflow count.
    pub fn buckets(&self) -> (Vec<(Duration, u64)>, u64) {
        (
            self.bounds
                .iter()
                .copied()
                .zip(self.counts.iter().copied())
                .collect(),
            self.overflow,
        )
    }
}

/// Aggregate metrics for one participating method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodMetrics {
    /// Completed invocations.
    pub invocations: u64,
    /// Invocations whose outcome was [`Outcome::Failure`].
    pub failures: u64,
    /// Latency from precondition to postaction.
    pub latency: Histogram,
}

impl Default for MethodMetrics {
    fn default() -> Self {
        Self {
            invocations: 0,
            failures: 0,
            latency: Histogram::default_latency(),
        }
    }
}

/// Shared sink for [`MetricsAspect`]s across many methods.
#[derive(Clone, Default)]
pub struct MetricsHub {
    per_method: Arc<Mutex<HashMap<String, MethodMetrics>>>,
}

impl fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsHub")
            .field("methods", &self.per_method.lock().len())
            .finish()
    }
}

impl MetricsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of one method's metrics.
    pub fn method(&self, name: &str) -> Option<MethodMetrics> {
        self.per_method.lock().get(name).cloned()
    }

    /// Snapshot of every method's metrics.
    pub fn all(&self) -> HashMap<String, MethodMetrics> {
        self.per_method.lock().clone()
    }

    fn record(&self, method: &str, elapsed: Duration, failed: bool) {
        let mut map = self.per_method.lock();
        let m = map.entry(method.to_string()).or_default();
        m.invocations += 1;
        if failed {
            m.failures += 1;
        }
        m.latency.record(elapsed);
    }
}

/// Context attribute: when this invocation's precondition ran.
#[derive(Debug, Clone, Copy)]
struct StartedAt(Duration);

/// Measures each activation (precondition → postaction) into a
/// [`MetricsHub`].
pub struct MetricsAspect {
    hub: MetricsHub,
    clock: Arc<dyn Clock>,
}

impl fmt::Debug for MetricsAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsAspect").finish_non_exhaustive()
    }
}

impl MetricsAspect {
    /// Creates the aspect reporting into `hub`, on the system clock.
    pub fn new(hub: MetricsHub) -> Self {
        Self::with_clock(hub, Arc::new(SystemClock::new()))
    }

    /// Same, on a caller-supplied clock.
    pub fn with_clock(hub: MetricsHub, clock: Arc<dyn Clock>) -> Self {
        Self { hub, clock }
    }
}

impl Aspect for MetricsAspect {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        ctx.insert(StartedAt(self.clock.now()));
        Verdict::Resume
    }

    fn postaction(&mut self, ctx: &mut InvocationContext) {
        let elapsed = match ctx.remove::<StartedAt>() {
            Some(StartedAt(t0)) => self.clock.now().saturating_sub(t0),
            None => Duration::ZERO,
        };
        self.hub.record(
            ctx.method().as_str(),
            elapsed,
            ctx.outcome() == Outcome::Failure,
        );
    }

    /// Metrics are an observability sink: the precondition always
    /// resumes (`veto_free`), the hub's histograms are invisible to the
    /// moderator's coordination state (`pure`), and the hub mutex is
    /// bounded, never held across a park (`no_park`). A row of metrics
    /// aspects is therefore fast-lane eligible; CAS-admitted
    /// activations skip the chain and are *not* timed — they remain
    /// visible in the moderator trace and the `fast_path_admits`
    /// counter instead.
    fn capabilities(&self) -> AspectCapabilities {
        AspectCapabilities::all()
    }

    fn describe(&self) -> &str {
        "metrics"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_concurrency::ManualClock;
    use amf_core::MethodId;

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(vec![Duration::from_millis(1), Duration::from_millis(10)]);
        h.record(Duration::from_micros(500));
        h.record(Duration::from_millis(5));
        h.record(Duration::from_secs(1));
        let (buckets, overflow) = h.buckets();
        assert_eq!(buckets[0].1, 1);
        assert_eq!(buckets[1].1, 1);
        assert_eq!(overflow, 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new((1..=10).map(Duration::from_millis).collect::<Vec<_>>());
        for ms in 1..=10 {
            h.record(Duration::from_millis(ms) - Duration::from_micros(1));
        }
        assert_eq!(h.quantile(0.5), Some(Duration::from_millis(5)));
        assert_eq!(h.quantile(1.0), Some(Duration::from_millis(10)));
        assert_eq!(h.quantile(0.0), Some(Duration::from_millis(1)));
        assert_eq!(Histogram::default_latency().quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        let _ = Histogram::new(vec![Duration::from_secs(2), Duration::from_secs(1)]);
    }

    #[test]
    fn aspect_measures_latency_and_failures() {
        let clock = ManualClock::new();
        let hub = MetricsHub::new();
        let mut a = MetricsAspect::with_clock(hub.clone(), Arc::new(clock.clone()));

        let mut cx = InvocationContext::new(MethodId::new("open"), 1);
        a.precondition(&mut cx);
        clock.advance(Duration::from_micros(50));
        a.postaction(&mut cx);

        let mut cx = InvocationContext::new(MethodId::new("open"), 2);
        a.precondition(&mut cx);
        clock.advance(Duration::from_millis(2));
        cx.set_outcome(Outcome::Failure);
        a.postaction(&mut cx);

        let m = hub.method("open").unwrap();
        assert_eq!(m.invocations, 2);
        assert_eq!(m.failures, 1);
        assert_eq!(m.latency.total(), 2);
        assert!(hub.method("assign").is_none());
    }

    #[test]
    fn hub_separates_methods() {
        let hub = MetricsHub::new();
        let mut a = MetricsAspect::new(hub.clone());
        for name in ["open", "assign", "open"] {
            let mut cx = InvocationContext::new(MethodId::new(name), 1);
            a.precondition(&mut cx);
            a.postaction(&mut cx);
        }
        assert_eq!(hub.method("open").unwrap().invocations, 2);
        assert_eq!(hub.method("assign").unwrap().invocations, 1);
        assert_eq!(hub.all().len(), 2);
    }

    #[test]
    fn missing_start_marker_records_zero() {
        // postaction without precondition (defensive path).
        let hub = MetricsHub::new();
        let mut a = MetricsAspect::new(hub.clone());
        let mut cx = InvocationContext::new(MethodId::new("open"), 1);
        a.postaction(&mut cx);
        assert_eq!(hub.method("open").unwrap().invocations, 1);
    }
}

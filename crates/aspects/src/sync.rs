//! Synchronization aspects: the paper's flagship concern.
//!
//! The trouble-ticketing example guards a bounded buffer with
//! `OpenSynchronizationAspect` / `AssignSynchronizationAspect` (paper
//! Figure 7). [`bounded_buffer_sync`] builds that pair generically: a
//! producer-side and a consumer-side aspect sharing one
//! [`BufferSyncState`]. Also here: mutual-exclusion groups and a
//! readers–writer pair.
//!
//! # Reservation protocol
//!
//! The paper's preconditions both *test* and *mutate* ("if not full,
//! increment the counters"). That only works because the precondition
//! runs under the moderator's lock — a resumed precondition is a
//! *reservation*. The subtlety the paper glosses over: a producer slot
//! reserved at pre-activation must not be consumable until the method
//! body actually ran. We therefore track two counters:
//!
//! * `reserved` — slots claimed by producers (incremented at producer
//!   pre, decremented at **consumer post**);
//! * `produced` — items actually committed (incremented at producer
//!   post, decremented at consumer pre).
//!
//! Producers block while `reserved == capacity`; consumers block while
//! `produced == 0`. A single `active` flag per side serializes
//! producers (resp. consumers), mirroring the paper's `ActiveOpen == 0`
//! guard.

use std::fmt;
use std::sync::Arc;

use amf_core::{Aspect, InvocationContext, ReleaseCause, Verdict};
use parking_lot::Mutex;

/// Shared counters of one moderated bounded buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferSyncState {
    /// Maximum number of items.
    pub capacity: usize,
    /// Slots claimed by producers (reserved at pre, freed at consumer
    /// post).
    pub reserved: usize,
    /// Items committed by producer postactions and not yet claimed by a
    /// consumer.
    pub produced: usize,
    /// Whether a producer activation is in flight.
    pub producing: bool,
    /// Whether a consumer activation is in flight.
    pub consuming: bool,
}

impl BufferSyncState {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            reserved: 0,
            produced: 0,
            producing: false,
            consuming: false,
        }
    }
}

/// Read handle onto the shared buffer state, for assertions and
/// monitoring.
#[derive(Debug, Clone)]
pub struct BufferSyncHandle {
    state: Arc<Mutex<BufferSyncState>>,
}

impl BufferSyncHandle {
    /// Snapshot of the current counters.
    pub fn snapshot(&self) -> BufferSyncState {
        *self.state.lock()
    }
}

/// Producer-side synchronization aspect (the paper's
/// `OpenSynchronizationAspect`).
pub struct ProducerSync {
    state: Arc<Mutex<BufferSyncState>>,
}

impl fmt::Debug for ProducerSync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProducerSync")
            .field("state", &*self.state.lock())
            .finish()
    }
}

impl Aspect for ProducerSync {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        let mut st = self.state.lock();
        if st.reserved < st.capacity && !st.producing {
            st.producing = true;
            st.reserved += 1;
            Verdict::Resume
        } else {
            Verdict::Block
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {
        let mut st = self.state.lock();
        st.producing = false;
        st.produced += 1;
    }

    fn on_release(&mut self, _ctx: &InvocationContext, _cause: ReleaseCause) {
        let mut st = self.state.lock();
        st.producing = false;
        st.reserved -= 1;
    }

    fn describe(&self) -> &str {
        "bounded-buffer producer sync"
    }
}

/// Consumer-side synchronization aspect (the paper's
/// `AssignSynchronizationAspect`).
pub struct ConsumerSync {
    state: Arc<Mutex<BufferSyncState>>,
}

impl fmt::Debug for ConsumerSync {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConsumerSync")
            .field("state", &*self.state.lock())
            .finish()
    }
}

impl Aspect for ConsumerSync {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        let mut st = self.state.lock();
        if st.produced > 0 && !st.consuming {
            st.consuming = true;
            st.produced -= 1;
            Verdict::Resume
        } else {
            Verdict::Block
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {
        let mut st = self.state.lock();
        st.consuming = false;
        st.reserved -= 1;
    }

    fn on_release(&mut self, _ctx: &InvocationContext, _cause: ReleaseCause) {
        let mut st = self.state.lock();
        st.consuming = false;
        st.produced += 1;
    }

    fn describe(&self) -> &str {
        "bounded-buffer consumer sync"
    }
}

/// Builds a producer/consumer synchronization pair over a shared bounded
/// buffer of `capacity` slots, plus a read handle for assertions.
///
/// # Panics
///
/// Panics if `capacity` is zero.
///
/// ```
/// use amf_core::{InvocationContext, MethodId, Aspect, Verdict};
/// use amf_aspects::sync::bounded_buffer_sync;
///
/// let (mut producer, mut consumer, handle) = bounded_buffer_sync(1);
/// let mut ctx = InvocationContext::new(MethodId::new("open"), 1);
///
/// // Consumer must block on an empty buffer.
/// assert!(consumer.precondition(&mut ctx).is_block());
/// // Producer reserves the slot, commits at postaction.
/// assert!(producer.precondition(&mut ctx).is_resume());
/// producer.postaction(&mut ctx);
/// assert_eq!(handle.snapshot().produced, 1);
/// // Now the consumer may proceed.
/// assert!(consumer.precondition(&mut ctx).is_resume());
/// ```
pub fn bounded_buffer_sync(capacity: usize) -> (ProducerSync, ConsumerSync, BufferSyncHandle) {
    let group = BufferSyncGroup::new(capacity);
    (
        group.producer_aspect(),
        group.consumer_aspect(),
        group.handle(),
    )
}

/// Factory-friendly face of the bounded-buffer synchronization state:
/// mints any number of producer/consumer aspects over one shared buffer.
///
/// Used by aspect factories (e.g. the trouble-ticketing
/// `TicketSyncFactory`), which create aspects one (method, concern) cell
/// at a time but need both cells to share counters.
#[derive(Debug, Clone)]
pub struct BufferSyncGroup {
    state: Arc<Mutex<BufferSyncState>>,
}

impl BufferSyncGroup {
    /// Creates the shared state for a buffer of `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            state: Arc::new(Mutex::new(BufferSyncState::new(capacity))),
        }
    }

    /// Mints a producer-side aspect.
    pub fn producer_aspect(&self) -> ProducerSync {
        ProducerSync {
            state: Arc::clone(&self.state),
        }
    }

    /// Mints a consumer-side aspect.
    pub fn consumer_aspect(&self) -> ConsumerSync {
        ConsumerSync {
            state: Arc::clone(&self.state),
        }
    }

    /// A read handle for assertions and monitoring.
    pub fn handle(&self) -> BufferSyncHandle {
        BufferSyncHandle {
            state: Arc::clone(&self.state),
        }
    }
}

/// A group of methods that mutually exclude each other: at most one
/// activation across the whole group runs at a time.
///
/// Create one group, then mint one aspect per participating method with
/// [`ExclusionGroup::aspect`].
///
/// ```
/// use amf_core::{Aspect, InvocationContext, MethodId};
/// use amf_aspects::sync::ExclusionGroup;
///
/// let group = ExclusionGroup::new();
/// let mut on_open = group.aspect();
/// let mut on_close = group.aspect();
/// let mut ctx = InvocationContext::new(MethodId::new("open"), 1);
/// assert!(on_open.precondition(&mut ctx).is_resume());
/// assert!(on_close.precondition(&mut ctx).is_block()); // open holds the group
/// on_open.postaction(&mut ctx);
/// assert!(on_close.precondition(&mut ctx).is_resume());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ExclusionGroup {
    busy: Arc<Mutex<bool>>,
}

impl ExclusionGroup {
    /// Creates an idle group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints the exclusion aspect for one method of the group.
    pub fn aspect(&self) -> ExclusionAspect {
        ExclusionAspect {
            busy: Arc::clone(&self.busy),
        }
    }

    /// Whether some activation currently holds the group.
    pub fn is_busy(&self) -> bool {
        *self.busy.lock()
    }
}

/// Mutual-exclusion aspect minted by [`ExclusionGroup::aspect`].
#[derive(Debug)]
pub struct ExclusionAspect {
    busy: Arc<Mutex<bool>>,
}

impl Aspect for ExclusionAspect {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        let mut busy = self.busy.lock();
        if *busy {
            Verdict::Block
        } else {
            *busy = true;
            Verdict::Resume
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {
        *self.busy.lock() = false;
    }

    fn on_release(&mut self, _ctx: &InvocationContext, _cause: ReleaseCause) {
        *self.busy.lock() = false;
    }

    fn describe(&self) -> &str {
        "mutual exclusion"
    }
}

/// A counting gate shared by a group of methods: at most `limit`
/// activations across the group run concurrently (the counting
/// generalization of [`ExclusionGroup`]).
///
/// ```
/// use amf_core::{Aspect, InvocationContext, MethodId};
/// use amf_aspects::sync::ConcurrencyLimitGroup;
///
/// let group = ConcurrencyLimitGroup::new(2);
/// let mut a = group.aspect();
/// let mut ctx = InvocationContext::new(MethodId::new("m"), 1);
/// assert!(a.precondition(&mut ctx).is_resume());
/// assert!(a.precondition(&mut ctx).is_resume());
/// assert!(a.precondition(&mut ctx).is_block());
/// ```
#[derive(Debug, Clone)]
pub struct ConcurrencyLimitGroup {
    state: Arc<Mutex<(usize, usize)>>, // (running, limit)
}

impl ConcurrencyLimitGroup {
    /// Creates a gate admitting `limit` concurrent activations.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "concurrency limit must be positive");
        Self {
            state: Arc::new(Mutex::new((0, limit))),
        }
    }

    /// Mints the limiting aspect for one method of the group.
    pub fn aspect(&self) -> ConcurrencyLimitAspect {
        ConcurrencyLimitAspect {
            state: Arc::clone(&self.state),
        }
    }

    /// Activations currently inside the gate.
    pub fn running(&self) -> usize {
        self.state.lock().0
    }
}

/// Counting-gate aspect minted by [`ConcurrencyLimitGroup::aspect`].
#[derive(Debug)]
pub struct ConcurrencyLimitAspect {
    state: Arc<Mutex<(usize, usize)>>,
}

impl Aspect for ConcurrencyLimitAspect {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        let mut st = self.state.lock();
        if st.0 < st.1 {
            st.0 += 1;
            Verdict::Resume
        } else {
            Verdict::Block
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {
        self.state.lock().0 -= 1;
    }

    fn on_release(&mut self, _ctx: &InvocationContext, _cause: ReleaseCause) {
        self.state.lock().0 -= 1;
    }

    fn describe(&self) -> &str {
        "concurrency limit"
    }
}

#[derive(Debug, Default)]
struct RwState {
    readers: usize,
    writer: bool,
}

/// Coordinates a reader/writer method pair: any number of concurrent
/// readers, writers exclusive.
#[derive(Debug, Clone, Default)]
pub struct ReadersWriterGroup {
    state: Arc<Mutex<RwState>>,
}

impl ReadersWriterGroup {
    /// Creates an idle group.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints the aspect guarding a *reading* method.
    pub fn read_aspect(&self) -> ReadAspect {
        ReadAspect {
            state: Arc::clone(&self.state),
        }
    }

    /// Mints the aspect guarding a *writing* method.
    pub fn write_aspect(&self) -> WriteAspect {
        WriteAspect {
            state: Arc::clone(&self.state),
        }
    }

    /// (readers active, writer active) right now.
    pub fn load(&self) -> (usize, bool) {
        let st = self.state.lock();
        (st.readers, st.writer)
    }
}

/// Reader-side aspect minted by [`ReadersWriterGroup::read_aspect`].
#[derive(Debug)]
pub struct ReadAspect {
    state: Arc<Mutex<RwState>>,
}

impl Aspect for ReadAspect {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        let mut st = self.state.lock();
        if st.writer {
            Verdict::Block
        } else {
            st.readers += 1;
            Verdict::Resume
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {
        self.state.lock().readers -= 1;
    }

    fn on_release(&mut self, _ctx: &InvocationContext, _cause: ReleaseCause) {
        self.state.lock().readers -= 1;
    }

    fn describe(&self) -> &str {
        "readers-writer: read"
    }
}

/// Writer-side aspect minted by [`ReadersWriterGroup::write_aspect`].
#[derive(Debug)]
pub struct WriteAspect {
    state: Arc<Mutex<RwState>>,
}

impl Aspect for WriteAspect {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        let mut st = self.state.lock();
        if st.writer || st.readers > 0 {
            Verdict::Block
        } else {
            st.writer = true;
            Verdict::Resume
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {
        self.state.lock().writer = false;
    }

    fn on_release(&mut self, _ctx: &InvocationContext, _cause: ReleaseCause) {
        self.state.lock().writer = false;
    }

    fn describe(&self) -> &str {
        "readers-writer: write"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_core::MethodId;

    fn ctx() -> InvocationContext {
        InvocationContext::new(MethodId::new("m"), 1)
    }

    #[test]
    fn producer_blocks_at_capacity() {
        let (mut p, _c, h) = bounded_buffer_sync(2);
        let mut cx = ctx();
        assert!(p.precondition(&mut cx).is_resume());
        p.postaction(&mut cx);
        assert!(p.precondition(&mut cx).is_resume());
        p.postaction(&mut cx);
        assert!(p.precondition(&mut cx).is_block());
        assert_eq!(h.snapshot().reserved, 2);
        assert_eq!(h.snapshot().produced, 2);
    }

    #[test]
    fn consumer_blocks_when_empty_and_frees_slots() {
        let (mut p, mut c, h) = bounded_buffer_sync(1);
        let mut cx = ctx();
        assert!(c.precondition(&mut cx).is_block());
        p.precondition(&mut cx);
        p.postaction(&mut cx);
        assert!(c.precondition(&mut cx).is_resume());
        // Slot frees only at consumer postaction.
        assert!(p.precondition(&mut cx).is_block());
        c.postaction(&mut cx);
        assert!(p.precondition(&mut cx).is_resume());
        let snap = h.snapshot();
        assert_eq!(snap.reserved, 1); // the new producer reservation
        assert_eq!(snap.produced, 0);
    }

    #[test]
    fn reserved_slot_is_not_consumable_before_commit() {
        let (mut p, mut c, _h) = bounded_buffer_sync(4);
        let mut cx = ctx();
        assert!(p.precondition(&mut cx).is_resume()); // reserved, NOT committed
        assert!(
            c.precondition(&mut cx).is_block(),
            "consumer must not see an uncommitted item"
        );
        p.postaction(&mut cx);
        assert!(c.precondition(&mut cx).is_resume());
    }

    #[test]
    fn producers_are_serialized_by_active_flag() {
        let (mut p, _c, h) = bounded_buffer_sync(8);
        let mut cx = ctx();
        assert!(p.precondition(&mut cx).is_resume());
        // Second producer pre while first still in flight: blocked even
        // with capacity to spare (paper's ActiveOpen == 0 guard).
        assert!(p.precondition(&mut cx).is_block());
        assert!(h.snapshot().producing);
        p.postaction(&mut cx);
        assert!(p.precondition(&mut cx).is_resume());
    }

    #[test]
    fn producer_release_undoes_reservation() {
        let (mut p, _c, h) = bounded_buffer_sync(1);
        let mut cx = ctx();
        assert!(p.precondition(&mut cx).is_resume());
        p.on_release(&cx, ReleaseCause::Aborted);
        let snap = h.snapshot();
        assert_eq!(snap.reserved, 0);
        assert!(!snap.producing);
        // The slot is available again.
        assert!(p.precondition(&mut cx).is_resume());
    }

    #[test]
    fn consumer_release_returns_item() {
        let (mut p, mut c, h) = bounded_buffer_sync(1);
        let mut cx = ctx();
        p.precondition(&mut cx);
        p.postaction(&mut cx);
        assert!(c.precondition(&mut cx).is_resume());
        c.on_release(&cx, ReleaseCause::Blocked);
        assert_eq!(h.snapshot().produced, 1, "item handed back");
        assert!(c.precondition(&mut cx).is_resume());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = bounded_buffer_sync(0);
    }

    #[test]
    fn exclusion_group_serializes() {
        let g = ExclusionGroup::new();
        let mut a = g.aspect();
        let mut b = g.aspect();
        let mut cx = ctx();
        assert!(!g.is_busy());
        assert!(a.precondition(&mut cx).is_resume());
        assert!(g.is_busy());
        assert!(b.precondition(&mut cx).is_block());
        a.postaction(&mut cx);
        assert!(b.precondition(&mut cx).is_resume());
        b.on_release(&cx, ReleaseCause::Blocked);
        assert!(!g.is_busy());
    }

    #[test]
    fn readers_share_writers_exclude() {
        let g = ReadersWriterGroup::new();
        let mut r1 = g.read_aspect();
        let mut r2 = g.read_aspect();
        let mut w = g.write_aspect();
        let mut cx = ctx();
        assert!(r1.precondition(&mut cx).is_resume());
        assert!(r2.precondition(&mut cx).is_resume());
        assert_eq!(g.load(), (2, false));
        assert!(w.precondition(&mut cx).is_block());
        r1.postaction(&mut cx);
        r2.postaction(&mut cx);
        assert!(w.precondition(&mut cx).is_resume());
        assert!(
            r1.precondition(&mut cx).is_block(),
            "writer excludes readers"
        );
        w.postaction(&mut cx);
        assert!(r1.precondition(&mut cx).is_resume());
        r1.on_release(&cx, ReleaseCause::Aborted);
        assert_eq!(g.load(), (0, false));
    }

    #[test]
    fn writer_release_clears_flag() {
        let g = ReadersWriterGroup::new();
        let mut w = g.write_aspect();
        let mut cx = ctx();
        assert!(w.precondition(&mut cx).is_resume());
        w.on_release(&cx, ReleaseCause::Blocked);
        assert_eq!(g.load(), (0, false));
    }

    #[test]
    fn concurrency_limit_counts() {
        let g = ConcurrencyLimitGroup::new(2);
        let mut a = g.aspect();
        let mut b = g.aspect();
        let mut cx = ctx();
        assert!(a.precondition(&mut cx).is_resume());
        assert!(b.precondition(&mut cx).is_resume());
        assert_eq!(g.running(), 2);
        assert!(a.precondition(&mut cx).is_block());
        b.postaction(&mut cx);
        assert!(a.precondition(&mut cx).is_resume());
        a.on_release(&cx, ReleaseCause::Blocked);
        a.postaction(&mut cx);
        assert_eq!(g.running(), 0);
    }

    #[test]
    #[should_panic(expected = "limit must be positive")]
    fn zero_concurrency_limit_rejected() {
        let _ = ConcurrencyLimitGroup::new(0);
    }

    #[test]
    fn describe_strings() {
        let (p, c, _h) = bounded_buffer_sync(1);
        assert!(p.describe().contains("producer"));
        assert!(c.describe().contains("consumer"));
        assert!(ExclusionGroup::new()
            .aspect()
            .describe()
            .contains("exclusion"));
    }
}

//! Per-principal quota aspect: limits how many activations each caller
//! may perform, optionally within a sliding window.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use amf_concurrency::{Clock, SystemClock};
use amf_core::{Aspect, InvocationContext, ReleaseCause, Verdict};

/// Per-principal usage quota.
///
/// Each authenticated principal may perform at most `limit` activations;
/// with a window configured, usage resets every `window`. Activations
/// without a principal are aborted — register an authentication aspect
/// *around* this one.
///
/// The usage counter increments at precondition (a reservation) and is
/// handed back by `on_release` if a later aspect blocks or aborts the
/// activation.
pub struct QuotaAspect {
    default_limit: u64,
    overrides: HashMap<String, u64>,
    used: HashMap<String, u64>,
    window: Option<Duration>,
    window_start: Duration,
    clock: Arc<dyn Clock>,
}

impl fmt::Debug for QuotaAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QuotaAspect")
            .field("default_limit", &self.default_limit)
            .field("overrides", &self.overrides.len())
            .field("window", &self.window)
            .finish()
    }
}

impl QuotaAspect {
    /// A quota of `limit` activations per principal, never resetting.
    pub fn new(limit: u64) -> Self {
        Self::with_clock(limit, Arc::new(SystemClock::new()))
    }

    /// Same, on a caller-supplied clock.
    pub fn with_clock(limit: u64, clock: Arc<dyn Clock>) -> Self {
        let now = clock.now();
        Self {
            default_limit: limit,
            overrides: HashMap::new(),
            used: HashMap::new(),
            window: None,
            window_start: now,
            clock,
        }
    }

    /// Resets all usage every `window` (builder style).
    #[must_use]
    pub fn with_window(mut self, window: Duration) -> Self {
        self.window = Some(window);
        self
    }

    /// Overrides the limit for one principal (builder style).
    #[must_use]
    pub fn with_limit_for(mut self, principal: &str, limit: u64) -> Self {
        self.overrides.insert(principal.to_string(), limit);
        self
    }

    /// Usage recorded for `principal` in the current window.
    pub fn used_by(&self, principal: &str) -> u64 {
        self.used.get(principal).copied().unwrap_or(0)
    }

    fn roll_window(&mut self) {
        if let Some(window) = self.window {
            let now = self.clock.now();
            if now.saturating_sub(self.window_start) >= window {
                self.used.clear();
                self.window_start = now;
            }
        }
    }

    fn limit_for(&self, principal: &str) -> u64 {
        self.overrides
            .get(principal)
            .copied()
            .unwrap_or(self.default_limit)
    }
}

impl Aspect for QuotaAspect {
    fn precondition(&mut self, ctx: &mut InvocationContext) -> Verdict {
        self.roll_window();
        let Some(principal) = ctx.principal() else {
            return Verdict::abort("quota requires an authenticated principal");
        };
        let name = principal.name().to_string();
        let limit = self.limit_for(&name);
        let used = self.used.entry(name).or_insert(0);
        if *used >= limit {
            Verdict::abort(format!("quota exceeded ({limit} per window)"))
        } else {
            *used += 1;
            Verdict::Resume
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {}

    fn on_release(&mut self, ctx: &InvocationContext, _cause: ReleaseCause) {
        if let Some(principal) = ctx.principal() {
            if let Some(used) = self.used.get_mut(principal.name()) {
                *used = used.saturating_sub(1);
            }
        }
    }

    fn describe(&self) -> &str {
        "quota"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_concurrency::ManualClock;
    use amf_core::{MethodId, Principal};

    fn ctx_as(name: &str) -> InvocationContext {
        InvocationContext::new(MethodId::new("m"), 1).with_principal(Principal::new(name))
    }

    #[test]
    fn enforces_default_limit_per_principal() {
        let mut q = QuotaAspect::new(2);
        assert!(q.precondition(&mut ctx_as("alice")).is_resume());
        assert!(q.precondition(&mut ctx_as("alice")).is_resume());
        assert!(q.precondition(&mut ctx_as("alice")).is_abort());
        // Bob has his own budget.
        assert!(q.precondition(&mut ctx_as("bob")).is_resume());
        assert_eq!(q.used_by("alice"), 2);
        assert_eq!(q.used_by("bob"), 1);
    }

    #[test]
    fn per_principal_override() {
        let mut q = QuotaAspect::new(1).with_limit_for("vip", 3);
        assert!(q.precondition(&mut ctx_as("vip")).is_resume());
        assert!(q.precondition(&mut ctx_as("vip")).is_resume());
        assert!(q.precondition(&mut ctx_as("vip")).is_resume());
        assert!(q.precondition(&mut ctx_as("vip")).is_abort());
        assert!(q.precondition(&mut ctx_as("pleb")).is_resume());
        assert!(q.precondition(&mut ctx_as("pleb")).is_abort());
    }

    #[test]
    fn anonymous_callers_are_rejected() {
        let mut q = QuotaAspect::new(10);
        let mut anon = InvocationContext::new(MethodId::new("m"), 1);
        match q.precondition(&mut anon) {
            Verdict::Abort(r) => assert!(r.message().contains("authenticated")),
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn window_resets_usage() {
        let clock = ManualClock::new();
        let mut q = QuotaAspect::with_clock(1, Arc::new(clock.clone()))
            .with_window(Duration::from_secs(60));
        assert!(q.precondition(&mut ctx_as("alice")).is_resume());
        assert!(q.precondition(&mut ctx_as("alice")).is_abort());
        clock.advance(Duration::from_secs(61));
        assert!(q.precondition(&mut ctx_as("alice")).is_resume());
        assert_eq!(q.used_by("alice"), 1);
    }

    #[test]
    fn release_refunds_usage() {
        let mut q = QuotaAspect::new(1);
        let cx = ctx_as("alice");
        let mut cx2 = ctx_as("alice");
        assert!(q.precondition(&mut cx2).is_resume());
        q.on_release(&cx, ReleaseCause::Blocked);
        assert_eq!(q.used_by("alice"), 0);
        assert!(q.precondition(&mut cx2).is_resume());
    }

    #[test]
    fn release_without_usage_is_safe() {
        let mut q = QuotaAspect::new(1);
        q.on_release(&ctx_as("ghost"), ReleaseCause::Aborted);
        assert_eq!(q.used_by("ghost"), 0);
    }
}

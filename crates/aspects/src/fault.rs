//! Fault-tolerance aspects.
//!
//! "Fault tolerance" heads the paper's list of interaction properties.
//! [`CircuitBreakerAspect`] stops calling a failing method until a
//! cooldown elapses; [`FailureInjectionAspect`] aborts and
//! [`PanicInjectionAspect`] panics a configurable fraction of
//! activations, for chaos-style testing of composed systems. Both
//! injectors are seeded (see [`chaos_seed`]) and count the faults they
//! actually fired, so a chaos run can assert its injection tally
//! against the moderator's accounting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amf_concurrency::{Clock, SystemClock};
use amf_core::{Aspect, InvocationContext, Outcome, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Observable state of a circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CircuitState {
    /// Traffic flows; failures are counted.
    Closed,
    /// Traffic is rejected until the cooldown elapses.
    Open,
    /// One probe activation is allowed through; its outcome decides.
    HalfOpen,
}

/// Classic three-state circuit breaker driven by the invocation
/// [`Outcome`] recorded by `Moderated::invoke_fallible`.
///
/// * `Closed`: resume everything; `threshold` *consecutive* failures trip
///   the breaker.
/// * `Open`: abort everything until `cooldown` has elapsed, then move to
///   `HalfOpen`.
/// * `HalfOpen`: let one probe through (others abort); success closes
///   the breaker, failure re-opens it.
pub struct CircuitBreakerAspect {
    threshold: u32,
    cooldown: Duration,
    clock: Arc<dyn Clock>,
    state: CircuitState,
    consecutive_failures: u32,
    opened_at: Duration,
    probing: bool,
}

impl fmt::Debug for CircuitBreakerAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CircuitBreakerAspect")
            .field("state", &self.state)
            .field("consecutive_failures", &self.consecutive_failures)
            .field("threshold", &self.threshold)
            .field("cooldown", &self.cooldown)
            .finish()
    }
}

impl CircuitBreakerAspect {
    /// Creates a closed breaker tripping after `threshold` consecutive
    /// failures and cooling down for `cooldown`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        Self::with_clock(threshold, cooldown, Arc::new(SystemClock::new()))
    }

    /// Same, on a caller-supplied clock (tests).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn with_clock(threshold: u32, cooldown: Duration, clock: Arc<dyn Clock>) -> Self {
        assert!(threshold > 0, "breaker threshold must be positive");
        Self {
            threshold,
            cooldown,
            clock,
            state: CircuitState::Closed,
            consecutive_failures: 0,
            opened_at: Duration::ZERO,
            probing: false,
        }
    }

    /// The breaker's current state (as of its last transition; an `Open`
    /// breaker whose cooldown has elapsed reports `Open` until the next
    /// activation probes it).
    pub fn state(&self) -> CircuitState {
        self.state
    }
}

impl Aspect for CircuitBreakerAspect {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        match self.state {
            CircuitState::Closed => Verdict::Resume,
            CircuitState::Open => {
                if self.clock.now().saturating_sub(self.opened_at) >= self.cooldown {
                    self.state = CircuitState::HalfOpen;
                    self.probing = true;
                    Verdict::Resume
                } else {
                    Verdict::abort("circuit open")
                }
            }
            CircuitState::HalfOpen => {
                if self.probing {
                    Verdict::abort("circuit half-open: probe in flight")
                } else {
                    self.probing = true;
                    Verdict::Resume
                }
            }
        }
    }

    fn postaction(&mut self, ctx: &mut InvocationContext) {
        let failed = ctx.outcome() == Outcome::Failure;
        match self.state {
            CircuitState::Closed => {
                if failed {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.threshold {
                        self.state = CircuitState::Open;
                        self.opened_at = self.clock.now();
                    }
                } else {
                    self.consecutive_failures = 0;
                }
            }
            CircuitState::HalfOpen => {
                self.probing = false;
                if failed {
                    self.state = CircuitState::Open;
                    self.opened_at = self.clock.now();
                } else {
                    self.state = CircuitState::Closed;
                    self.consecutive_failures = 0;
                }
            }
            CircuitState::Open => {
                // Unreachable in normal operation (Open aborts), but a
                // guard completed out-of-band is treated as a probe.
                if !failed {
                    self.state = CircuitState::Closed;
                    self.consecutive_failures = 0;
                }
            }
        }
    }

    fn on_release(&mut self, _ctx: &InvocationContext, _cause: amf_core::ReleaseCause) {
        if self.state == CircuitState::HalfOpen {
            self.probing = false;
        }
    }

    fn describe(&self) -> &str {
        "circuit breaker"
    }
}

/// The seed for deterministic chaos runs: `AMF_CHAOS_SEED` from the
/// environment when set (mirroring `AMF_FAIRNESS_SEED` for the fairness
/// stress tests), else `default`. Unparsable values fall back to
/// `default` rather than silently reseeding from zero. Thin wrapper
/// over [`amf_verify::seed_from_env`], the workspace's single seed
/// entry point.
pub fn chaos_seed(default: u64) -> u64 {
    amf_verify::seed_from_env("AMF_CHAOS_SEED", default)
}

/// Aborts a pseudo-random fraction of activations — failure injection
/// for testing how composed systems behave under faults. Deterministic
/// for a given seed ([`chaos_seed`] wires in `AMF_CHAOS_SEED`), and
/// counts every abort it injects so a chaos run can assert how many
/// faults actually fired once the aspect is boxed away.
pub struct FailureInjectionAspect {
    rng: StdRng,
    probability: f64,
    injected: Arc<AtomicU64>,
}

impl fmt::Debug for FailureInjectionAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FailureInjectionAspect")
            .field("probability", &self.probability)
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

impl FailureInjectionAspect {
    /// Aborts each activation with probability `probability` (clamped to
    /// `[0, 1]`), seeded for reproducibility.
    pub fn new(probability: f64, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            probability: probability.clamp(0.0, 1.0),
            injected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Shared handle on the injected-abort counter; clone it before
    /// registering the aspect (registration boxes the aspect away).
    pub fn counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.injected)
    }

    /// How many aborts this aspect has injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl Aspect for FailureInjectionAspect {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        if self.rng.gen::<f64>() < self.probability {
            self.injected.fetch_add(1, Ordering::Relaxed);
            Verdict::abort("injected failure")
        } else {
            Verdict::Resume
        }
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {}

    fn describe(&self) -> &str {
        "failure injection"
    }
}

/// Panics a pseudo-random fraction of aspect callbacks — the chaos
/// companion to [`FailureInjectionAspect`] for exercising the
/// moderator's fault containment (`PanicPolicy`). Preconditions and
/// postactions misfire at independent configurable rates; the counter
/// is bumped *before* the unwind so the tally is exact even though the
/// panic aborts the callback.
pub struct PanicInjectionAspect {
    rng: StdRng,
    pre_rate: f64,
    post_rate: f64,
    injected: Arc<AtomicU64>,
}

impl fmt::Debug for PanicInjectionAspect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PanicInjectionAspect")
            .field("pre_rate", &self.pre_rate)
            .field("post_rate", &self.post_rate)
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

impl PanicInjectionAspect {
    /// Panics in `precondition` with probability `pre_rate` and in
    /// `postaction` with probability `post_rate` (each clamped to
    /// `[0, 1]`), seeded for reproducibility.
    pub fn new(pre_rate: f64, post_rate: f64, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            pre_rate: pre_rate.clamp(0.0, 1.0),
            post_rate: post_rate.clamp(0.0, 1.0),
            injected: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Shared handle on the injected-panic counter; clone it before
    /// registering the aspect.
    pub fn counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.injected)
    }

    /// How many panics this aspect has injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }
}

impl Aspect for PanicInjectionAspect {
    fn precondition(&mut self, _ctx: &mut InvocationContext) -> Verdict {
        if self.rng.gen::<f64>() < self.pre_rate {
            self.injected.fetch_add(1, Ordering::Relaxed);
            panic!("injected panic (precondition)");
        }
        Verdict::Resume
    }

    fn postaction(&mut self, _ctx: &mut InvocationContext) {
        if self.rng.gen::<f64>() < self.post_rate {
            self.injected.fetch_add(1, Ordering::Relaxed);
            panic!("injected panic (postaction)");
        }
    }

    fn describe(&self) -> &str {
        "panic injection"
    }
}

/// Caller-side retry policy companion to the aspects above: retries an
/// operation whose activation was *vetoed transiently* (timeout, open
/// circuit), leaving domain errors and permanent vetoes alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts (including the first).
    pub attempts: u32,
    /// Whether a veto by the fault-tolerance concern (open breaker) is
    /// worth retrying; timeouts always are.
    pub retry_on_open_circuit: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 3,
            retry_on_open_circuit: false,
        }
    }
}

impl RetryPolicy {
    /// Whether `err` is transient under this policy.
    pub fn is_retryable(&self, err: &amf_core::AbortError) -> bool {
        if err.is_timeout() {
            return true;
        }
        self.retry_on_open_circuit && err.concern() == Some(&amf_core::Concern::fault_tolerance())
    }
}

/// Runs `op` up to `policy.attempts` times, retrying transient vetoes.
/// `between` runs before each retry (backoff, advancing a test clock).
///
/// # Errors
///
/// The last veto if every attempt failed transiently, or the first
/// non-retryable veto immediately.
///
/// ```
/// use amf_aspects::fault::{retry, RetryPolicy};
/// use amf_core::{AbortError, MethodId};
///
/// let mut failures_left = 2;
/// let result = retry(RetryPolicy { attempts: 3, ..RetryPolicy::default() },
///     || {
///         if failures_left > 0 {
///             failures_left -= 1;
///             Err(AbortError::Timeout { method: MethodId::new("op") })
///         } else {
///             Ok(42)
///         }
///     },
///     || {},
/// );
/// assert_eq!(result.unwrap(), 42);
/// ```
pub fn retry<R>(
    policy: RetryPolicy,
    mut op: impl FnMut() -> Result<R, amf_core::AbortError>,
    mut between: impl FnMut(),
) -> Result<R, amf_core::AbortError> {
    let mut last_err = None;
    for attempt in 0..policy.attempts.max(1) {
        if attempt > 0 {
            between();
        }
        match op() {
            Ok(r) => return Ok(r),
            Err(e) if policy.is_retryable(&e) => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last_err.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amf_concurrency::ManualClock;
    use amf_core::MethodId;

    fn ctx() -> InvocationContext {
        InvocationContext::new(MethodId::new("m"), 1)
    }

    fn run_once(a: &mut CircuitBreakerAspect, outcome: Outcome) -> Verdict {
        let mut c = ctx();
        let v = a.precondition(&mut c);
        if v.is_resume() {
            c.set_outcome(outcome);
            a.postaction(&mut c);
        }
        v
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let clock = ManualClock::new();
        let mut a =
            CircuitBreakerAspect::with_clock(3, Duration::from_secs(10), Arc::new(clock.clone()));
        assert!(run_once(&mut a, Outcome::Failure).is_resume());
        assert!(run_once(&mut a, Outcome::Failure).is_resume());
        assert_eq!(a.state(), CircuitState::Closed);
        assert!(run_once(&mut a, Outcome::Failure).is_resume());
        assert_eq!(a.state(), CircuitState::Open);
        assert!(run_once(&mut a, Outcome::Success).is_abort());
    }

    #[test]
    fn success_resets_failure_streak() {
        let clock = ManualClock::new();
        let mut a =
            CircuitBreakerAspect::with_clock(2, Duration::from_secs(10), Arc::new(clock.clone()));
        run_once(&mut a, Outcome::Failure);
        run_once(&mut a, Outcome::Success);
        run_once(&mut a, Outcome::Failure);
        assert_eq!(a.state(), CircuitState::Closed);
    }

    #[test]
    fn half_open_probe_success_closes() {
        let clock = ManualClock::new();
        let mut a =
            CircuitBreakerAspect::with_clock(1, Duration::from_secs(5), Arc::new(clock.clone()));
        run_once(&mut a, Outcome::Failure);
        assert_eq!(a.state(), CircuitState::Open);
        clock.advance(Duration::from_secs(5));
        assert!(run_once(&mut a, Outcome::Success).is_resume());
        assert_eq!(a.state(), CircuitState::Closed);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let clock = ManualClock::new();
        let mut a =
            CircuitBreakerAspect::with_clock(1, Duration::from_secs(5), Arc::new(clock.clone()));
        run_once(&mut a, Outcome::Failure);
        clock.advance(Duration::from_secs(5));
        assert!(run_once(&mut a, Outcome::Failure).is_resume());
        assert_eq!(a.state(), CircuitState::Open);
        // Cooldown restarts from the re-open.
        clock.advance(Duration::from_secs(4));
        assert!(run_once(&mut a, Outcome::Success).is_abort());
        clock.advance(Duration::from_secs(1));
        assert!(run_once(&mut a, Outcome::Success).is_resume());
        assert_eq!(a.state(), CircuitState::Closed);
    }

    #[test]
    fn half_open_admits_single_probe() {
        let clock = ManualClock::new();
        let mut a =
            CircuitBreakerAspect::with_clock(1, Duration::from_secs(1), Arc::new(clock.clone()));
        run_once(&mut a, Outcome::Failure);
        clock.advance(Duration::from_secs(1));
        let mut probe_ctx = ctx();
        assert!(a.precondition(&mut probe_ctx).is_resume());
        // Second caller while the probe is in flight: rejected.
        let mut second = ctx();
        assert!(a.precondition(&mut second).is_abort());
        probe_ctx.set_outcome(Outcome::Success);
        a.postaction(&mut probe_ctx);
        assert_eq!(a.state(), CircuitState::Closed);
    }

    #[test]
    fn released_probe_frees_the_probe_slot() {
        let clock = ManualClock::new();
        let mut a =
            CircuitBreakerAspect::with_clock(1, Duration::from_secs(1), Arc::new(clock.clone()));
        run_once(&mut a, Outcome::Failure);
        clock.advance(Duration::from_secs(1));
        let mut probe_ctx = ctx();
        assert!(a.precondition(&mut probe_ctx).is_resume());
        a.on_release(&probe_ctx, amf_core::ReleaseCause::Aborted);
        let mut retry = ctx();
        assert!(a.precondition(&mut retry).is_resume());
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        let _ = CircuitBreakerAspect::new(0, Duration::from_secs(1));
    }

    #[test]
    fn retry_gives_up_after_attempts() {
        let mut calls = 0;
        let r: Result<(), _> = retry(
            RetryPolicy {
                attempts: 3,
                ..RetryPolicy::default()
            },
            || {
                calls += 1;
                Err(amf_core::AbortError::Timeout {
                    method: MethodId::new("op"),
                })
            },
            || {},
        );
        assert!(r.unwrap_err().is_timeout());
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_stops_on_permanent_veto() {
        let mut calls = 0;
        let r: Result<(), _> = retry(
            RetryPolicy::default(),
            || {
                calls += 1;
                Err(amf_core::AbortError::Aspect {
                    method: MethodId::new("op"),
                    concern: amf_core::Concern::authentication(),
                    reason: "bad token".into(),
                })
            },
            || {},
        );
        assert!(!r.unwrap_err().is_timeout());
        assert_eq!(calls, 1, "authentication failures are not transient");
    }

    #[test]
    fn retry_open_circuit_is_policy_gated() {
        let open_circuit_err = || amf_core::AbortError::Aspect {
            method: MethodId::new("op"),
            concern: amf_core::Concern::fault_tolerance(),
            reason: "circuit open".into(),
        };
        let strict = RetryPolicy::default();
        assert!(!strict.is_retryable(&open_circuit_err()));
        let lenient = RetryPolicy {
            retry_on_open_circuit: true,
            ..RetryPolicy::default()
        };
        assert!(lenient.is_retryable(&open_circuit_err()));
    }

    #[test]
    fn retry_composes_with_breaker_and_clock() {
        // End-to-end: breaker opens after 1 failure; retry with a
        // between-hook that advances the clock past the cooldown wins.
        let clock = ManualClock::new();
        let moderator = amf_core::AspectModerator::shared();
        let op = moderator.declare_method(MethodId::new("op"));
        moderator
            .register(
                &op,
                amf_core::Concern::fault_tolerance(),
                Box::new(CircuitBreakerAspect::with_clock(
                    1,
                    Duration::from_secs(5),
                    Arc::new(clock.clone()),
                )),
            )
            .unwrap();
        let proxy = amf_core::Moderated::new(0_u32, Arc::clone(&moderator));
        // Trip the breaker.
        let r: Result<(), &str> = proxy.invoke_fallible(&op, |_| Err("boom")).unwrap();
        assert!(r.is_err());
        // Retry through the open circuit, advancing time between tries.
        let result = retry(
            RetryPolicy {
                attempts: 2,
                retry_on_open_circuit: true,
            },
            || proxy.invoke(&op, |c| *c += 1),
            || clock.advance(Duration::from_secs(5)),
        );
        assert!(result.is_ok());
    }

    #[test]
    fn injection_rate_matches_probability() {
        let mut a = FailureInjectionAspect::new(0.3, 42);
        let mut aborted = 0;
        for _ in 0..10_000 {
            if a.precondition(&mut ctx()).is_abort() {
                aborted += 1;
            }
        }
        let rate = f64::from(aborted) / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate was {rate}");
    }

    #[test]
    fn injection_extremes() {
        let mut never = FailureInjectionAspect::new(0.0, 1);
        let mut always = FailureInjectionAspect::new(1.0, 1);
        for _ in 0..100 {
            assert!(never.precondition(&mut ctx()).is_resume());
            assert!(always.precondition(&mut ctx()).is_abort());
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut a = FailureInjectionAspect::new(0.5, seed);
            (0..64)
                .map(|_| a.precondition(&mut ctx()).is_abort())
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn injection_counter_matches_fired_aborts() {
        let mut a = FailureInjectionAspect::new(0.5, 99);
        let counter = a.counter();
        let mut aborted = 0_u64;
        for _ in 0..1_000 {
            if a.precondition(&mut ctx()).is_abort() {
                aborted += 1;
            }
        }
        assert_eq!(a.injected(), aborted);
        assert_eq!(counter.load(Ordering::Relaxed), aborted);
        assert!(aborted > 0);
    }

    #[test]
    fn panic_injection_counts_exactly_what_it_fires() {
        let mut a = PanicInjectionAspect::new(0.3, 0.3, 1234);
        let counter = a.counter();
        let mut pre_panics = 0_u64;
        let mut post_panics = 0_u64;
        for _ in 0..500 {
            let mut c = ctx();
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.precondition(&mut c)))
                .is_err()
            {
                pre_panics += 1;
            }
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.postaction(&mut c)))
                .is_err()
            {
                post_panics += 1;
            }
        }
        assert!(pre_panics > 0 && post_panics > 0);
        assert_eq!(counter.load(Ordering::Relaxed), pre_panics + post_panics);
    }

    #[test]
    fn panic_injection_is_deterministic_per_seed() {
        let collect = |seed| {
            let mut a = PanicInjectionAspect::new(0.5, 0.0, seed);
            (0..64)
                .map(|_| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        a.precondition(&mut ctx())
                    }))
                    .is_err()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn panic_injection_zero_rate_never_fires() {
        let mut a = PanicInjectionAspect::new(0.0, 0.0, 5);
        for _ in 0..200 {
            let mut c = ctx();
            assert!(a.precondition(&mut c).is_resume());
            a.postaction(&mut c);
        }
        assert_eq!(a.injected(), 0);
    }

    #[test]
    fn chaos_seed_prefers_env() {
        // Process-global env var: restore it so parallel tests in this
        // binary are unaffected.
        let prior = std::env::var("AMF_CHAOS_SEED").ok();
        std::env::set_var("AMF_CHAOS_SEED", "31337");
        assert_eq!(chaos_seed(1), 31337);
        std::env::set_var("AMF_CHAOS_SEED", "not-a-number");
        assert_eq!(chaos_seed(1), 1);
        match prior {
            Some(v) => std::env::set_var("AMF_CHAOS_SEED", v),
            None => std::env::remove_var("AMF_CHAOS_SEED"),
        }
    }
}

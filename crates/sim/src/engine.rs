//! [`SimEngine`]: the moderator's engine seam, backed by the
//! deterministic scheduler instead of OS condvars.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use amf_concurrency::{GrantSource, Waiter};
use parking_lot::MutexGuard;

use crate::scheduler::{current_sim_id, Shared};

/// A [`GrantSource`] whose waitpoints park through the simulation
/// scheduler: a parking thread yields the run token, and wakes mark
/// scheduler state instead of pulsing a condvar. Install it via
/// `ModeratorBuilder::engine` (together with the runner's clock via
/// `ModeratorBuilder::clock`) to drive a real moderator — unmodified
/// protocol code and all — under a seeded, replayable schedule.
///
/// Obtained from [`SimRunner::engine`](crate::SimRunner::engine);
/// waitpoints may only be used from threads spawned through
/// [`SimRunner::spawn`](crate::SimRunner::spawn).
pub struct SimEngine {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for SimEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimEngine").finish_non_exhaustive()
    }
}

impl SimEngine {
    pub(crate) fn from_shared(shared: Arc<Shared>) -> Self {
        Self { shared }
    }
}

impl<T> GrantSource<T> for SimEngine {
    fn waiter(&self) -> Arc<dyn Waiter<T>> {
        Arc::new(SimWaiter {
            shared: Arc::clone(&self.shared),
            point: self.shared.next_point.fetch_add(1, Ordering::SeqCst),
        })
    }
}

/// One simulated waitpoint, identified by `point` inside the scheduler.
struct SimWaiter {
    shared: Arc<Shared>,
    point: usize,
}

impl<T> Waiter<T> for SimWaiter {
    fn park(&self, guard: &mut MutexGuard<'_, T>) {
        let me = current_sim_id();
        MutexGuard::unlocked(guard, || {
            self.shared.park(me, self.point, None);
        });
    }

    fn park_until(&self, guard: &mut MutexGuard<'_, T>, deadline: Instant) -> bool {
        // A wall-clock deadline is meaningless under virtual time;
        // honor the remaining wall interval as a virtual timeout. The
        // protocol itself never takes this path (it derives timeouts
        // from its clock and calls `park_for`).
        let timeout = deadline.saturating_duration_since(Instant::now());
        Waiter::<T>::park_for(self, guard, timeout)
    }

    fn park_for(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let me = current_sim_id();
        MutexGuard::unlocked(guard, || self.shared.park(me, self.point, Some(timeout)))
    }

    fn wake_one(&self) {
        self.shared.wake(self.point, false);
    }

    fn wake_all(&self) {
        self.shared.wake(self.point, true);
    }
}

//! The recorded scenario behind the `amf-sim` binary: a capacity-1
//! producer/consumer buffer (the paper's bounded-buffer shape, as two
//! moderated methods with cross-wired wakes) plus an `audit` method.
//! With `fault_permille > 0` the audit row carries a seeded
//! panic-injection aspect (undeclared, so every call takes the locked
//! path); fault-free runs carry the real `AuditAspect` instead, whose
//! declared capability contract sends the row through the lock-free
//! fast lane — the recorded `fast_path` counters come from there.
//! Running under a [`SimRunner`] yields a [`RunRecord`] whose schedule
//! replays the run byte-identically.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

use amf_aspects::audit::{AuditAspect, AuditLog};
use amf_aspects::fault::PanicInjectionAspect;
use amf_concurrency::{Clock, GrantSource, Waiter};
use amf_core::trace::EventKind;
use amf_core::{
    AspectModerator, Concern, FairnessPolicy, FnAspect, InvocationContext, MemoryTrace,
    MethodHandle, MethodId, PanicPolicy, Verdict,
};

use crate::{RunRecord, SimRunner, TopologyRecord};

/// Shape of one simulated buffer run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioParams {
    /// Scheduler and fault-injection seed.
    pub seed: u64,
    /// Producer threads (each `open`s the buffer `rounds` times).
    pub producers: u64,
    /// Consumer threads (the `producers * rounds` takes are split
    /// between them).
    pub consumers: u64,
    /// Rounds per producer.
    pub rounds: u64,
    /// Precondition-panic rate on the audit method, in permille.
    pub fault_permille: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self {
            seed: 42,
            producers: 2,
            consumers: 1,
            rounds: 3,
            fault_permille: 0,
        }
    }
}

/// Replaces the panic hook with a no-op, once. Injected aspect panics
/// are contained by the moderator but still run the hook; silencing it
/// keeps recorded runs from flooding stderr with backtraces.
pub fn silence_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

fn invoke(m: &AspectModerator, h: &MethodHandle, aborted: &Mutex<Vec<u64>>) {
    let invocation = m.next_invocation();
    let mut ctx = InvocationContext::new(h.id().clone(), invocation);
    match m.preactivation(h, &mut ctx) {
        Ok(()) => m.postactivation(h, &mut ctx),
        Err(_) => aborted.lock().unwrap().push(invocation),
    }
}

/// Runs the buffer scenario under a fresh simulation. With
/// `script: None` the run records (scheduling by `params.seed`); with
/// `Some(schedule)` it replays that schedule. The returned record is a
/// pure function of `(params, script)` — recording and then replaying
/// the recorded schedule reproduces it exactly.
pub fn run_buffer_scenario(params: &ScenarioParams, script: Option<Vec<usize>>) -> RunRecord {
    if params.fault_permille > 0 {
        silence_panic_hook();
    }
    let mut runner = match script {
        None => SimRunner::new(params.seed),
        Some(s) => SimRunner::replay(params.seed, s),
    };
    let trace = MemoryTrace::shared();
    let moderator = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .panic_policy(PanicPolicy::AbortInvocation)
            .engine(Arc::new(runner.engine()))
            .clock(Arc::new(runner.clock()))
            .trace(trace.clone())
            .build(),
    );
    let open = moderator.declare_method(MethodId::new("open"));
    let take = moderator.declare_method(MethodId::new("take"));
    let audit = moderator.declare_method(MethodId::new("audit"));

    let slots = Arc::new(AtomicU64::new(1));
    let items = Arc::new(AtomicU64::new(0));
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &open,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("slot-gate")
                        .on_precondition(move |_| {
                            if slots.load(Ordering::SeqCst) > 0 {
                                slots.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            items.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .expect("register slot-gate");
    }
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &take,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("item-gate")
                        .on_precondition(move |_| {
                            if items.load(Ordering::SeqCst) > 0 {
                                items.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            slots.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .expect("register item-gate");
    }
    if params.fault_permille > 0 {
        moderator
            .register(
                &audit,
                Concern::new("fault-injection"),
                Box::new(PanicInjectionAspect::new(
                    params.fault_permille as f64 / 1000.0,
                    0.0,
                    params.seed,
                )),
            )
            .expect("register fault injector");
    } else {
        // Fault-free runs carry the real audit sink instead: it
        // declares the full capability contract, so the audit row
        // rides the lock-free fast lane and the recorded
        // `fast_path_admits` exercises the lane under the simulated
        // scheduler.
        moderator
            .register(
                &audit,
                Concern::new("audit"),
                Box::new(AuditAspect::new(AuditLog::shared())),
            )
            .expect("register audit sink");
    }
    moderator.wire_wakes(&open, std::slice::from_ref(&take));
    moderator.wire_wakes(&take, std::slice::from_ref(&open));
    moderator.wire_wakes(&audit, &[]);

    let aborted = Arc::new(Mutex::new(Vec::new()));
    for p in 0..params.producers {
        let m = Arc::clone(&moderator);
        let (open, audit) = (open.clone(), audit.clone());
        let aborted = Arc::clone(&aborted);
        let rounds = params.rounds;
        runner.spawn(&format!("p{p}"), move || {
            for _ in 0..rounds {
                invoke(&m, &open, &aborted);
                invoke(&m, &audit, &aborted);
            }
        });
    }
    let total_takes = params.producers * params.rounds;
    for c in 0..params.consumers {
        let m = Arc::clone(&moderator);
        let take = take.clone();
        let aborted = Arc::clone(&aborted);
        // Split the takes; earlier consumers absorb the remainder.
        let share = total_takes / params.consumers + u64::from(c < total_takes % params.consumers);
        runner.spawn(&format!("c{c}"), move || {
            for _ in 0..share {
                invoke(&m, &take, &aborted);
            }
        });
    }

    let report = runner.run();
    let stats = moderator.stats();
    let faults = aborted.lock().unwrap().clone();
    let grants = trace
        .events()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::ActivationResumed))
        .map(|e| (e.invocation, e.method.as_str().to_string()))
        .collect();
    RunRecord {
        seed: params.seed,
        producers: params.producers,
        consumers: params.consumers,
        rounds: params.rounds,
        fault_permille: params.fault_permille,
        threads: report.names,
        schedule: report.schedule,
        clock_ns: report.clock.as_nanos(),
        grants,
        faults,
        fast_path_admits: stats.fast_path_admits,
        fast_path_fallbacks: stats.fast_path_fallbacks,
        error: report.error,
    }
}

/// Shape of one simulated multi-moderator topology run: a ring of
/// [`TopologyParams::nodes`] *independent* [`AspectModerator`]
/// instances connected by simulated lease-handoff channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyParams {
    /// Scheduler and delivery-jitter seed.
    pub seed: u64,
    /// Ring size (each node is its own moderator).
    pub nodes: u64,
    /// Leases circulating the ring; all start at node 0.
    pub leases: u64,
    /// Full ring laps each lease makes before retiring.
    pub hops: u64,
    /// Upper bound on the seeded per-message delivery delay, in
    /// nanoseconds of virtual time. Nonzero values make arrivals
    /// overtake each other in flight; the receiving courier reassembles
    /// sequence order before granting.
    pub max_delay_ns: u64,
    /// Drop knob: the nth handoff send (global 1-based count). With
    /// recovery disabled (`expiry_ns == 0`) the one in-flight copy is
    /// lost, the ring starves, and the run ends in a detected deadlock.
    /// With recovery enabled the knob *severs* that handoff — every
    /// retransmission of it is lost too — so the sender walks the full
    /// recovery path: backoff retransmits, expiry, reclaim, degraded
    /// local moderation, and a cursor-advancing release.
    pub drop_nth: Option<u64>,
    /// Duplicate knob: the nth handoff send is delivered twice, with
    /// independent jitter. Harmless under recovery (the receiver dedups
    /// idempotently); benign under the legacy courier (the stray copy
    /// is simply never the cursor's next sequence).
    pub dup_nth: Option<u64>,
    /// Lease expiry deadline in nanoseconds of virtual time. 0 runs
    /// the pre-recovery protocol (in-memory channels, no
    /// retransmission); nonzero routes every handoff through the
    /// socket-shaped channel as encoded wire frames driven by the
    /// shared [`amf_core::lease`] state machine.
    pub expiry_ns: u64,
}

impl Default for TopologyParams {
    fn default() -> Self {
        Self {
            seed: 42,
            nodes: 2,
            leases: 2,
            hops: 3,
            max_delay_ns: 1_000,
            drop_nth: None,
            dup_nth: None,
            expiry_ns: 0,
        }
    }
}

/// SplitMix64 finalizer: the per-message delivery jitter is a pure
/// function of `(seed, channel, seq)`, so record and replay draw
/// identical delays without consuming scheduler randomness.
fn jitter(seed: u64, channel: u64, seq: u64) -> u64 {
    let mut z = seed
        .wrapping_add(channel.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(seq.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One lease-handoff channel: messages in flight toward one node,
/// tagged with a sender-assigned sequence number and a virtual-time
/// delivery deadline. The receiving courier delivers strictly in
/// sequence order (holding back early arrivals), which is what makes
/// the handoff FIFO-preserving over a reorderable transport.
#[derive(Default)]
struct Channel {
    /// `(seq, deliver_at, lease, visits_left)`, arrival order.
    in_flight: Vec<(u64, Duration, u64, u64)>,
    next_send: u64,
    next_recv: u64,
}

/// Runs the multi-moderator ring under a fresh simulation. With
/// `script: None` the run records (scheduling by `params.seed`); with
/// `Some(schedule)` it replays that schedule. The returned record is a
/// pure function of `(params, script)`.
///
/// Per node: a *worker* thread acquires each arriving lease through
/// the node's own moderator (`acquire` blocks on an empty inbox),
/// reports one fast-lane `observe` telemetry call, and forwards the
/// lease to the next node's channel with seeded virtual-clock delay; a
/// *courier* thread reassembles its channel's sequence order —
/// parking through the simulated engine while a message is missing or
/// still in flight — and deposits each lease via a moderated `grant`
/// whose post-activation wakes the worker. Dropping a handoff
/// ([`TopologyParams::drop_nth`]) starves the courier's cursor and the
/// run ends in a detected deadlock naming the parked ring.
pub fn run_topology_scenario(
    params: &TopologyParams,
    script: Option<Vec<usize>>,
) -> TopologyRecord {
    assert!(params.nodes >= 1, "a ring needs at least one node");
    assert!(
        params.leases >= 1 && params.hops >= 1,
        "nothing to simulate"
    );
    if params.expiry_ns > 0 {
        return run_topology_recovery(params, script);
    }
    run_topology_legacy(params, script)
}

/// The pre-recovery ring: in-memory channels, fire-and-forget handoffs,
/// strict sequence-cursor reassembly. A dropped handoff deadlocks the
/// ring — which is the point of keeping this path: it is the ablation
/// the recovery protocol is measured against.
fn run_topology_legacy(params: &TopologyParams, script: Option<Vec<usize>>) -> TopologyRecord {
    let mut runner = match script {
        None => SimRunner::new(params.seed),
        Some(s) => SimRunner::replay(params.seed, s),
    };
    let engine = runner.engine();
    let clock = runner.clock();
    let nodes = params.nodes as usize;

    struct Node {
        moderator: Arc<AspectModerator>,
        acquire: MethodHandle,
        grant: MethodHandle,
        observe: MethodHandle,
        inbox: Arc<Mutex<VecDeque<(u64, u64)>>>,
    }
    let mut ring = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let moderator = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Fifo)
                .panic_policy(PanicPolicy::AbortInvocation)
                .engine(Arc::new(runner.engine()))
                .clock(Arc::new(runner.clock()))
                .build(),
        );
        let acquire = moderator.declare_method(MethodId::new("acquire"));
        let grant = moderator.declare_method(MethodId::new("grant"));
        let observe = moderator.declare_method(MethodId::new("observe"));
        let inbox: Arc<Mutex<VecDeque<(u64, u64)>>> = Arc::new(Mutex::new(VecDeque::new()));
        {
            let inbox = Arc::clone(&inbox);
            moderator
                .register(
                    &acquire,
                    Concern::synchronization(),
                    Box::new(FnAspect::new("lease-gate").on_precondition(move |_| {
                        if inbox.lock().unwrap().is_empty() {
                            Verdict::Block
                        } else {
                            Verdict::Resume
                        }
                    })),
                )
                .expect("register lease-gate");
        }
        moderator
            .register(
                &grant,
                Concern::new("handoff"),
                Box::new(FnAspect::new("handoff")),
            )
            .expect("register handoff");
        // Real library sink, declared pure: the telemetry row rides the
        // lock-free fast lane, which is where the recorded `fast_path`
        // counters come from.
        moderator
            .register(
                &observe,
                Concern::new("telemetry"),
                Box::new(AuditAspect::new(AuditLog::shared())),
            )
            .expect("register telemetry");
        moderator.wire_wakes(&grant, std::slice::from_ref(&acquire));
        moderator.wire_wakes(&acquire, &[]);
        moderator.wire_wakes(&observe, &[]);
        ring.push(Node {
            moderator,
            acquire,
            grant,
            observe,
            inbox,
        });
    }
    // All leases start at node 0 with their full visit budget.
    let total_visits = params.nodes * params.hops;
    {
        let mut inbox = ring[0].inbox.lock().unwrap();
        for lease in 0..params.leases {
            inbox.push_back((lease, total_visits));
        }
    }

    // Channel `c` delivers into node `c`; node `i`'s worker sends into
    // channel `(i + 1) % nodes`.
    type ChannelSlot = Arc<(parking_lot::Mutex<Channel>, Arc<dyn Waiter<Channel>>)>;
    let channels: Vec<ChannelSlot> = (0..nodes)
        .map(|_| {
            Arc::new((
                parking_lot::Mutex::new(Channel::default()),
                GrantSource::<Channel>::waiter(&engine),
            ))
        })
        .collect();
    let sends = Arc::new(AtomicU64::new(0));
    let handoffs: Arc<Mutex<Vec<(u64, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let retired: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    fn invoke_ok(m: &AspectModerator, h: &MethodHandle) {
        let mut ctx = InvocationContext::new(h.id().clone(), m.next_invocation());
        m.preactivation(h, &mut ctx)
            .expect("topology rows never abort");
        m.postactivation(h, &mut ctx);
    }

    for (i, node) in ring.iter().enumerate() {
        // Worker: acquire every lease visit at this node, observe, and
        // forward (or retire) the lease.
        let m = Arc::clone(&node.moderator);
        let (acquire, observe) = (node.acquire.clone(), node.observe.clone());
        let inbox = Arc::clone(&node.inbox);
        let next_channel = Arc::clone(&channels[(i + 1) % nodes]);
        let next_c = ((i + 1) % nodes) as u64;
        let (sends, retired) = (Arc::clone(&sends), Arc::clone(&retired));
        let (clock_w, p) = (clock.clone(), params.clone());
        runner.spawn(&format!("w{i}"), move || {
            for _ in 0..p.leases * p.hops {
                let mut ctx = InvocationContext::new(acquire.id().clone(), m.next_invocation());
                m.preactivation(&acquire, &mut ctx)
                    .expect("acquire never aborts");
                let (lease, visits) = inbox
                    .lock()
                    .unwrap()
                    .pop_front()
                    .expect("a resumed acquire finds a lease");
                m.postactivation(&acquire, &mut ctx);
                invoke_ok(&m, &observe);
                let visits = visits - 1;
                if visits == 0 {
                    retired.lock().unwrap().push(lease);
                    continue;
                }
                let (ch, waiter) = &*next_channel;
                let mut g = ch.lock();
                let seq = g.next_send;
                g.next_send += 1;
                let nth = sends.fetch_add(1, Ordering::SeqCst) + 1;
                if p.drop_nth == Some(nth) {
                    continue; // lost in flight; the sequence number is gone with it
                }
                let delay = jitter(p.seed, next_c, seq) % (p.max_delay_ns + 1);
                let deliver_at = clock_w.now() + Duration::from_nanos(delay);
                g.in_flight.push((seq, deliver_at, lease, visits));
                if p.dup_nth == Some(nth) {
                    // A stray duplicate: same sequence number, its own
                    // jitter. The courier's cursor delivers the first
                    // copy it reaches and the stray is never `want`ed
                    // again — benign by construction here, counted and
                    // dropped by the recovery path's dedup window.
                    let delay = jitter(p.seed ^ 0xD0B1, next_c, seq) % (p.max_delay_ns + 1);
                    let deliver_at = clock_w.now() + Duration::from_nanos(delay);
                    g.in_flight.push((seq, deliver_at, lease, visits));
                }
                drop(g);
                waiter.wake_all();
            }
        });

        // Courier: reassemble the channel's sequence order, honoring
        // each message's virtual delivery time, and grant each lease
        // into the node through its moderator.
        let m = Arc::clone(&node.moderator);
        let grant = node.grant.clone();
        let inbox = Arc::clone(&node.inbox);
        let channel = Arc::clone(&channels[i]);
        let handoffs = Arc::clone(&handoffs);
        let (clock_c, p) = (clock.clone(), params.clone());
        let c = i as u64;
        runner.spawn(&format!("courier{i}"), move || {
            let expected = p.leases * p.hops - if c == 0 { p.leases } else { 0 };
            for _ in 0..expected {
                let (seq, lease, visits) = {
                    let (ch, waiter) = &*channel;
                    let mut g = ch.lock();
                    loop {
                        let want = g.next_recv;
                        match g.in_flight.iter().position(|msg| msg.0 == want) {
                            Some(pos) => {
                                let now = clock_c.now();
                                let deliver_at = g.in_flight[pos].1;
                                if deliver_at <= now {
                                    let (seq, _, lease, visits) = g.in_flight.remove(pos);
                                    g.next_recv += 1;
                                    break (seq, lease, visits);
                                }
                                waiter.park_for(&mut g, deliver_at - now);
                            }
                            None => waiter.park(&mut g),
                        }
                    }
                };
                handoffs.lock().unwrap().push((c, seq, lease));
                inbox.lock().unwrap().push_back((lease, visits));
                invoke_ok(&m, &grant);
            }
        });
    }

    let report = runner.run();
    let (mut admits, mut fallbacks) = (0, 0);
    for node in &ring {
        let s = node.moderator.stats();
        admits += s.fast_path_admits;
        fallbacks += s.fast_path_fallbacks;
    }
    let handoffs = handoffs.lock().unwrap().clone();
    let retired = retired.lock().unwrap().clone();
    TopologyRecord {
        seed: params.seed,
        nodes: params.nodes,
        leases: params.leases,
        hops: params.hops,
        max_delay_ns: params.max_delay_ns,
        drop_nth: params.drop_nth,
        dup_nth: params.dup_nth,
        expiry_ns: params.expiry_ns,
        threads: report.names,
        schedule: report.schedule,
        clock_ns: report.clock.as_nanos(),
        handoffs,
        retired,
        retransmits: 0,
        reclaimed: 0,
        dup_dropped: 0,
        degraded_entries: 0,
        fast_path_admits: admits,
        fast_path_fallbacks: fallbacks,
        error: report.error,
    }
}

/// The recovery-protocol ring over a *socket-shaped* fault channel:
/// every handoff is an encoded wire frame ([`amf_service::codec`]),
/// every link runs the shared [`amf_core::lease`] state machine —
/// exactly the code path the live [`amf_service::PeerNode`] drives over
/// TCP, here under the virtual clock so record→replay covers it.
///
/// Per node, three simulated threads: the *worker* moderates each
/// lease visit and grants the lease onward through its link's
/// [`LeaseOut`]; the *courier* decodes deliverable frames, runs the
/// receiver half ([`LeaseIn`]: dedup window, cursor reassembly, hop
/// fencing) and acks on the reliable return plane; the *daemon* drains
/// acks and drives the retransmit/expiry timers. With recovery enabled,
/// [`TopologyParams::drop_nth`] severs its handoff entirely (every
/// retransmission lost), so the sender expires the lease, reclaims it
/// into degraded local moderation, and releases the sequence hole.
fn run_topology_recovery(params: &TopologyParams, script: Option<Vec<usize>>) -> TopologyRecord {
    use amf_core::{LeaseAction, LeaseConfig, LeaseIn, LeaseMsg, LeaseOut};
    use amf_service::codec::{decode_peer, encode_peer, PeerFrame};

    let mut runner = match script {
        None => SimRunner::new(params.seed),
        Some(s) => SimRunner::replay(params.seed, s),
    };
    let engine = runner.engine();
    let clock = runner.clock();
    let nodes = params.nodes as usize;
    let lease_cfg = LeaseConfig {
        expiry: Duration::from_nanos(params.expiry_ns),
        backoff_base: Duration::from_nanos((params.expiry_ns / 8).max(1)),
        backoff_cap: Duration::from_nanos((params.expiry_ns / 2).max(1)),
        jitter_seed: params.seed,
    };

    /// Delivered `(lease, hop, visits)` triples; `None` is the
    /// completion poison pill.
    type Inbox = Arc<Mutex<VecDeque<Option<(u64, u64, u64)>>>>;
    struct Node {
        moderator: Arc<AspectModerator>,
        acquire: MethodHandle,
        grant: MethodHandle,
        observe: MethodHandle,
        inbox: Inbox,
        out: Arc<parking_lot::Mutex<LeaseOut>>,
        inn: Arc<parking_lot::Mutex<LeaseIn>>,
    }
    let mut ring = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let moderator = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Fifo)
                .panic_policy(PanicPolicy::AbortInvocation)
                .engine(Arc::new(runner.engine()))
                .clock(Arc::new(runner.clock()))
                .build(),
        );
        let acquire = moderator.declare_method(MethodId::new("acquire"));
        let grant = moderator.declare_method(MethodId::new("grant"));
        let observe = moderator.declare_method(MethodId::new("observe"));
        let inbox: Inbox = Arc::new(Mutex::new(VecDeque::new()));
        {
            let inbox = Arc::clone(&inbox);
            moderator
                .register(
                    &acquire,
                    Concern::synchronization(),
                    Box::new(FnAspect::new("lease-gate").on_precondition(move |_| {
                        if inbox.lock().unwrap().is_empty() {
                            Verdict::Block
                        } else {
                            Verdict::Resume
                        }
                    })),
                )
                .expect("register lease-gate");
        }
        moderator
            .register(
                &grant,
                Concern::new("handoff"),
                Box::new(FnAspect::new("handoff")),
            )
            .expect("register handoff");
        moderator
            .register(
                &observe,
                Concern::new("telemetry"),
                Box::new(AuditAspect::new(AuditLog::shared())),
            )
            .expect("register telemetry");
        moderator.wire_wakes(&grant, std::slice::from_ref(&acquire));
        moderator.wire_wakes(&acquire, &[]);
        moderator.wire_wakes(&observe, &[]);
        ring.push(Node {
            moderator,
            acquire,
            grant,
            observe,
            inbox,
            out: Arc::new(parking_lot::Mutex::new(LeaseOut::new(lease_cfg.clone()))),
            inn: Arc::new(parking_lot::Mutex::new(LeaseIn::new())),
        });
    }
    let total_visits = params.nodes * params.hops;
    {
        let mut inbox = ring[0].inbox.lock().unwrap();
        for lease in 0..params.leases {
            inbox.push_back(Some((lease, 0, total_visits)));
        }
    }

    /// One frame in one direction of a link: `(encoded body,
    /// deliver_at, tie-break index)`.
    type Flight = Vec<(Vec<u8>, Duration, u64)>;
    type Plane = Arc<(parking_lot::Mutex<Flight>, Arc<dyn Waiter<Flight>>)>;
    let new_plane = || -> Plane {
        Arc::new((
            parking_lot::Mutex::new(Vec::new()),
            GrantSource::<Flight>::waiter(&engine),
        ))
    };
    // grant_plane[c] delivers into node c; ack_plane[c] carries node
    // c's acks back toward its predecessor. The grant plane drops,
    // delays, and duplicates; the ack plane only delays — the declared
    // fault model (acks ride the TCP return path).
    let grant_planes: Vec<Plane> = (0..nodes).map(|_| new_plane()).collect();
    let ack_planes: Vec<Plane> = (0..nodes).map(|_| new_plane()).collect();

    let sends = Arc::new(AtomicU64::new(0));
    let acks_sent = Arc::new(AtomicU64::new(0));
    // Handoffs the drop knob has severed: every copy of these
    // `(channel, seq)` grants is lost, retransmits included.
    let severed: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let handoffs: Arc<Mutex<Vec<(u64, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let retired: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let degraded_entries = Arc::new(AtomicU64::new(0));
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    fn invoke_ok(m: &AspectModerator, h: &MethodHandle) {
        let mut ctx = InvocationContext::new(h.id().clone(), m.next_invocation());
        m.preactivation(h, &mut ctx)
            .expect("topology rows never abort");
        m.postactivation(h, &mut ctx);
    }

    // Sends `msg` from node `from` onto grant plane `to`, applying the
    // drop (sever), duplicate, and delay knobs. Returns whether the
    // frame actually entered the channel.
    let send_grant = {
        let sends = Arc::clone(&sends);
        let severed = Arc::clone(&severed);
        let clock = clock.clone();
        let p = params.clone();
        move |planes: &[Plane], from: u64, to: u64, msg: LeaseMsg| {
            let is_grant = matches!(msg, LeaseMsg::Grant { .. });
            if is_grant && severed.lock().unwrap().contains(&(to, msg.seq())) {
                return; // the severed handoff: every copy is lost
            }
            let nth = sends.fetch_add(1, Ordering::SeqCst) + 1;
            if is_grant && p.drop_nth == Some(nth) {
                severed.lock().unwrap().push((to, msg.seq()));
                return;
            }
            let frame = encode_peer(&PeerFrame { node: from, msg });
            let body = frame[4..].to_vec();
            let (ch, waiter) = &*planes[to as usize];
            let mut g = ch.lock();
            let delay = jitter(p.seed, to, nth) % (p.max_delay_ns + 1);
            g.push((body.clone(), clock.now() + Duration::from_nanos(delay), nth));
            if p.dup_nth == Some(nth) {
                let delay = jitter(p.seed ^ 0xD0B1, to, nth) % (p.max_delay_ns + 1);
                g.push((
                    body,
                    clock.now() + Duration::from_nanos(delay),
                    nth | (1 << 63),
                ));
            }
            drop(g);
            waiter.wake_all();
        }
    };

    // Flood every inbox with a poison pill and wake every plane: the
    // last retirement releases the whole ring.
    let finish = {
        let done = Arc::clone(&done);
        move |ring: &[Node], grant_planes: &[Plane], ack_planes: &[Plane]| {
            done.store(true, Ordering::SeqCst);
            for node in ring {
                node.inbox.lock().unwrap().push_back(None);
                invoke_ok(&node.moderator, &node.grant);
            }
            for plane in grant_planes.iter().chain(ack_planes) {
                // Lock-then-wake: a thread that checked `done` before
                // this store is either still holding the plane mutex
                // (we serialize behind it) or already parked (the wake
                // reaches it). Either way the wake cannot be lost.
                let (ch, waiter) = &**plane;
                drop(ch.lock());
                waiter.wake_all();
            }
        }
    };

    let ring = Arc::new(ring);
    let grant_planes = Arc::new(grant_planes);
    let ack_planes = Arc::new(ack_planes);

    for i in 0..nodes {
        let next = (i + 1) % nodes;
        // Worker: moderate every visit, forward through LeaseOut.
        {
            let ring = Arc::clone(&ring);
            let (grant_planes, ack_planes) = (Arc::clone(&grant_planes), Arc::clone(&ack_planes));
            let (retired, degraded_entries) = (Arc::clone(&retired), Arc::clone(&degraded_entries));
            let (send_grant, finish) = (send_grant.clone(), finish.clone());
            let clock = clock.clone();
            let p = params.clone();
            runner.spawn(&format!("w{i}"), move || {
                let node = &ring[i];
                loop {
                    let mut ctx = InvocationContext::new(
                        node.acquire.id().clone(),
                        node.moderator.next_invocation(),
                    );
                    node.moderator
                        .preactivation(&node.acquire, &mut ctx)
                        .expect("acquire never aborts");
                    let entry = node.inbox.lock().unwrap().pop_front().flatten();
                    node.moderator.postactivation(&node.acquire, &mut ctx);
                    let Some((lease, hop, visits)) = entry else {
                        break;
                    };
                    invoke_ok(&node.moderator, &node.observe);
                    if node.out.lock().degraded() {
                        degraded_entries.fetch_add(1, Ordering::SeqCst);
                    }
                    let visits = visits - 1;
                    if visits == 0 {
                        let mut r = retired.lock().unwrap();
                        r.push(lease);
                        if r.len() as u64 == p.leases {
                            drop(r);
                            finish(&ring, &grant_planes, &ack_planes);
                        }
                        continue;
                    }
                    let msg = node.out.lock().grant(lease, hop + 1, visits, clock.now());
                    send_grant(&grant_planes, i as u64, next as u64, msg);
                    // The daemon may now have a retransmit timer to
                    // watch; lock-then-wake so it either sees the new
                    // deadline on its next pass or takes this wake.
                    let (ch, waiter) = &*ack_planes[next];
                    drop(ch.lock());
                    waiter.wake_all();
                }
            });
        }
        // Courier: decode deliverable frames, run the receiver half,
        // ack on the return plane.
        {
            let ring = Arc::clone(&ring);
            let (grant_planes, ack_planes) = (Arc::clone(&grant_planes), Arc::clone(&ack_planes));
            let handoffs = Arc::clone(&handoffs);
            let (acks_sent, done) = (Arc::clone(&acks_sent), Arc::clone(&done));
            let clock = clock.clone();
            let p = params.clone();
            runner.spawn(&format!("courier{i}"), move || {
                let node = &ring[i];
                loop {
                    let body = {
                        let (ch, waiter) = &*grant_planes[i];
                        let mut g = ch.lock();
                        loop {
                            if done.load(Ordering::SeqCst) {
                                return;
                            }
                            let now = clock.now();
                            // Deliver the earliest-due frame; insertion
                            // index breaks ties deterministically.
                            let due = g
                                .iter()
                                .enumerate()
                                .filter(|(_, m)| m.1 <= now)
                                .min_by_key(|(_, m)| (m.1, m.2))
                                .map(|(idx, _)| idx);
                            if let Some(idx) = due {
                                break g.remove(idx).0;
                            }
                            match g.iter().map(|m| m.1).min() {
                                Some(at) => {
                                    waiter.park_for(&mut g, at - now);
                                }
                                None => waiter.park(&mut g),
                            }
                        }
                    };
                    let Ok(frame) = decode_peer(&body) else {
                        continue;
                    };
                    let (deliveries, ack) = {
                        let mut inn = node.inn.lock();
                        match frame.msg {
                            LeaseMsg::Grant {
                                seq,
                                lease,
                                hop,
                                visits,
                            } => inn.on_grant(seq, lease, hop, visits),
                            LeaseMsg::Release { seq } => inn.on_release(seq),
                            LeaseMsg::Ack { .. } => continue,
                        }
                    };
                    for d in deliveries {
                        handoffs.lock().unwrap().push((i as u64, d.seq, d.lease));
                        node.inbox
                            .lock()
                            .unwrap()
                            .push_back(Some((d.lease, d.hop, d.visits)));
                        invoke_ok(&node.moderator, &node.grant);
                    }
                    // Ack on the reliable return plane, with delay.
                    let nth = acks_sent.fetch_add(1, Ordering::SeqCst) + 1;
                    let frame = encode_peer(&PeerFrame {
                        node: i as u64,
                        msg: ack,
                    });
                    let (ch, waiter) = &*ack_planes[i];
                    let mut g = ch.lock();
                    let delay = jitter(p.seed ^ 0xACC5, i as u64, nth) % (p.max_delay_ns + 1);
                    g.push((
                        frame[4..].to_vec(),
                        clock.now() + Duration::from_nanos(delay),
                        nth,
                    ));
                    drop(g);
                    waiter.wake_all();
                }
            });
        }
        // Daemon: drain due acks, drive retransmit/expiry timers.
        {
            let ring = Arc::clone(&ring);
            let (grant_planes, ack_planes) = (Arc::clone(&grant_planes), Arc::clone(&ack_planes));
            let done = Arc::clone(&done);
            let send_grant = send_grant.clone();
            let clock = clock.clone();
            runner.spawn(&format!("daemon{i}"), move || {
                let node = &ring[i];
                loop {
                    // Drain every ack due by now — the "drain readable
                    // acks before poll" reclaim guard — then park until
                    // the next ack arrival or retransmit/expiry timer.
                    let mut due_acks = {
                        let (ch, waiter) = &*ack_planes[next];
                        let mut g = ch.lock();
                        if done.load(Ordering::SeqCst) {
                            return;
                        }
                        let now = clock.now();
                        let (due, rest): (Flight, Flight) = g.drain(..).partition(|m| m.1 <= now);
                        *g = rest;
                        if due.is_empty() {
                            let timer = node.out.lock().next_deadline();
                            let next_at = g.iter().map(|m| m.1).min();
                            let wake_at = [timer, next_at].into_iter().flatten().min();
                            match wake_at {
                                Some(at) if at > now => {
                                    waiter.park_for(&mut g, at - now);
                                }
                                Some(_) => {} // a timer is already due
                                None => waiter.park(&mut g),
                            }
                            if done.load(Ordering::SeqCst) {
                                return;
                            }
                        }
                        due
                    };
                    due_acks.sort_by_key(|m| (m.1, m.2));
                    for (body, _, _) in due_acks {
                        let Ok(frame) = decode_peer(&body) else {
                            continue;
                        };
                        if let LeaseMsg::Ack { seq, cursor } = frame.msg {
                            node.out.lock().on_ack(seq, cursor, clock.now());
                        }
                    }
                    let actions = node.out.lock().poll(clock.now());
                    for a in actions {
                        match a {
                            LeaseAction::Send(msg) => {
                                send_grant(&grant_planes, i as u64, next as u64, msg);
                            }
                            LeaseAction::Reclaim { lease, hop, visits } => {
                                // Ours again: fence the hop, moderate
                                // it locally (degraded entry).
                                node.inn.lock().fence(lease, hop);
                                node.inbox
                                    .lock()
                                    .unwrap()
                                    .push_back(Some((lease, hop, visits)));
                                invoke_ok(&node.moderator, &node.grant);
                            }
                        }
                    }
                }
            });
        }
    }

    let report = runner.run();
    let (mut admits, mut fallbacks) = (0, 0);
    let (mut retransmits, mut reclaimed, mut dup_dropped) = (0, 0, 0);
    for node in ring.iter() {
        let s = node.moderator.stats();
        admits += s.fast_path_admits;
        fallbacks += s.fast_path_fallbacks;
        let o = node.out.lock().stats();
        retransmits += o.retransmits;
        reclaimed += o.reclaimed;
        dup_dropped += node.inn.lock().stats().dup_dropped;
    }
    let handoffs = handoffs.lock().unwrap().clone();
    let retired = retired.lock().unwrap().clone();
    TopologyRecord {
        seed: params.seed,
        nodes: params.nodes,
        leases: params.leases,
        hops: params.hops,
        max_delay_ns: params.max_delay_ns,
        drop_nth: params.drop_nth,
        dup_nth: params.dup_nth,
        expiry_ns: params.expiry_ns,
        threads: report.names,
        schedule: report.schedule,
        clock_ns: report.clock.as_nanos(),
        handoffs,
        retired,
        retransmits,
        reclaimed,
        dup_dropped,
        degraded_entries: degraded_entries.load(Ordering::SeqCst),
        fast_path_admits: admits,
        fast_path_fallbacks: fallbacks,
        error: report.error,
    }
}

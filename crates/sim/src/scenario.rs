//! The recorded scenario behind the `amf-sim` binary: a capacity-1
//! producer/consumer buffer (the paper's bounded-buffer shape, as two
//! moderated methods with cross-wired wakes) plus an `audit` method.
//! With `fault_permille > 0` the audit row carries a seeded
//! panic-injection aspect (undeclared, so every call takes the locked
//! path); fault-free runs carry the real `AuditAspect` instead, whose
//! declared capability contract sends the row through the lock-free
//! fast lane — the recorded `fast_path` counters come from there.
//! Running under a [`SimRunner`] yields a [`RunRecord`] whose schedule
//! replays the run byte-identically.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::Duration;

use amf_aspects::audit::{AuditAspect, AuditLog};
use amf_aspects::fault::PanicInjectionAspect;
use amf_concurrency::{Clock, GrantSource, Waiter};
use amf_core::trace::EventKind;
use amf_core::{
    AspectModerator, Concern, FairnessPolicy, FnAspect, InvocationContext, MemoryTrace,
    MethodHandle, MethodId, PanicPolicy, Verdict,
};

use crate::{RunRecord, SimRunner, TopologyRecord};

/// Shape of one simulated buffer run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioParams {
    /// Scheduler and fault-injection seed.
    pub seed: u64,
    /// Producer threads (each `open`s the buffer `rounds` times).
    pub producers: u64,
    /// Consumer threads (the `producers * rounds` takes are split
    /// between them).
    pub consumers: u64,
    /// Rounds per producer.
    pub rounds: u64,
    /// Precondition-panic rate on the audit method, in permille.
    pub fault_permille: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self {
            seed: 42,
            producers: 2,
            consumers: 1,
            rounds: 3,
            fault_permille: 0,
        }
    }
}

/// Replaces the panic hook with a no-op, once. Injected aspect panics
/// are contained by the moderator but still run the hook; silencing it
/// keeps recorded runs from flooding stderr with backtraces.
pub fn silence_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

fn invoke(m: &AspectModerator, h: &MethodHandle, aborted: &Mutex<Vec<u64>>) {
    let invocation = m.next_invocation();
    let mut ctx = InvocationContext::new(h.id().clone(), invocation);
    match m.preactivation(h, &mut ctx) {
        Ok(()) => m.postactivation(h, &mut ctx),
        Err(_) => aborted.lock().unwrap().push(invocation),
    }
}

/// Runs the buffer scenario under a fresh simulation. With
/// `script: None` the run records (scheduling by `params.seed`); with
/// `Some(schedule)` it replays that schedule. The returned record is a
/// pure function of `(params, script)` — recording and then replaying
/// the recorded schedule reproduces it exactly.
pub fn run_buffer_scenario(params: &ScenarioParams, script: Option<Vec<usize>>) -> RunRecord {
    if params.fault_permille > 0 {
        silence_panic_hook();
    }
    let mut runner = match script {
        None => SimRunner::new(params.seed),
        Some(s) => SimRunner::replay(params.seed, s),
    };
    let trace = MemoryTrace::shared();
    let moderator = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .panic_policy(PanicPolicy::AbortInvocation)
            .engine(Arc::new(runner.engine()))
            .clock(Arc::new(runner.clock()))
            .trace(trace.clone())
            .build(),
    );
    let open = moderator.declare_method(MethodId::new("open"));
    let take = moderator.declare_method(MethodId::new("take"));
    let audit = moderator.declare_method(MethodId::new("audit"));

    let slots = Arc::new(AtomicU64::new(1));
    let items = Arc::new(AtomicU64::new(0));
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &open,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("slot-gate")
                        .on_precondition(move |_| {
                            if slots.load(Ordering::SeqCst) > 0 {
                                slots.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            items.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .expect("register slot-gate");
    }
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &take,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("item-gate")
                        .on_precondition(move |_| {
                            if items.load(Ordering::SeqCst) > 0 {
                                items.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            slots.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .expect("register item-gate");
    }
    if params.fault_permille > 0 {
        moderator
            .register(
                &audit,
                Concern::new("fault-injection"),
                Box::new(PanicInjectionAspect::new(
                    params.fault_permille as f64 / 1000.0,
                    0.0,
                    params.seed,
                )),
            )
            .expect("register fault injector");
    } else {
        // Fault-free runs carry the real audit sink instead: it
        // declares the full capability contract, so the audit row
        // rides the lock-free fast lane and the recorded
        // `fast_path_admits` exercises the lane under the simulated
        // scheduler.
        moderator
            .register(
                &audit,
                Concern::new("audit"),
                Box::new(AuditAspect::new(AuditLog::shared())),
            )
            .expect("register audit sink");
    }
    moderator.wire_wakes(&open, std::slice::from_ref(&take));
    moderator.wire_wakes(&take, std::slice::from_ref(&open));
    moderator.wire_wakes(&audit, &[]);

    let aborted = Arc::new(Mutex::new(Vec::new()));
    for p in 0..params.producers {
        let m = Arc::clone(&moderator);
        let (open, audit) = (open.clone(), audit.clone());
        let aborted = Arc::clone(&aborted);
        let rounds = params.rounds;
        runner.spawn(&format!("p{p}"), move || {
            for _ in 0..rounds {
                invoke(&m, &open, &aborted);
                invoke(&m, &audit, &aborted);
            }
        });
    }
    let total_takes = params.producers * params.rounds;
    for c in 0..params.consumers {
        let m = Arc::clone(&moderator);
        let take = take.clone();
        let aborted = Arc::clone(&aborted);
        // Split the takes; earlier consumers absorb the remainder.
        let share = total_takes / params.consumers + u64::from(c < total_takes % params.consumers);
        runner.spawn(&format!("c{c}"), move || {
            for _ in 0..share {
                invoke(&m, &take, &aborted);
            }
        });
    }

    let report = runner.run();
    let stats = moderator.stats();
    let faults = aborted.lock().unwrap().clone();
    let grants = trace
        .events()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::ActivationResumed))
        .map(|e| (e.invocation, e.method.as_str().to_string()))
        .collect();
    RunRecord {
        seed: params.seed,
        producers: params.producers,
        consumers: params.consumers,
        rounds: params.rounds,
        fault_permille: params.fault_permille,
        threads: report.names,
        schedule: report.schedule,
        clock_ns: report.clock.as_nanos(),
        grants,
        faults,
        fast_path_admits: stats.fast_path_admits,
        fast_path_fallbacks: stats.fast_path_fallbacks,
        error: report.error,
    }
}

/// Shape of one simulated multi-moderator topology run: a ring of
/// [`TopologyParams::nodes`] *independent* [`AspectModerator`]
/// instances connected by simulated lease-handoff channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyParams {
    /// Scheduler and delivery-jitter seed.
    pub seed: u64,
    /// Ring size (each node is its own moderator).
    pub nodes: u64,
    /// Leases circulating the ring; all start at node 0.
    pub leases: u64,
    /// Full ring laps each lease makes before retiring.
    pub hops: u64,
    /// Upper bound on the seeded per-message delivery delay, in
    /// nanoseconds of virtual time. Nonzero values make arrivals
    /// overtake each other in flight; the receiving courier reassembles
    /// sequence order before granting.
    pub max_delay_ns: u64,
    /// Ablation: drop the nth handoff message (global 1-based count)
    /// in flight. The ring then starves and the run ends in a detected
    /// deadlock instead of hanging.
    pub drop_nth: Option<u64>,
}

impl Default for TopologyParams {
    fn default() -> Self {
        Self {
            seed: 42,
            nodes: 2,
            leases: 2,
            hops: 3,
            max_delay_ns: 1_000,
            drop_nth: None,
        }
    }
}

/// SplitMix64 finalizer: the per-message delivery jitter is a pure
/// function of `(seed, channel, seq)`, so record and replay draw
/// identical delays without consuming scheduler randomness.
fn jitter(seed: u64, channel: u64, seq: u64) -> u64 {
    let mut z = seed
        .wrapping_add(channel.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(seq.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One lease-handoff channel: messages in flight toward one node,
/// tagged with a sender-assigned sequence number and a virtual-time
/// delivery deadline. The receiving courier delivers strictly in
/// sequence order (holding back early arrivals), which is what makes
/// the handoff FIFO-preserving over a reorderable transport.
#[derive(Default)]
struct Channel {
    /// `(seq, deliver_at, lease, visits_left)`, arrival order.
    in_flight: Vec<(u64, Duration, u64, u64)>,
    next_send: u64,
    next_recv: u64,
}

/// Runs the multi-moderator ring under a fresh simulation. With
/// `script: None` the run records (scheduling by `params.seed`); with
/// `Some(schedule)` it replays that schedule. The returned record is a
/// pure function of `(params, script)`.
///
/// Per node: a *worker* thread acquires each arriving lease through
/// the node's own moderator (`acquire` blocks on an empty inbox),
/// reports one fast-lane `observe` telemetry call, and forwards the
/// lease to the next node's channel with seeded virtual-clock delay; a
/// *courier* thread reassembles its channel's sequence order —
/// parking through the simulated engine while a message is missing or
/// still in flight — and deposits each lease via a moderated `grant`
/// whose post-activation wakes the worker. Dropping a handoff
/// ([`TopologyParams::drop_nth`]) starves the courier's cursor and the
/// run ends in a detected deadlock naming the parked ring.
pub fn run_topology_scenario(
    params: &TopologyParams,
    script: Option<Vec<usize>>,
) -> TopologyRecord {
    assert!(params.nodes >= 1, "a ring needs at least one node");
    assert!(
        params.leases >= 1 && params.hops >= 1,
        "nothing to simulate"
    );
    let mut runner = match script {
        None => SimRunner::new(params.seed),
        Some(s) => SimRunner::replay(params.seed, s),
    };
    let engine = runner.engine();
    let clock = runner.clock();
    let nodes = params.nodes as usize;

    struct Node {
        moderator: Arc<AspectModerator>,
        acquire: MethodHandle,
        grant: MethodHandle,
        observe: MethodHandle,
        inbox: Arc<Mutex<VecDeque<(u64, u64)>>>,
    }
    let mut ring = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        let moderator = Arc::new(
            AspectModerator::builder()
                .fairness(FairnessPolicy::Fifo)
                .panic_policy(PanicPolicy::AbortInvocation)
                .engine(Arc::new(runner.engine()))
                .clock(Arc::new(runner.clock()))
                .build(),
        );
        let acquire = moderator.declare_method(MethodId::new("acquire"));
        let grant = moderator.declare_method(MethodId::new("grant"));
        let observe = moderator.declare_method(MethodId::new("observe"));
        let inbox: Arc<Mutex<VecDeque<(u64, u64)>>> = Arc::new(Mutex::new(VecDeque::new()));
        {
            let inbox = Arc::clone(&inbox);
            moderator
                .register(
                    &acquire,
                    Concern::synchronization(),
                    Box::new(FnAspect::new("lease-gate").on_precondition(move |_| {
                        if inbox.lock().unwrap().is_empty() {
                            Verdict::Block
                        } else {
                            Verdict::Resume
                        }
                    })),
                )
                .expect("register lease-gate");
        }
        moderator
            .register(
                &grant,
                Concern::new("handoff"),
                Box::new(FnAspect::new("handoff")),
            )
            .expect("register handoff");
        // Real library sink, declared pure: the telemetry row rides the
        // lock-free fast lane, which is where the recorded `fast_path`
        // counters come from.
        moderator
            .register(
                &observe,
                Concern::new("telemetry"),
                Box::new(AuditAspect::new(AuditLog::shared())),
            )
            .expect("register telemetry");
        moderator.wire_wakes(&grant, std::slice::from_ref(&acquire));
        moderator.wire_wakes(&acquire, &[]);
        moderator.wire_wakes(&observe, &[]);
        ring.push(Node {
            moderator,
            acquire,
            grant,
            observe,
            inbox,
        });
    }
    // All leases start at node 0 with their full visit budget.
    let total_visits = params.nodes * params.hops;
    {
        let mut inbox = ring[0].inbox.lock().unwrap();
        for lease in 0..params.leases {
            inbox.push_back((lease, total_visits));
        }
    }

    // Channel `c` delivers into node `c`; node `i`'s worker sends into
    // channel `(i + 1) % nodes`.
    type ChannelSlot = Arc<(parking_lot::Mutex<Channel>, Arc<dyn Waiter<Channel>>)>;
    let channels: Vec<ChannelSlot> = (0..nodes)
        .map(|_| {
            Arc::new((
                parking_lot::Mutex::new(Channel::default()),
                GrantSource::<Channel>::waiter(&engine),
            ))
        })
        .collect();
    let sends = Arc::new(AtomicU64::new(0));
    let handoffs: Arc<Mutex<Vec<(u64, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let retired: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

    fn invoke_ok(m: &AspectModerator, h: &MethodHandle) {
        let mut ctx = InvocationContext::new(h.id().clone(), m.next_invocation());
        m.preactivation(h, &mut ctx)
            .expect("topology rows never abort");
        m.postactivation(h, &mut ctx);
    }

    for (i, node) in ring.iter().enumerate() {
        // Worker: acquire every lease visit at this node, observe, and
        // forward (or retire) the lease.
        let m = Arc::clone(&node.moderator);
        let (acquire, observe) = (node.acquire.clone(), node.observe.clone());
        let inbox = Arc::clone(&node.inbox);
        let next_channel = Arc::clone(&channels[(i + 1) % nodes]);
        let next_c = ((i + 1) % nodes) as u64;
        let (sends, retired) = (Arc::clone(&sends), Arc::clone(&retired));
        let (clock_w, p) = (clock.clone(), params.clone());
        runner.spawn(&format!("w{i}"), move || {
            for _ in 0..p.leases * p.hops {
                let mut ctx = InvocationContext::new(acquire.id().clone(), m.next_invocation());
                m.preactivation(&acquire, &mut ctx)
                    .expect("acquire never aborts");
                let (lease, visits) = inbox
                    .lock()
                    .unwrap()
                    .pop_front()
                    .expect("a resumed acquire finds a lease");
                m.postactivation(&acquire, &mut ctx);
                invoke_ok(&m, &observe);
                let visits = visits - 1;
                if visits == 0 {
                    retired.lock().unwrap().push(lease);
                    continue;
                }
                let (ch, waiter) = &*next_channel;
                let mut g = ch.lock();
                let seq = g.next_send;
                g.next_send += 1;
                let nth = sends.fetch_add(1, Ordering::SeqCst) + 1;
                if p.drop_nth == Some(nth) {
                    continue; // lost in flight; the sequence number is gone with it
                }
                let delay = jitter(p.seed, next_c, seq) % (p.max_delay_ns + 1);
                let deliver_at = clock_w.now() + Duration::from_nanos(delay);
                g.in_flight.push((seq, deliver_at, lease, visits));
                drop(g);
                waiter.wake_all();
            }
        });

        // Courier: reassemble the channel's sequence order, honoring
        // each message's virtual delivery time, and grant each lease
        // into the node through its moderator.
        let m = Arc::clone(&node.moderator);
        let grant = node.grant.clone();
        let inbox = Arc::clone(&node.inbox);
        let channel = Arc::clone(&channels[i]);
        let handoffs = Arc::clone(&handoffs);
        let (clock_c, p) = (clock.clone(), params.clone());
        let c = i as u64;
        runner.spawn(&format!("courier{i}"), move || {
            let expected = p.leases * p.hops - if c == 0 { p.leases } else { 0 };
            for _ in 0..expected {
                let (seq, lease, visits) = {
                    let (ch, waiter) = &*channel;
                    let mut g = ch.lock();
                    loop {
                        let want = g.next_recv;
                        match g.in_flight.iter().position(|msg| msg.0 == want) {
                            Some(pos) => {
                                let now = clock_c.now();
                                let deliver_at = g.in_flight[pos].1;
                                if deliver_at <= now {
                                    let (seq, _, lease, visits) = g.in_flight.remove(pos);
                                    g.next_recv += 1;
                                    break (seq, lease, visits);
                                }
                                waiter.park_for(&mut g, deliver_at - now);
                            }
                            None => waiter.park(&mut g),
                        }
                    }
                };
                handoffs.lock().unwrap().push((c, seq, lease));
                inbox.lock().unwrap().push_back((lease, visits));
                invoke_ok(&m, &grant);
            }
        });
    }

    let report = runner.run();
    let (mut admits, mut fallbacks) = (0, 0);
    for node in &ring {
        let s = node.moderator.stats();
        admits += s.fast_path_admits;
        fallbacks += s.fast_path_fallbacks;
    }
    let handoffs = handoffs.lock().unwrap().clone();
    let retired = retired.lock().unwrap().clone();
    TopologyRecord {
        seed: params.seed,
        nodes: params.nodes,
        leases: params.leases,
        hops: params.hops,
        max_delay_ns: params.max_delay_ns,
        drop_nth: params.drop_nth,
        threads: report.names,
        schedule: report.schedule,
        clock_ns: report.clock.as_nanos(),
        handoffs,
        retired,
        fast_path_admits: admits,
        fast_path_fallbacks: fallbacks,
        error: report.error,
    }
}

//! The recorded scenario behind the `amf-sim` binary: a capacity-1
//! producer/consumer buffer (the paper's bounded-buffer shape, as two
//! moderated methods with cross-wired wakes) plus an `audit` method
//! carrying a seeded panic-injection aspect. Running it under a
//! [`SimRunner`] yields a [`RunRecord`] whose schedule replays the run
//! byte-identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

use amf_aspects::fault::PanicInjectionAspect;
use amf_core::trace::EventKind;
use amf_core::{
    AspectModerator, Concern, FairnessPolicy, FnAspect, InvocationContext, MemoryTrace,
    MethodHandle, MethodId, PanicPolicy, Verdict,
};

use crate::{RunRecord, SimRunner};

/// Shape of one simulated buffer run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioParams {
    /// Scheduler and fault-injection seed.
    pub seed: u64,
    /// Producer threads (each `open`s the buffer `rounds` times).
    pub producers: u64,
    /// Consumer threads (the `producers * rounds` takes are split
    /// between them).
    pub consumers: u64,
    /// Rounds per producer.
    pub rounds: u64,
    /// Precondition-panic rate on the audit method, in permille.
    pub fault_permille: u64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        Self {
            seed: 42,
            producers: 2,
            consumers: 1,
            rounds: 3,
            fault_permille: 0,
        }
    }
}

/// Replaces the panic hook with a no-op, once. Injected aspect panics
/// are contained by the moderator but still run the hook; silencing it
/// keeps recorded runs from flooding stderr with backtraces.
pub fn silence_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::panic::set_hook(Box::new(|_| {})));
}

fn invoke(m: &AspectModerator, h: &MethodHandle, aborted: &Mutex<Vec<u64>>) {
    let invocation = m.next_invocation();
    let mut ctx = InvocationContext::new(h.id().clone(), invocation);
    match m.preactivation(h, &mut ctx) {
        Ok(()) => m.postactivation(h, &mut ctx),
        Err(_) => aborted.lock().unwrap().push(invocation),
    }
}

/// Runs the buffer scenario under a fresh simulation. With
/// `script: None` the run records (scheduling by `params.seed`); with
/// `Some(schedule)` it replays that schedule. The returned record is a
/// pure function of `(params, script)` — recording and then replaying
/// the recorded schedule reproduces it exactly.
pub fn run_buffer_scenario(params: &ScenarioParams, script: Option<Vec<usize>>) -> RunRecord {
    if params.fault_permille > 0 {
        silence_panic_hook();
    }
    let mut runner = match script {
        None => SimRunner::new(params.seed),
        Some(s) => SimRunner::replay(params.seed, s),
    };
    let trace = MemoryTrace::shared();
    let moderator = Arc::new(
        AspectModerator::builder()
            .fairness(FairnessPolicy::Fifo)
            .panic_policy(PanicPolicy::AbortInvocation)
            .engine(Arc::new(runner.engine()))
            .clock(Arc::new(runner.clock()))
            .trace(trace.clone())
            .build(),
    );
    let open = moderator.declare_method(MethodId::new("open"));
    let take = moderator.declare_method(MethodId::new("take"));
    let audit = moderator.declare_method(MethodId::new("audit"));

    let slots = Arc::new(AtomicU64::new(1));
    let items = Arc::new(AtomicU64::new(0));
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &open,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("slot-gate")
                        .on_precondition(move |_| {
                            if slots.load(Ordering::SeqCst) > 0 {
                                slots.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            items.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .expect("register slot-gate");
    }
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &take,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("item-gate")
                        .on_precondition(move |_| {
                            if items.load(Ordering::SeqCst) > 0 {
                                items.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            slots.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .expect("register item-gate");
    }
    moderator
        .register(
            &audit,
            Concern::new("fault-injection"),
            Box::new(PanicInjectionAspect::new(
                params.fault_permille as f64 / 1000.0,
                0.0,
                params.seed,
            )),
        )
        .expect("register fault injector");
    moderator.wire_wakes(&open, std::slice::from_ref(&take));
    moderator.wire_wakes(&take, std::slice::from_ref(&open));
    moderator.wire_wakes(&audit, &[]);

    let aborted = Arc::new(Mutex::new(Vec::new()));
    for p in 0..params.producers {
        let m = Arc::clone(&moderator);
        let (open, audit) = (open.clone(), audit.clone());
        let aborted = Arc::clone(&aborted);
        let rounds = params.rounds;
        runner.spawn(&format!("p{p}"), move || {
            for _ in 0..rounds {
                invoke(&m, &open, &aborted);
                invoke(&m, &audit, &aborted);
            }
        });
    }
    let total_takes = params.producers * params.rounds;
    for c in 0..params.consumers {
        let m = Arc::clone(&moderator);
        let take = take.clone();
        let aborted = Arc::clone(&aborted);
        // Split the takes; earlier consumers absorb the remainder.
        let share = total_takes / params.consumers + u64::from(c < total_takes % params.consumers);
        runner.spawn(&format!("c{c}"), move || {
            for _ in 0..share {
                invoke(&m, &take, &aborted);
            }
        });
    }

    let report = runner.run();
    let faults = aborted.lock().unwrap().clone();
    let grants = trace
        .events()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::ActivationResumed))
        .map(|e| (e.invocation, e.method.as_str().to_string()))
        .collect();
    RunRecord {
        seed: params.seed,
        producers: params.producers,
        consumers: params.consumers,
        rounds: params.rounds,
        fault_permille: params.fault_permille,
        threads: report.names,
        schedule: report.schedule,
        clock_ns: report.clock.as_nanos(),
        grants,
        faults,
        error: report.error,
    }
}

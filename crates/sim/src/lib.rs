//! Deterministic simulation for the Aspect Moderator framework.
//!
//! The moderator's protocol code is engine-agnostic: every park and
//! wake flows through the [`GrantSource`]/[`Waiter`] seam, and every
//! deadline through its [`Clock`]. This crate plugs a *simulator* into
//! both seams:
//!
//! - [`SimRunner`] owns a cooperative token scheduler. Exactly one
//!   simulated thread runs at a time; a thread yields only by parking
//!   or finishing, and the next runnable thread is picked by a seeded
//!   RNG (record mode) or a previously recorded schedule (replay mode).
//! - [`SimEngine`] is the [`GrantSource`] to install via
//!   `ModeratorBuilder::engine`: its waitpoints park through the
//!   scheduler instead of an OS condvar.
//! - The runner's [`ManualClock`](amf_concurrency::ManualClock) —
//!   installed via `ModeratorBuilder::clock` — is virtual time: it
//!   advances only when nothing is runnable, jumping to the earliest
//!   parked deadline. Timed protocol waits (pre-activation timeouts,
//!   rollback backstops) resolve instantly in wall time, in the order a
//!   real clock would impose.
//!
//! A run is a pure function of `(seed, spawn order, program)`. The
//! grant-order decision list in [`SimReport::schedule`] is the whole
//! interleaving; replaying it reproduces the run exactly — same grants,
//! same faults, same clock — which the `amf-sim` binary checks by
//! byte-comparing recorded and replayed [`RunRecord`] artifacts.
//! Deadlocks are detected, not hung on: when no thread is runnable and
//! no deadline is pending, the run stops with the parked set named in
//! [`SimReport::error`].
//!
//! This complements `amf-verify`'s exhaustive checker: the checker
//! enumerates every schedule of a *modeled* composition; the simulator
//! drives the *real* `AspectModerator` — actual protocol code, actual
//! aspects — down one seeded, replayable schedule.
//!
//! [`GrantSource`]: amf_concurrency::GrantSource
//! [`Waiter`]: amf_concurrency::Waiter
//! [`Clock`]: amf_concurrency::Clock

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod engine;
mod scenario;
mod scheduler;

pub use artifact::{ReplayHeader, RunRecord, TopologyRecord, TopologyReplayHeader};
pub use engine::SimEngine;
pub use scenario::{
    run_buffer_scenario, run_topology_scenario, silence_panic_hook, ScenarioParams, TopologyParams,
};
pub use scheduler::{SimReport, SimRunner};

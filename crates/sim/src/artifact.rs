//! The replayable run artifact: a JSON record of one simulated run —
//! scenario parameters, the schedule, the grant order, and the injected
//! faults — plus the minimal field scanning replay needs to re-drive
//! it. Rendering is hand-rolled (the workspace's `serde` is an offline
//! API shim) and deterministic: replaying an artifact's schedule must
//! reproduce its bytes exactly, so byte equality is the replay check.

use std::time::Duration;

/// Everything recorded about one simulated scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Scheduler (and fault-injection) seed.
    pub seed: u64,
    /// Scenario shape: producer thread count.
    pub producers: u64,
    /// Scenario shape: consumer thread count.
    pub consumers: u64,
    /// Rounds per producer.
    pub rounds: u64,
    /// Injected precondition-panic rate, in permille, on the audit
    /// method (0 disables injection).
    pub fault_permille: u64,
    /// Simulated-thread names, indexed by thread id.
    pub threads: Vec<String>,
    /// The full grant order (thread id per scheduling decision).
    pub schedule: Vec<usize>,
    /// Final virtual-clock reading, in nanoseconds.
    pub clock_ns: u128,
    /// `(invocation, method)` per pre-activation grant, in grant order.
    pub grants: Vec<(u64, String)>,
    /// Invocations aborted by an injected aspect panic, in order.
    pub faults: Vec<u64>,
    /// Invocations admitted through the moderator's lock-free fast
    /// lane (single CAS, chain skipped). Part of the byte-identity
    /// check: a replay that admits differently diverges here.
    pub fast_path_admits: u64,
    /// Fast-lane attempts that found the lane open but lost the CAS
    /// and fell back to the locked path. Always 0 under the simulator's
    /// token scheduler (one thread runs at a time, so the CAS never
    /// races) — recorded so a real-contention harness can reuse the
    /// artifact shape and so a nonzero value flags a scheduler bug.
    pub fast_path_fallbacks: u64,
    /// Scheduler-fatal condition (deadlock, replay divergence), if any.
    pub error: Option<String>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RunRecord {
    /// Renders the artifact. The layout is fixed and the content is a
    /// pure function of the run, so a faithful replay reproduces the
    /// output byte for byte.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"scenario\": {{ \"producers\": {}, \"consumers\": {}, \"rounds\": {}, \
             \"fault_permille\": {} }},\n",
            self.producers, self.consumers, self.rounds, self.fault_permille
        ));
        let names: Vec<String> = self
            .threads
            .iter()
            .map(|n| format!("\"{}\"", escape(n)))
            .collect();
        out.push_str(&format!("  \"threads\": [{}],\n", names.join(", ")));
        let steps: Vec<String> = self.schedule.iter().map(usize::to_string).collect();
        out.push_str(&format!("  \"schedule\": [{}],\n", steps.join(", ")));
        out.push_str(&format!("  \"clock_ns\": {},\n", self.clock_ns));
        let grants: Vec<String> = self
            .grants
            .iter()
            .map(|(inv, method)| {
                format!(
                    "{{ \"invocation\": {inv}, \"method\": \"{}\" }}",
                    escape(method)
                )
            })
            .collect();
        out.push_str(&format!("  \"grants\": [{}],\n", grants.join(", ")));
        let faults: Vec<String> = self.faults.iter().map(u64::to_string).collect();
        out.push_str(&format!("  \"faults\": [{}],\n", faults.join(", ")));
        out.push_str(&format!(
            "  \"fast_path\": {{ \"admits\": {}, \"fallbacks\": {} }},\n",
            self.fast_path_admits, self.fast_path_fallbacks
        ));
        match &self.error {
            None => out.push_str("  \"error\": null\n"),
            Some(e) => out.push_str(&format!("  \"error\": \"{}\"\n", escape(e))),
        }
        out.push_str("}\n");
        out
    }

    /// Final virtual clock as a [`Duration`].
    pub fn clock(&self) -> Duration {
        Duration::from_nanos(self.clock_ns as u64)
    }
}

/// Everything recorded about one simulated multi-moderator topology
/// run (`run_topology_scenario`): N independent moderators in a ring,
/// leases handed off over simulated channels with virtual-clock
/// delivery delays. Same byte-identity contract as [`RunRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyRecord {
    /// Scheduler (and delivery-jitter) seed.
    pub seed: u64,
    /// Ring size: independent moderator instances.
    pub nodes: u64,
    /// Leases circulating the ring (all start at node 0).
    pub leases: u64,
    /// Full ring laps each lease makes before retiring.
    pub hops: u64,
    /// Upper bound on the seeded per-message delivery delay, in
    /// nanoseconds of virtual time (0 = instant delivery).
    pub max_delay_ns: u64,
    /// Fault ablation: the global 1-based index of a handoff message
    /// to drop in flight, if any. With recovery disabled
    /// (`expiry_ns == 0`) a dropped handoff starves the receiving
    /// courier's sequence cursor and the whole ring winds down into a
    /// detected deadlock; with recovery enabled the sender retransmits
    /// and the run completes.
    pub drop_nth: Option<u64>,
    /// Fault knob: the global 1-based index of a handoff message to
    /// duplicate in flight, if any (socket-shaped channel).
    pub dup_nth: Option<u64>,
    /// Lease expiry deadline in nanoseconds of virtual time; 0 runs
    /// the pre-recovery protocol (no retransmission, no reclaim).
    pub expiry_ns: u64,
    /// Simulated-thread names, indexed by thread id.
    pub threads: Vec<String>,
    /// The full grant order (thread id per scheduling decision).
    pub schedule: Vec<usize>,
    /// Final virtual-clock reading, in nanoseconds.
    pub clock_ns: u128,
    /// `(channel, seq, lease)` per completed handoff, in delivery
    /// order. Per channel, `seq` is strictly increasing — the courier
    /// holds out-of-order arrivals back — which is the FIFO
    /// no-overtake obligation the model checker proves.
    pub handoffs: Vec<(u64, u64, u64)>,
    /// Lease ids in retirement order.
    pub retired: Vec<u64>,
    /// Frames retransmitted after a backoff deadline, summed over the
    /// ring (0 with recovery disabled).
    pub retransmits: u64,
    /// Handoffs reclaimed after lease expiry, summed over the ring.
    pub reclaimed: u64,
    /// Duplicate frames dropped idempotently by receivers.
    pub dup_dropped: u64,
    /// Admissions moderated while a node was degraded (its successor
    /// link had reclaimed work outstanding).
    pub degraded_entries: u64,
    /// Fast-lane admissions summed over every node's moderator (the
    /// per-node telemetry row rides the lane).
    pub fast_path_admits: u64,
    /// Fast-lane CAS losses summed over every node's moderator.
    pub fast_path_fallbacks: u64,
    /// Scheduler-fatal condition (deadlock, replay divergence), if any.
    pub error: Option<String>,
}

impl TopologyRecord {
    /// Renders the artifact; fixed layout, byte-reproducible by a
    /// faithful replay (see [`RunRecord::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        let drop_nth = match self.drop_nth {
            None => "null".to_string(),
            Some(n) => n.to_string(),
        };
        let dup_nth = match self.dup_nth {
            None => "null".to_string(),
            Some(n) => n.to_string(),
        };
        out.push_str(&format!(
            "  \"topology\": {{ \"nodes\": {}, \"leases\": {}, \"hops\": {}, \
             \"max_delay_ns\": {}, \"drop_nth\": {}, \"dup_nth\": {}, \"expiry_ns\": {} }},\n",
            self.nodes,
            self.leases,
            self.hops,
            self.max_delay_ns,
            drop_nth,
            dup_nth,
            self.expiry_ns
        ));
        let names: Vec<String> = self
            .threads
            .iter()
            .map(|n| format!("\"{}\"", escape(n)))
            .collect();
        out.push_str(&format!("  \"threads\": [{}],\n", names.join(", ")));
        let steps: Vec<String> = self.schedule.iter().map(usize::to_string).collect();
        out.push_str(&format!("  \"schedule\": [{}],\n", steps.join(", ")));
        out.push_str(&format!("  \"clock_ns\": {},\n", self.clock_ns));
        let handoffs: Vec<String> = self
            .handoffs
            .iter()
            .map(|(channel, seq, lease)| {
                format!("{{ \"channel\": {channel}, \"seq\": {seq}, \"lease\": {lease} }}")
            })
            .collect();
        out.push_str(&format!("  \"handoffs\": [{}],\n", handoffs.join(", ")));
        let retired: Vec<String> = self.retired.iter().map(u64::to_string).collect();
        out.push_str(&format!("  \"retired\": [{}],\n", retired.join(", ")));
        out.push_str(&format!(
            "  \"recovery\": {{ \"retransmits\": {}, \"reclaimed\": {}, \"dup_dropped\": {}, \
             \"degraded_entries\": {} }},\n",
            self.retransmits, self.reclaimed, self.dup_dropped, self.degraded_entries
        ));
        out.push_str(&format!(
            "  \"fast_path\": {{ \"admits\": {}, \"fallbacks\": {} }},\n",
            self.fast_path_admits, self.fast_path_fallbacks
        ));
        match &self.error {
            None => out.push_str("  \"error\": null\n"),
            Some(e) => out.push_str(&format!("  \"error\": \"{}\"\n", escape(e))),
        }
        out.push_str("}\n");
        out
    }

    /// Final virtual clock as a [`Duration`].
    pub fn clock(&self) -> Duration {
        Duration::from_nanos(self.clock_ns as u64)
    }
}

/// The fields replay needs from a recorded topology artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyReplayHeader {
    /// Recorded seed.
    pub seed: u64,
    /// Recorded ring size.
    pub nodes: u64,
    /// Recorded lease count.
    pub leases: u64,
    /// Recorded laps per lease.
    pub hops: u64,
    /// Recorded delivery-jitter bound.
    pub max_delay_ns: u64,
    /// Recorded drop ablation, if any.
    pub drop_nth: Option<u64>,
    /// Recorded duplication knob, if any.
    pub dup_nth: Option<u64>,
    /// Recorded lease expiry (0 = recovery disabled).
    pub expiry_ns: u64,
    /// Recorded grant order, the replay script.
    pub schedule: Vec<usize>,
}

impl TopologyReplayHeader {
    /// Scans a [`TopologyRecord::to_json`] rendering for the replay
    /// fields; `None` on any missing or malformed field.
    pub fn scan(text: &str) -> Option<Self> {
        Some(Self {
            seed: scan_u64(text, "seed")?,
            nodes: scan_u64(text, "nodes")?,
            leases: scan_u64(text, "leases")?,
            hops: scan_u64(text, "hops")?,
            max_delay_ns: scan_u64(text, "max_delay_ns")?,
            drop_nth: scan_opt_u64(text, "drop_nth")?,
            dup_nth: scan_opt_u64(text, "dup_nth")?,
            expiry_ns: scan_u64(text, "expiry_ns")?,
            schedule: scan_usize_array(text, "schedule")?,
        })
    }
}

/// The value following `"key":` as `Some(n)` for digits, `None` (inner)
/// for `null`; outer `None` when the key is missing.
#[allow(clippy::option_option)]
fn scan_opt_u64(text: &str, key: &str) -> Option<Option<u64>> {
    let rest = after_key(text, key)?;
    if rest.starts_with("null") {
        return Some(None);
    }
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    Some(Some(digits.parse().ok()?))
}

/// The fields replay needs from a recorded artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayHeader {
    /// Scheduler (and fault-injection) seed of the recorded run.
    pub seed: u64,
    /// Recorded producer thread count.
    pub producers: u64,
    /// Recorded consumer thread count.
    pub consumers: u64,
    /// Recorded rounds per producer.
    pub rounds: u64,
    /// Recorded injection rate, in permille.
    pub fault_permille: u64,
    /// Recorded grant order, to be followed as the replay script.
    pub schedule: Vec<usize>,
}

impl ReplayHeader {
    /// Scans `text` (an artifact rendered by [`RunRecord::to_json`])
    /// for the replay fields. Returns `None` if any field is missing
    /// or malformed — this is a key scanner for our own fixed layout,
    /// not a general JSON parser.
    pub fn scan(text: &str) -> Option<Self> {
        Some(Self {
            seed: scan_u64(text, "seed")?,
            producers: scan_u64(text, "producers")?,
            consumers: scan_u64(text, "consumers")?,
            rounds: scan_u64(text, "rounds")?,
            fault_permille: scan_u64(text, "fault_permille")?,
            schedule: scan_usize_array(text, "schedule")?,
        })
    }
}

/// The digits following `"key":` (first occurrence), parsed as `u64`.
fn scan_u64(text: &str, key: &str) -> Option<u64> {
    let rest = after_key(text, key)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The `[n, n, ...]` following `"key":` (first occurrence).
fn scan_usize_array(text: &str, key: &str) -> Option<Vec<usize>> {
    let rest = after_key(text, key)?;
    let rest = rest.strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    let trimmed = body.trim();
    if trimmed.is_empty() {
        return Some(Vec::new());
    }
    trimmed
        .split(',')
        .map(|part| part.trim().parse().ok())
        .collect()
}

/// The text following `"key":` with leading whitespace trimmed.
fn after_key<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)?;
    Some(text[at + needle.len()..].trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RunRecord {
        RunRecord {
            seed: 42,
            producers: 2,
            consumers: 1,
            rounds: 3,
            fault_permille: 125,
            threads: vec!["p0".into(), "p1".into(), "c0".into()],
            schedule: vec![0, 1, 2, 0, 2],
            clock_ns: 1_000_000,
            grants: vec![(1, "open".into()), (2, "take".into())],
            faults: vec![4],
            fast_path_admits: 6,
            fast_path_fallbacks: 0,
            error: None,
        }
    }

    #[test]
    fn scan_recovers_replay_fields() {
        let rec = record();
        let header = ReplayHeader::scan(&rec.to_json()).unwrap();
        assert_eq!(
            header,
            ReplayHeader {
                seed: 42,
                producers: 2,
                consumers: 1,
                rounds: 3,
                fault_permille: 125,
                schedule: vec![0, 1, 2, 0, 2],
            }
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(record().to_json(), record().to_json());
    }

    #[test]
    fn empty_schedule_scans_as_empty() {
        let mut rec = record();
        rec.schedule.clear();
        let header = ReplayHeader::scan(&rec.to_json()).unwrap();
        assert!(header.schedule.is_empty());
    }

    #[test]
    fn fast_path_counters_render_and_discriminate() {
        let rec = record();
        let json = rec.to_json();
        assert!(json.contains("\"fast_path\": { \"admits\": 6, \"fallbacks\": 0 }"));
        // The counters are inside the byte-identity perimeter: a run
        // that admits differently cannot render the same artifact.
        let mut other = record();
        other.fast_path_admits = 5;
        assert_ne!(other.to_json(), json);
        // And the replay scanner is unconfused by the nested object.
        assert_eq!(
            ReplayHeader::scan(&json),
            ReplayHeader::scan(&other.to_json())
        );
    }

    fn topology_record() -> TopologyRecord {
        TopologyRecord {
            seed: 7,
            nodes: 2,
            leases: 2,
            hops: 3,
            max_delay_ns: 500,
            drop_nth: None,
            dup_nth: None,
            expiry_ns: 0,
            threads: vec![
                "w0".into(),
                "courier0".into(),
                "w1".into(),
                "courier1".into(),
            ],
            schedule: vec![0, 2, 1, 3],
            clock_ns: 2_500,
            handoffs: vec![(1, 0, 0), (0, 0, 0), (1, 1, 1)],
            retired: vec![0, 1],
            retransmits: 0,
            reclaimed: 0,
            dup_dropped: 0,
            degraded_entries: 0,
            fast_path_admits: 12,
            fast_path_fallbacks: 0,
            error: None,
        }
    }

    #[test]
    fn topology_scan_recovers_replay_fields() {
        let rec = topology_record();
        let header = TopologyReplayHeader::scan(&rec.to_json()).unwrap();
        assert_eq!(
            header,
            TopologyReplayHeader {
                seed: 7,
                nodes: 2,
                leases: 2,
                hops: 3,
                max_delay_ns: 500,
                drop_nth: None,
                dup_nth: None,
                expiry_ns: 0,
                schedule: vec![0, 2, 1, 3],
            }
        );
    }

    #[test]
    fn topology_drop_nth_round_trips() {
        let mut rec = topology_record();
        rec.drop_nth = Some(4);
        let json = rec.to_json();
        assert!(json.contains("\"drop_nth\": 4"));
        let header = TopologyReplayHeader::scan(&json).unwrap();
        assert_eq!(header.drop_nth, Some(4));
    }

    #[test]
    fn topology_recovery_fields_round_trip() {
        let mut rec = topology_record();
        rec.dup_nth = Some(2);
        rec.expiry_ns = 50_000;
        rec.retransmits = 3;
        rec.reclaimed = 1;
        rec.dup_dropped = 2;
        rec.degraded_entries = 4;
        let json = rec.to_json();
        assert!(json.contains("\"dup_nth\": 2"));
        assert!(json.contains("\"expiry_ns\": 50000"));
        assert!(json.contains(
            "\"recovery\": { \"retransmits\": 3, \"reclaimed\": 1, \"dup_dropped\": 2, \
             \"degraded_entries\": 4 }"
        ));
        let header = TopologyReplayHeader::scan(&json).unwrap();
        assert_eq!(header.dup_nth, Some(2));
        assert_eq!(header.expiry_ns, 50_000);
        // Recovery counters sit inside the byte-identity perimeter.
        let mut other = rec.clone();
        other.retransmits = 0;
        assert_ne!(other.to_json(), json);
    }

    #[test]
    fn topology_rendering_is_deterministic() {
        assert_eq!(topology_record().to_json(), topology_record().to_json());
        // Handoffs and fast-path counters sit inside the byte-identity
        // perimeter.
        let mut other = topology_record();
        other.handoffs[0].1 = 9;
        assert_ne!(other.to_json(), topology_record().to_json());
        let mut other = topology_record();
        other.fast_path_admits = 0;
        assert_ne!(other.to_json(), topology_record().to_json());
    }

    #[test]
    fn error_strings_are_escaped() {
        let mut rec = record();
        rec.error = Some("deadlock: [\"a\"]\nparked".into());
        let json = rec.to_json();
        assert!(json.contains("\\\"a\\\""));
        assert!(json.contains("\\n"));
    }
}

//! The replayable run artifact: a JSON record of one simulated run —
//! scenario parameters, the schedule, the grant order, and the injected
//! faults — plus the minimal field scanning replay needs to re-drive
//! it. Rendering is hand-rolled (the workspace's `serde` is an offline
//! API shim) and deterministic: replaying an artifact's schedule must
//! reproduce its bytes exactly, so byte equality is the replay check.

use std::time::Duration;

/// Everything recorded about one simulated scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRecord {
    /// Scheduler (and fault-injection) seed.
    pub seed: u64,
    /// Scenario shape: producer thread count.
    pub producers: u64,
    /// Scenario shape: consumer thread count.
    pub consumers: u64,
    /// Rounds per producer.
    pub rounds: u64,
    /// Injected precondition-panic rate, in permille, on the audit
    /// method (0 disables injection).
    pub fault_permille: u64,
    /// Simulated-thread names, indexed by thread id.
    pub threads: Vec<String>,
    /// The full grant order (thread id per scheduling decision).
    pub schedule: Vec<usize>,
    /// Final virtual-clock reading, in nanoseconds.
    pub clock_ns: u128,
    /// `(invocation, method)` per pre-activation grant, in grant order.
    pub grants: Vec<(u64, String)>,
    /// Invocations aborted by an injected aspect panic, in order.
    pub faults: Vec<u64>,
    /// Scheduler-fatal condition (deadlock, replay divergence), if any.
    pub error: Option<String>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RunRecord {
    /// Renders the artifact. The layout is fixed and the content is a
    /// pure function of the run, so a faithful replay reproduces the
    /// output byte for byte.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!(
            "  \"scenario\": {{ \"producers\": {}, \"consumers\": {}, \"rounds\": {}, \
             \"fault_permille\": {} }},\n",
            self.producers, self.consumers, self.rounds, self.fault_permille
        ));
        let names: Vec<String> = self
            .threads
            .iter()
            .map(|n| format!("\"{}\"", escape(n)))
            .collect();
        out.push_str(&format!("  \"threads\": [{}],\n", names.join(", ")));
        let steps: Vec<String> = self.schedule.iter().map(usize::to_string).collect();
        out.push_str(&format!("  \"schedule\": [{}],\n", steps.join(", ")));
        out.push_str(&format!("  \"clock_ns\": {},\n", self.clock_ns));
        let grants: Vec<String> = self
            .grants
            .iter()
            .map(|(inv, method)| {
                format!(
                    "{{ \"invocation\": {inv}, \"method\": \"{}\" }}",
                    escape(method)
                )
            })
            .collect();
        out.push_str(&format!("  \"grants\": [{}],\n", grants.join(", ")));
        let faults: Vec<String> = self.faults.iter().map(u64::to_string).collect();
        out.push_str(&format!("  \"faults\": [{}],\n", faults.join(", ")));
        match &self.error {
            None => out.push_str("  \"error\": null\n"),
            Some(e) => out.push_str(&format!("  \"error\": \"{}\"\n", escape(e))),
        }
        out.push_str("}\n");
        out
    }

    /// Final virtual clock as a [`Duration`].
    pub fn clock(&self) -> Duration {
        Duration::from_nanos(self.clock_ns as u64)
    }
}

/// The fields replay needs from a recorded artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayHeader {
    /// Scheduler (and fault-injection) seed of the recorded run.
    pub seed: u64,
    /// Recorded producer thread count.
    pub producers: u64,
    /// Recorded consumer thread count.
    pub consumers: u64,
    /// Recorded rounds per producer.
    pub rounds: u64,
    /// Recorded injection rate, in permille.
    pub fault_permille: u64,
    /// Recorded grant order, to be followed as the replay script.
    pub schedule: Vec<usize>,
}

impl ReplayHeader {
    /// Scans `text` (an artifact rendered by [`RunRecord::to_json`])
    /// for the replay fields. Returns `None` if any field is missing
    /// or malformed — this is a key scanner for our own fixed layout,
    /// not a general JSON parser.
    pub fn scan(text: &str) -> Option<Self> {
        Some(Self {
            seed: scan_u64(text, "seed")?,
            producers: scan_u64(text, "producers")?,
            consumers: scan_u64(text, "consumers")?,
            rounds: scan_u64(text, "rounds")?,
            fault_permille: scan_u64(text, "fault_permille")?,
            schedule: scan_usize_array(text, "schedule")?,
        })
    }
}

/// The digits following `"key":` (first occurrence), parsed as `u64`.
fn scan_u64(text: &str, key: &str) -> Option<u64> {
    let rest = after_key(text, key)?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// The `[n, n, ...]` following `"key":` (first occurrence).
fn scan_usize_array(text: &str, key: &str) -> Option<Vec<usize>> {
    let rest = after_key(text, key)?;
    let rest = rest.strip_prefix('[')?;
    let body = &rest[..rest.find(']')?];
    let trimmed = body.trim();
    if trimmed.is_empty() {
        return Some(Vec::new());
    }
    trimmed
        .split(',')
        .map(|part| part.trim().parse().ok())
        .collect()
}

/// The text following `"key":` with leading whitespace trimmed.
fn after_key<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)?;
    Some(text[at + needle.len()..].trim_start())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RunRecord {
        RunRecord {
            seed: 42,
            producers: 2,
            consumers: 1,
            rounds: 3,
            fault_permille: 125,
            threads: vec!["p0".into(), "p1".into(), "c0".into()],
            schedule: vec![0, 1, 2, 0, 2],
            clock_ns: 1_000_000,
            grants: vec![(1, "open".into()), (2, "take".into())],
            faults: vec![4],
            error: None,
        }
    }

    #[test]
    fn scan_recovers_replay_fields() {
        let rec = record();
        let header = ReplayHeader::scan(&rec.to_json()).unwrap();
        assert_eq!(
            header,
            ReplayHeader {
                seed: 42,
                producers: 2,
                consumers: 1,
                rounds: 3,
                fault_permille: 125,
                schedule: vec![0, 1, 2, 0, 2],
            }
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(record().to_json(), record().to_json());
    }

    #[test]
    fn empty_schedule_scans_as_empty() {
        let mut rec = record();
        rec.schedule.clear();
        let header = ReplayHeader::scan(&rec.to_json()).unwrap();
        assert!(header.schedule.is_empty());
    }

    #[test]
    fn error_strings_are_escaped() {
        let mut rec = record();
        rec.error = Some("deadlock: [\"a\"]\nparked".into());
        let json = rec.to_json();
        assert!(json.contains("\\\"a\\\""));
        assert!(json.contains("\\n"));
    }
}

//! The cooperative token scheduler behind [`SimEngine`](crate::SimEngine).
//!
//! Exactly one simulated thread runs at a time: the one holding the
//! *token* (`current`). Every other thread is blocked inside this
//! module — waiting for its first grant, or parked on a waitpoint. A
//! thread gives the token up only by parking ([`Shared::park`]) or
//! finishing, and the scheduler then picks the next runnable thread
//! with the seeded RNG (record mode) or by following a previously
//! recorded schedule (replay mode). Because every interleaving decision
//! flows through that single chokepoint, a run is a pure function of
//! `(seed, spawn order, program)` — and the decision list *is* the
//! schedule artifact that replays it.
//!
//! Time is virtual: a [`ManualClock`] shared with the moderator under
//! test. The clock only moves when no thread is runnable — it jumps to
//! the earliest parked deadline, waking the timed sleepers — so timed
//! protocol waits (pre-activation timeouts, rollback backstops) resolve
//! instantly in wall time yet in the same order a real clock would
//! impose. If no thread is runnable and no deadline is pending, the
//! run is deadlocked and the scheduler says so instead of hanging.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicUsize;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use amf_concurrency::{Clock, ManualClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

thread_local! {
    /// The simulated-thread index of the current OS thread, set by the
    /// [`SimRunner::spawn`] wrapper before the body runs.
    static SIM_ID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The simulated-thread index of the calling OS thread.
///
/// # Panics
///
/// If the caller was not spawned through [`SimRunner::spawn`] — a
/// [`SimEngine`](crate::SimEngine) waitpoint cannot park a thread the
/// scheduler does not own.
pub(crate) fn current_sim_id() -> usize {
    SIM_ID
        .with(std::cell::Cell::get)
        .expect("SimEngine waitpoint used outside a simulated thread; use SimRunner::spawn")
}

/// Scheduler-visible lifecycle of one simulated thread.
enum Status {
    /// Runnable: waiting for (or holding) the token.
    Ready,
    /// Parked on waitpoint `point`; runnable again once `woken` (by a
    /// wake or by the virtual clock reaching `deadline`).
    Parked {
        point: usize,
        deadline: Option<Duration>,
        woken: bool,
    },
    /// The thread body returned (or panicked).
    Done,
}

/// Everything the scheduler mutates, under one lock.
struct SchedState {
    names: Vec<String>,
    status: Vec<Status>,
    /// The token: index of the one thread allowed to run.
    current: Option<usize>,
    rng: StdRng,
    /// Replay script (grant order to follow) when replaying.
    script: Option<Vec<usize>>,
    cursor: usize,
    /// Every grant decision made, in order — the recorded schedule.
    decisions: Vec<usize>,
    /// First fatal condition: deadlock, replay divergence, or an
    /// exhausted script. Progress stops only for deadlock.
    error: Option<String>,
    /// `(thread name, panic message)` for bodies that unwound.
    panics: Vec<(String, String)>,
}

/// State shared by the runner, the engine, and every simulated thread.
pub(crate) struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
    pub(crate) clock: ManualClock,
    /// Waitpoint id allocator for [`SimEngine`](crate::SimEngine).
    pub(crate) next_point: AtomicUsize,
}

impl Shared {
    /// Grants the token to the next runnable thread, advancing the
    /// virtual clock past parked deadlines when nothing is runnable.
    /// Caller holds the state lock and must notify the condvar after.
    fn pick_next(&self, s: &mut SchedState) {
        loop {
            let runnable: Vec<usize> = s
                .status
                .iter()
                .enumerate()
                .filter(|(_, st)| matches!(st, Status::Ready | Status::Parked { woken: true, .. }))
                .map(|(i, _)| i)
                .collect();
            if !runnable.is_empty() {
                let chosen = match &s.script {
                    Some(script) => {
                        let want = script.get(s.cursor).copied();
                        s.cursor += 1;
                        match want {
                            Some(w) if runnable.contains(&w) => w,
                            Some(w) => {
                                if s.error.is_none() {
                                    s.error = Some(format!(
                                        "replay divergence at step {}: scripted thread {w} ({}) \
                                         is not runnable",
                                        s.cursor - 1,
                                        s.names.get(w).map_or("?", |n| n.as_str()),
                                    ));
                                }
                                runnable[0]
                            }
                            None => {
                                if s.error.is_none() {
                                    s.error = Some(format!(
                                        "replay script exhausted at step {}",
                                        s.cursor - 1
                                    ));
                                }
                                runnable[0]
                            }
                        }
                    }
                    None => runnable[s.rng.gen_range(0..runnable.len())],
                };
                s.decisions.push(chosen);
                s.status[chosen] = Status::Ready;
                s.current = Some(chosen);
                return;
            }
            if s.status.iter().all(|st| matches!(st, Status::Done)) {
                s.current = None;
                return;
            }
            // Only parked threads remain: move virtual time to the
            // earliest pending deadline, or report deadlock.
            let next_deadline = s
                .status
                .iter()
                .filter_map(|st| match st {
                    Status::Parked {
                        deadline: Some(d),
                        woken: false,
                        ..
                    } => Some(*d),
                    _ => None,
                })
                .min();
            let Some(target) = next_deadline else {
                let parked: Vec<&str> = s
                    .status
                    .iter()
                    .enumerate()
                    .filter(|(_, st)| matches!(st, Status::Parked { .. }))
                    .map(|(i, _)| s.names[i].as_str())
                    .collect();
                if s.error.is_none() {
                    s.error = Some(format!(
                        "deadlock: [{}] parked with no wake or deadline pending",
                        parked.join(", ")
                    ));
                }
                s.current = None;
                return;
            };
            let now = self.clock.now();
            if target > now {
                self.clock.advance(target - now);
            }
            let now = self.clock.now();
            for st in s.status.iter_mut() {
                if let Status::Parked {
                    deadline: Some(d),
                    woken,
                    ..
                } = st
                {
                    if *d <= now {
                        *woken = true;
                    }
                }
            }
        }
    }

    /// Parks the calling simulated thread on `point` (with an optional
    /// relative virtual-time `timeout`), hands the token on, and blocks
    /// until the scheduler grants the token back. Returns whether the
    /// virtual deadline had passed by re-grant time (the timed-out
    /// flag; a racing wake may report either way, per the [`Waiter`]
    /// contract).
    ///
    /// Must be called with no cell lock held (the waitpoint releases it
    /// first). In a deadlocked run the thread is never re-granted and
    /// blocks here forever; [`SimRunner::run`] detaches it.
    ///
    /// [`Waiter`]: amf_concurrency::Waiter
    pub(crate) fn park(&self, me: usize, point: usize, timeout: Option<Duration>) -> bool {
        let mut s = self.state.lock().unwrap();
        let deadline = timeout.map(|t| self.clock.now() + t);
        let woken = deadline.is_some_and(|d| d <= self.clock.now());
        s.status[me] = Status::Parked {
            point,
            deadline,
            woken,
        };
        self.pick_next(&mut s);
        self.cv.notify_all();
        while s.current != Some(me) {
            s = self.cv.wait(s).unwrap();
        }
        deadline.is_some_and(|d| self.clock.now() >= d)
    }

    /// Marks parked threads on `point` as woken: the lowest-indexed
    /// unwoken one (`all = false`) or every one (`all = true`). Pure
    /// state — the wake takes effect at the next scheduling decision,
    /// which is what makes wake-vs-park races impossible by
    /// construction (the waker holds the token; nobody parks meanwhile).
    pub(crate) fn wake(&self, point: usize, all: bool) {
        let mut s = self.state.lock().unwrap();
        for st in s.status.iter_mut() {
            if let Status::Parked {
                point: p, woken, ..
            } = st
            {
                if *p == point && !*woken {
                    *woken = true;
                    if !all {
                        break;
                    }
                }
            }
        }
    }

    /// Blocks until the token is granted to `me`.
    fn wait_for_grant(&self, me: usize) {
        let mut s = self.state.lock().unwrap();
        while s.current != Some(me) {
            s = self.cv.wait(s).unwrap();
        }
    }

    /// Retires `me` (recording a body panic, if any) and hands the
    /// token on.
    fn finish(&self, me: usize, panic: Option<String>) {
        let mut s = self.state.lock().unwrap();
        s.status[me] = Status::Done;
        if let Some(msg) = panic {
            let name = s.names[me].clone();
            s.panics.push((name, msg));
        }
        if s.current == Some(me) {
            self.pick_next(&mut s);
        }
        self.cv.notify_all();
    }
}

/// What a finished simulation run reports.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated-thread names, indexed by thread id.
    pub names: Vec<String>,
    /// The grant order: every scheduling decision, in sequence. Feed it
    /// to [`SimRunner::replay`] to reproduce the run exactly.
    pub schedule: Vec<usize>,
    /// Final virtual-clock reading.
    pub clock: Duration,
    /// Fatal condition, if any: deadlock, replay divergence, or an
    /// exhausted replay script. `None` means every thread ran to
    /// completion.
    pub error: Option<String>,
    /// `(thread name, panic message)` for thread bodies that panicked.
    /// A body panic retires the thread but does not stop the run.
    pub panics: Vec<(String, String)>,
}

/// Owns a deterministic simulation: spawn the simulated threads, hand
/// their moderator a [`SimEngine`](crate::SimEngine) and the shared
/// virtual clock, then [`run`](SimRunner::run) to completion.
///
/// ```
/// use amf_sim::SimRunner;
///
/// let mut runner = SimRunner::new(7);
/// let engine = runner.engine(); // plug into ModeratorBuilder::engine
/// let _ = engine;
/// runner.spawn("worker", || { /* moderated calls here */ });
/// let report = runner.run();
/// assert!(report.error.is_none());
/// ```
pub struct SimRunner {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for SimRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRunner")
            .field("threads", &self.handles.len())
            .finish_non_exhaustive()
    }
}

impl SimRunner {
    /// A recording runner: scheduling decisions come from an RNG seeded
    /// with `seed`, and the resulting schedule is reported for replay.
    pub fn new(seed: u64) -> Self {
        Self::build(seed, None)
    }

    /// A replaying runner: scheduling decisions follow `script` (a
    /// previously reported [`SimReport::schedule`]). Divergence — a
    /// scripted thread that is not runnable — is reported in
    /// [`SimReport::error`]; the run continues on a fallback pick so
    /// the divergence point is observable rather than fatal.
    pub fn replay(seed: u64, script: Vec<usize>) -> Self {
        Self::build(seed, Some(script))
    }

    fn build(seed: u64, script: Option<Vec<usize>>) -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(SchedState {
                    names: Vec::new(),
                    status: Vec::new(),
                    current: None,
                    rng: StdRng::seed_from_u64(seed),
                    script,
                    cursor: 0,
                    decisions: Vec::new(),
                    error: None,
                    panics: Vec::new(),
                }),
                cv: Condvar::new(),
                clock: ManualClock::new(),
                next_point: AtomicUsize::new(0),
            }),
            handles: Vec::new(),
        }
    }

    /// The engine to install via `ModeratorBuilder::engine` — waitpoints
    /// it mints park through this runner's scheduler.
    pub fn engine(&self) -> crate::SimEngine {
        crate::SimEngine::from_shared(Arc::clone(&self.shared))
    }

    /// A handle to the run's virtual clock, to install via
    /// `ModeratorBuilder::clock` (clones share the same time).
    pub fn clock(&self) -> ManualClock {
        self.shared.clock.clone()
    }

    /// Spawns a simulated thread. The body does not run until
    /// [`run`](SimRunner::run) grants it the token; spawn order defines
    /// thread ids (and so must match between record and replay).
    pub fn spawn(&mut self, name: &str, f: impl FnOnce() + Send + 'static) {
        let shared = Arc::clone(&self.shared);
        let id = {
            let mut s = shared.state.lock().unwrap();
            s.names.push(name.to_string());
            s.status.push(Status::Ready);
            s.names.len() - 1
        };
        let body_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                SIM_ID.with(|c| c.set(Some(id)));
                body_shared.wait_for_grant(id);
                let outcome = catch_unwind(AssertUnwindSafe(f));
                let panic = outcome.err().map(|payload| {
                    payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string())
                });
                body_shared.finish(id, panic);
            })
            .expect("spawn simulated thread");
        self.handles.push(handle);
    }

    /// Runs the simulation to completion and reports the schedule.
    ///
    /// On a deadlock the still-parked OS threads can never be woken;
    /// they are detached (they hold no locks while parked) and the
    /// deadlock is reported in [`SimReport::error`] instead of hanging
    /// the caller.
    pub fn run(self) -> SimReport {
        {
            let mut s = self.shared.state.lock().unwrap();
            self.shared.pick_next(&mut s);
            self.shared.cv.notify_all();
        }
        let report = {
            let mut s = self.shared.state.lock().unwrap();
            loop {
                let all_done = s.status.iter().all(|st| matches!(st, Status::Done));
                let stuck = s.error.is_some() && s.current.is_none();
                if all_done || stuck {
                    break SimReport {
                        names: s.names.clone(),
                        schedule: s.decisions.clone(),
                        clock: self.shared.clock.now(),
                        error: s.error.clone(),
                        panics: s.panics.clone(),
                    };
                }
                s = self.shared.cv.wait(s).unwrap();
            }
        };
        if report.error.is_none() {
            for handle in self.handles {
                let _ = handle.join();
            }
        }
        // On error the parked threads are leaked deliberately: joining
        // a thread that can never be woken would hang forever.
        report
    }
}

//! `amf-sim`: record a deterministic simulated run of the buffer
//! scenario to a JSON artifact, or replay an artifact and verify the
//! reproduction is byte-identical.
//!
//! ```text
//! amf-sim record <path> [--seed N] [--producers N] [--consumers N]
//!                       [--rounds N] [--faults PERMILLE]
//! amf-sim replay <path>
//! amf-sim record-topology <path> [--seed N] [--nodes N] [--leases N]
//!                                [--hops N] [--max-delay NS] [--drop N]
//!                                [--dup N] [--expiry-ns NS]
//! amf-sim replay-topology <path>
//! ```
//!
//! `record` runs the scenario under a fresh seeded simulation and
//! writes the artifact (scenario parameters, full schedule, grant
//! order, injected faults, final virtual clock). `replay` re-drives
//! the scenario along the artifact's recorded schedule and compares
//! the regenerated artifact byte-for-byte against the file; any
//! divergence (including a schedule that no longer matches the code)
//! exits non-zero. The `-topology` pair does the same for the
//! multi-moderator lease-handoff ring. `--drop N` drops the Nth
//! handoff in flight: without recovery (`--expiry-ns 0`, the default)
//! the run ends in a detected deadlock; with `--expiry-ns` nonzero the
//! handoff is severed and the recovery protocol (backoff retransmits,
//! expiry, reclaim into degraded local moderation) carries the run to
//! completion anyway. `--dup N` delivers the Nth handoff twice.

use std::process::ExitCode;

use amf_sim::{
    run_buffer_scenario, run_topology_scenario, ReplayHeader, ScenarioParams, TopologyParams,
    TopologyReplayHeader,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: amf-sim record <path> [--seed N] [--producers N] [--consumers N] \
         [--rounds N] [--faults PERMILLE]\n       amf-sim replay <path>\n       \
         amf-sim record-topology <path> [--seed N] [--nodes N] [--leases N] \
         [--hops N] [--max-delay NS] [--drop N] [--dup N] [--expiry-ns NS]\n       \
         amf-sim replay-topology <path>"
    );
    ExitCode::FAILURE
}

fn parse_flag(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("{flag} needs an unsigned integer value")),
    }
}

fn record(path: &str, args: &[String]) -> Result<(), String> {
    let params = ScenarioParams {
        seed: parse_flag(args, "--seed", 42)?,
        producers: parse_flag(args, "--producers", 2)?,
        consumers: parse_flag(args, "--consumers", 1)?,
        rounds: parse_flag(args, "--rounds", 5)?,
        fault_permille: parse_flag(args, "--faults", 0)?,
    };
    let record = run_buffer_scenario(&params, None);
    std::fs::write(path, record.to_json()).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "recorded {path}: seed {}, {} threads, {} scheduling decisions, {} grants, \
         {} injected faults, virtual clock {:?}",
        record.seed,
        record.threads.len(),
        record.schedule.len(),
        record.grants.len(),
        record.faults.len(),
        record.clock(),
    );
    match &record.error {
        None => Ok(()),
        Some(e) => Err(format!("run ended abnormally: {e}")),
    }
}

fn replay(path: &str) -> Result<(), String> {
    let recorded = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let header =
        ReplayHeader::scan(&recorded).ok_or_else(|| format!("{path}: not an amf-sim artifact"))?;
    let params = ScenarioParams {
        seed: header.seed,
        producers: header.producers,
        consumers: header.consumers,
        rounds: header.rounds,
        fault_permille: header.fault_permille,
    };
    let replayed = run_buffer_scenario(&params, Some(header.schedule)).to_json();
    if replayed == recorded {
        println!(
            "replay of {path} reproduced the artifact byte-identically \
             ({} bytes)",
            recorded.len()
        );
        Ok(())
    } else {
        Err(format!(
            "replay of {path} diverged: regenerated artifact differs \
             ({} vs {} bytes)",
            replayed.len(),
            recorded.len()
        ))
    }
}

fn record_topology(path: &str, args: &[String]) -> Result<(), String> {
    let drop_nth = match parse_flag(args, "--drop", 0)? {
        0 => None,
        n => Some(n),
    };
    let dup_nth = match parse_flag(args, "--dup", 0)? {
        0 => None,
        n => Some(n),
    };
    let params = TopologyParams {
        seed: parse_flag(args, "--seed", 42)?,
        nodes: parse_flag(args, "--nodes", 2)?,
        leases: parse_flag(args, "--leases", 2)?,
        hops: parse_flag(args, "--hops", 3)?,
        max_delay_ns: parse_flag(args, "--max-delay", 1_000)?,
        drop_nth,
        dup_nth,
        expiry_ns: parse_flag(args, "--expiry-ns", 0)?,
    };
    let record = run_topology_scenario(&params, None);
    std::fs::write(path, record.to_json()).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "recorded {path}: seed {}, {}-node ring, {} scheduling decisions, {} handoffs, \
         {} leases retired, {} fast-lane admits, virtual clock {:?}",
        record.seed,
        record.nodes,
        record.schedule.len(),
        record.handoffs.len(),
        record.retired.len(),
        record.fast_path_admits,
        record.clock(),
    );
    match &record.error {
        None => Ok(()),
        // A drop ablation without recovery is *supposed* to end in a
        // detected deadlock; the artifact is still written for
        // postmortem replay. With recovery enabled the same drop must
        // be absorbed, so an error there is a real failure.
        Some(e) if record.drop_nth.is_some() && record.expiry_ns == 0 => {
            println!("expected ablation outcome: {e}");
            Ok(())
        }
        Some(e) => Err(format!("run ended abnormally: {e}")),
    }
}

fn replay_topology(path: &str) -> Result<(), String> {
    let recorded = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let header = TopologyReplayHeader::scan(&recorded)
        .ok_or_else(|| format!("{path}: not an amf-sim topology artifact"))?;
    let params = TopologyParams {
        seed: header.seed,
        nodes: header.nodes,
        leases: header.leases,
        hops: header.hops,
        max_delay_ns: header.max_delay_ns,
        drop_nth: header.drop_nth,
        dup_nth: header.dup_nth,
        expiry_ns: header.expiry_ns,
    };
    let replayed = run_topology_scenario(&params, Some(header.schedule)).to_json();
    if replayed == recorded {
        println!(
            "replay of {path} reproduced the topology artifact byte-identically \
             ({} bytes)",
            recorded.len()
        );
        Ok(())
    } else {
        Err(format!(
            "replay of {path} diverged: regenerated artifact differs \
             ({} vs {} bytes)",
            replayed.len(),
            recorded.len()
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(mode), Some(path)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let result = match mode.as_str() {
        "record" => record(path, &args[2..]),
        "replay" => replay(path),
        "record-topology" => record_topology(path, &args[2..]),
        "replay-topology" => replay_topology(path),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("amf-sim: {e}");
            ExitCode::FAILURE
        }
    }
}

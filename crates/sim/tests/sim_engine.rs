//! The simulator as the moderator's third engine (after the condvar
//! engine and the test-probe engine): a real `AspectModerator` —
//! unmodified protocol code — driven down seeded, replayable schedules
//! with virtual time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use amf_concurrency::Clock;
use amf_core::trace::EventKind;
use amf_core::{
    AbortError, AspectModerator, Concern, FairnessPolicy, FnAspect, InvocationContext, MemoryTrace,
    MethodHandle, MethodId, Verdict,
};
use amf_sim::{
    run_buffer_scenario, run_topology_scenario, ReplayHeader, ScenarioParams, SimRunner,
    TopologyParams, TopologyReplayHeader,
};

fn invoke(m: &AspectModerator, h: &MethodHandle) {
    let invocation = m.next_invocation();
    let mut ctx = InvocationContext::new(h.id().clone(), invocation);
    m.preactivation(h, &mut ctx).expect("no aborts wired");
    m.postactivation(h, &mut ctx);
}

/// The capacity-1 buffer from the fairness stress suite, built on a
/// simulated engine and clock.
struct SimBuffer {
    moderator: Arc<AspectModerator>,
    trace: Arc<MemoryTrace>,
    open: MethodHandle,
    take: MethodHandle,
    slots: Arc<AtomicU64>,
    items: Arc<AtomicU64>,
}

fn sim_buffer(runner: &SimRunner, fairness: FairnessPolicy) -> SimBuffer {
    let slots = Arc::new(AtomicU64::new(1));
    let items = Arc::new(AtomicU64::new(0));
    let trace = MemoryTrace::shared();
    let moderator = Arc::new(
        AspectModerator::builder()
            .fairness(fairness)
            .engine(Arc::new(runner.engine()))
            .clock(Arc::new(runner.clock()))
            .trace(trace.clone())
            .build(),
    );
    let open = moderator.declare_method(MethodId::new("open"));
    let take = moderator.declare_method(MethodId::new("take"));
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &open,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("slot-gate")
                        .on_precondition(move |_| {
                            if slots.load(Ordering::SeqCst) > 0 {
                                slots.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            items.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .unwrap();
    }
    {
        let slots = Arc::clone(&slots);
        let items = Arc::clone(&items);
        moderator
            .register(
                &take,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("item-gate")
                        .on_precondition(move |_| {
                            if items.load(Ordering::SeqCst) > 0 {
                                items.fetch_sub(1, Ordering::SeqCst);
                                Verdict::Resume
                            } else {
                                Verdict::Block
                            }
                        })
                        .on_postaction(move |_| {
                            slots.fetch_add(1, Ordering::SeqCst);
                        }),
                ),
            )
            .unwrap();
    }
    moderator.wire_wakes(&open, std::slice::from_ref(&take));
    moderator.wire_wakes(&take, std::slice::from_ref(&open));
    SimBuffer {
        moderator,
        trace,
        open,
        take,
        slots,
        items,
    }
}

/// Zero-inversion check from the fairness suites: grant order of parked
/// callers equals park order.
fn assert_no_inversions(trace: &MemoryTrace, method: &MethodId) {
    let mut park = Vec::new();
    let mut grant = Vec::new();
    for e in trace.events() {
        if e.method != *method {
            continue;
        }
        match e.kind {
            EventKind::WaitStarted if !park.contains(&e.invocation) => park.push(e.invocation),
            EventKind::ActivationResumed => grant.push(e.invocation),
            _ => {}
        }
    }
    let granted_parked: Vec<u64> = grant.iter().copied().filter(|i| park.contains(i)).collect();
    assert_eq!(granted_parked, park, "wake-order inversion on {method}");
}

/// Grant order of `method` invocations, for cross-run comparison.
fn grant_order(trace: &MemoryTrace) -> Vec<(u64, String)> {
    trace
        .events()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::ActivationResumed))
        .map(|e| (e.invocation, e.method.as_str().to_string()))
        .collect()
}

/// One seeded fairness storm: 4 producers × 25 rounds against one
/// consumer on the capacity-1 buffer, under strict FIFO.
fn fairness_storm(seed: u64) -> (Vec<(u64, String)>, Vec<usize>) {
    const PRODUCERS: u64 = 4;
    const ROUNDS: u64 = 25;
    let mut runner = SimRunner::new(seed);
    let buf = sim_buffer(&runner, FairnessPolicy::Fifo);
    for p in 0..PRODUCERS {
        let m = Arc::clone(&buf.moderator);
        let open = buf.open.clone();
        runner.spawn(&format!("p{p}"), move || {
            for _ in 0..ROUNDS {
                invoke(&m, &open);
            }
        });
    }
    {
        let m = Arc::clone(&buf.moderator);
        let take = buf.take.clone();
        runner.spawn("c0", move || {
            for _ in 0..PRODUCERS * ROUNDS {
                invoke(&m, &take);
            }
        });
    }
    let report = runner.run();
    assert_eq!(report.error, None);
    assert!(report.panics.is_empty(), "{:?}", report.panics);
    assert_no_inversions(&buf.trace, buf.open.id());
    assert_no_inversions(&buf.trace, buf.take.id());
    let s = buf.moderator.stats();
    assert_eq!(s.resumes, 2 * PRODUCERS * ROUNDS, "{s:?}");
    assert_eq!(s.tickets_issued, s.tickets_served, "{s:?}");
    assert_eq!(
        (
            buf.slots.load(Ordering::SeqCst),
            buf.items.load(Ordering::SeqCst)
        ),
        (1, 0),
        "buffer must be quiescent"
    );
    (grant_order(&buf.trace), report.schedule)
}

#[test]
fn fifo_fairness_storm_holds_under_sim_engine() {
    fairness_storm(0xfa1f);
}

#[test]
fn same_seed_storms_grant_identically() {
    let (grants_a, schedule_a) = fairness_storm(99);
    let (grants_b, schedule_b) = fairness_storm(99);
    assert_eq!(schedule_a, schedule_b, "same seed, same schedule");
    assert_eq!(grants_a, grants_b, "same seed, same grant order");
}

#[test]
fn different_seeds_explore_different_schedules() {
    // Not guaranteed for every seed pair in principle, but with ~500
    // scheduling decisions two identical runs would mean the seed is
    // being ignored.
    let (_, schedule_a) = fairness_storm(1);
    let (_, schedule_b) = fairness_storm(2);
    assert_ne!(schedule_a, schedule_b);
}

#[test]
fn replaying_a_storm_schedule_reproduces_it() {
    let (grants, schedule) = fairness_storm(7);
    const PRODUCERS: u64 = 4;
    const ROUNDS: u64 = 25;
    let mut runner = SimRunner::replay(7, schedule.clone());
    let buf = sim_buffer(&runner, FairnessPolicy::Fifo);
    for p in 0..PRODUCERS {
        let m = Arc::clone(&buf.moderator);
        let open = buf.open.clone();
        runner.spawn(&format!("p{p}"), move || {
            for _ in 0..ROUNDS {
                invoke(&m, &open);
            }
        });
    }
    {
        let m = Arc::clone(&buf.moderator);
        let take = buf.take.clone();
        runner.spawn("c0", move || {
            for _ in 0..PRODUCERS * ROUNDS {
                invoke(&m, &take);
            }
        });
    }
    let report = runner.run();
    assert_eq!(report.error, None, "replay followed without divergence");
    assert_eq!(report.schedule, schedule);
    assert_eq!(grant_order(&buf.trace), grants);
}

#[test]
fn virtual_clock_times_out_a_blocked_wait_instantly() {
    let mut runner = SimRunner::new(3);
    let clock = runner.clock();
    let buf = sim_buffer(&runner, FairnessPolicy::Fifo);
    let outcome = Arc::new(Mutex::new(None));
    {
        let m = Arc::clone(&buf.moderator);
        let take = buf.take.clone();
        let outcome = Arc::clone(&outcome);
        // The buffer is empty and nobody produces: the take can only
        // end by timing out — at virtual time, not wall time.
        runner.spawn("t0", move || {
            let invocation = m.next_invocation();
            let mut ctx = InvocationContext::new(take.id().clone(), invocation);
            let result = m.preactivation_timeout(&take, &mut ctx, Duration::from_secs(3600));
            *outcome.lock().unwrap() = Some(result);
        });
    }
    let wall_start = std::time::Instant::now();
    let report = runner.run();
    assert_eq!(report.error, None);
    assert!(
        matches!(
            outcome.lock().unwrap().as_ref(),
            Some(Err(AbortError::Timeout { .. }))
        ),
        "blocked take must time out"
    );
    assert!(
        clock.now() >= Duration::from_secs(3600),
        "virtual clock jumped to the deadline, got {:?}",
        clock.now()
    );
    assert!(
        wall_start.elapsed() < Duration::from_secs(60),
        "an hour of virtual waiting must not take an hour of wall time"
    );
    assert_eq!(buf.moderator.stats().timeouts, 1);
}

#[test]
fn deadlock_is_reported_not_hung() {
    let mut runner = SimRunner::new(5);
    let buf = sim_buffer(&runner, FairnessPolicy::Fifo);
    {
        let m = Arc::clone(&buf.moderator);
        let take = buf.take.clone();
        // Take from an empty buffer with no producer and no timeout:
        // a genuine deadlock the scheduler must name, not hang on.
        runner.spawn("t0", move || invoke(&m, &take));
    }
    let report = runner.run();
    let err = report.error.expect("deadlock must be reported");
    assert!(err.contains("deadlock"), "{err}");
    assert!(err.contains("t0"), "names the parked thread: {err}");
}

#[test]
fn body_panics_are_recorded_and_do_not_stall_the_run() {
    amf_sim::silence_panic_hook();
    let mut runner = SimRunner::new(11);
    let buf = sim_buffer(&runner, FairnessPolicy::Fifo);
    {
        let m = Arc::clone(&buf.moderator);
        let open = buf.open.clone();
        runner.spawn("p0", move || {
            invoke(&m, &open);
            panic!("injected body panic");
        });
    }
    {
        let m = Arc::clone(&buf.moderator);
        let take = buf.take.clone();
        runner.spawn("c0", move || invoke(&m, &take));
    }
    let report = runner.run();
    assert_eq!(report.error, None, "the consumer still drains the item");
    assert_eq!(report.panics.len(), 1);
    assert_eq!(report.panics[0].0, "p0");
    assert!(report.panics[0].1.contains("injected body panic"));
}

/// The lock-free fast lane under the simulator: a capability-declared
/// `audit` method races the blocking buffer pair, so the run exercises
/// CAS admits interleaved with parks, wakes, and the lane closing and
/// reopening around them. Recording the schedule and replaying it
/// reproduces the *entire* trace event stream byte-for-byte — fast
/// admits included — and the same `fast_path_admits` count.
#[test]
fn fast_path_record_then_replay_is_byte_identical() {
    use amf_core::AspectCapabilities;

    const ROUNDS: u64 = 10;
    let run = |schedule: Option<Vec<usize>>| {
        let mut runner = match schedule {
            Some(s) => SimRunner::replay(4242, s),
            None => SimRunner::new(4242),
        };
        let buf = sim_buffer(&runner, FairnessPolicy::Fifo);
        let audit = buf.moderator.declare_method(MethodId::new("audit"));
        buf.moderator
            .register(
                &audit,
                Concern::synchronization(),
                Box::new(
                    FnAspect::new("pure-gate")
                        .on_precondition(|_| Verdict::Resume)
                        .declare_capabilities(AspectCapabilities::all()),
                ),
            )
            .unwrap();
        buf.moderator.wire_wakes(&audit, &[]);
        for p in 0..2u64 {
            let m = Arc::clone(&buf.moderator);
            let open = buf.open.clone();
            let audit = audit.clone();
            runner.spawn(&format!("p{p}"), move || {
                for _ in 0..ROUNDS {
                    invoke(&m, &audit);
                    invoke(&m, &open);
                }
            });
        }
        {
            let m = Arc::clone(&buf.moderator);
            let take = buf.take.clone();
            let audit = audit.clone();
            runner.spawn("c0", move || {
                for _ in 0..2 * ROUNDS {
                    invoke(&m, &take);
                    invoke(&m, &audit);
                }
            });
        }
        let report = runner.run();
        assert_eq!(report.error, None);
        assert!(report.panics.is_empty(), "{:?}", report.panics);
        let stats = buf.moderator.stats();
        let rendered = format!("{:?}", buf.trace.events());
        (report.schedule, rendered, stats)
    };

    let (schedule, rendered, stats) = run(None);
    assert!(
        stats.fast_path_admits > 0,
        "the pure method must take the CAS lane: {stats:?}"
    );
    let (schedule_b, rendered_b, stats_b) = run(Some(schedule.clone()));
    assert_eq!(schedule_b, schedule, "replay followed without divergence");
    assert_eq!(
        rendered_b.as_bytes(),
        rendered.as_bytes(),
        "byte-identical trace reproduction"
    );
    assert_eq!(stats_b.fast_path_admits, stats.fast_path_admits);
    assert_eq!(stats_b.fast_path_fallbacks, stats.fast_path_fallbacks);
}

#[test]
fn scenario_record_then_replay_is_byte_identical() {
    let params = ScenarioParams {
        seed: 1234,
        producers: 3,
        consumers: 2,
        rounds: 4,
        fault_permille: 200,
    };
    let recorded = run_buffer_scenario(&params, None);
    assert_eq!(recorded.error, None);
    let json = recorded.to_json();
    let header = ReplayHeader::scan(&json).expect("artifact scans");
    assert_eq!(header.seed, params.seed);
    let replayed = run_buffer_scenario(&params, Some(header.schedule));
    assert_eq!(replayed.to_json(), json, "byte-identical reproduction");
}

/// Regression for the recorded fast-path counters: a fault-free run's
/// audit row rides the lock-free lane, the artifact surfaces both
/// counters, and they sit inside the byte-identity perimeter — a
/// replay that admitted differently could not reproduce the bytes.
#[test]
fn scenario_artifact_surfaces_fast_path_counters() {
    let params = ScenarioParams {
        seed: 9,
        producers: 2,
        consumers: 2,
        rounds: 5,
        fault_permille: 0,
    };
    let recorded = run_buffer_scenario(&params, None);
    assert_eq!(recorded.error, None);
    assert!(
        recorded.fast_path_admits > 0,
        "fault-free audit row must use the lane: {recorded:?}"
    );
    assert_eq!(
        recorded.fast_path_fallbacks, 0,
        "the token scheduler never loses a CAS: {recorded:?}"
    );
    let json = recorded.to_json();
    assert!(json.contains(&format!(
        "\"fast_path\": {{ \"admits\": {}, \"fallbacks\": 0 }}",
        recorded.fast_path_admits
    )));
    let header = ReplayHeader::scan(&json).expect("artifact scans");
    let replayed = run_buffer_scenario(&params, Some(header.schedule));
    assert_eq!(replayed.fast_path_admits, recorded.fast_path_admits);
    assert_eq!(replayed.to_json(), json, "byte-identical reproduction");
}

// ------------------------------------------------------------------ //
// Multi-moderator topology: a ring of independent moderators joined by
// simulated lease-handoff channels (virtual-clock delays, reorderable
// in flight, droppable). The model-checked twin of these properties
// lives in crates/verify/tests/multi_moderator.rs.
// ------------------------------------------------------------------ //

/// The 2-node lease handoff records and replays byte-identically, the
/// couriers preserve FIFO per channel despite in-flight reordering,
/// every lease retires, and the per-node telemetry rows exercise the
/// fast lane (the counters the artifact surfaces).
#[test]
fn topology_record_then_replay_is_byte_identical() {
    let params = TopologyParams {
        seed: 4242,
        nodes: 2,
        leases: 3,
        hops: 4,
        max_delay_ns: 50_000,
        drop_nth: None,
        dup_nth: None,
        expiry_ns: 0,
    };
    let recorded = run_topology_scenario(&params, None);
    assert_eq!(recorded.error, None, "{recorded:?}");

    // Every lease retires exactly once.
    let mut retired = recorded.retired.clone();
    retired.sort_unstable();
    assert_eq!(retired, vec![0, 1, 2]);
    // Cross-node FIFO no-overtake: per channel, delivered sequence
    // numbers are exactly 0, 1, 2, ... in delivery order.
    for channel in 0..params.nodes {
        let seqs: Vec<u64> = recorded
            .handoffs
            .iter()
            .filter(|(c, _, _)| *c == channel)
            .map(|(_, seq, _)| *seq)
            .collect();
        assert_eq!(
            seqs,
            (0..seqs.len() as u64).collect::<Vec<_>>(),
            "channel {channel}"
        );
    }
    // node 0 receives leases*hops - leases handoffs, node 1 leases*hops.
    assert_eq!(
        recorded.handoffs.len() as u64,
        2 * params.leases * params.hops - params.leases
    );
    assert!(
        recorded.fast_path_admits > 0,
        "telemetry row must ride the lane"
    );

    let json = recorded.to_json();
    let header = TopologyReplayHeader::scan(&json).expect("artifact scans");
    assert_eq!(header.seed, params.seed);
    assert_eq!(header.drop_nth, None);
    let replayed = run_topology_scenario(&params, Some(header.schedule));
    assert_eq!(replayed.to_json(), json, "byte-identical reproduction");
}

/// Same-seed determinism and cross-seed schedule sensitivity: the
/// handoff interleaving is a pure function of the seed.
#[test]
fn topology_runs_are_deterministic_per_seed() {
    let params = TopologyParams {
        seed: 7,
        nodes: 3,
        leases: 2,
        hops: 2,
        max_delay_ns: 10_000,
        drop_nth: None,
        dup_nth: None,
        expiry_ns: 0,
    };
    let a = run_topology_scenario(&params, None);
    let b = run_topology_scenario(&params, None);
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.error, None);
}

/// Dropping one handoff in flight starves the receiving courier's
/// sequence cursor; the ring winds down and the scheduler reports a
/// deadlock naming the parked threads instead of hanging the test.
#[test]
fn topology_dropped_handoff_is_a_detected_deadlock() {
    let params = TopologyParams {
        seed: 4242,
        nodes: 2,
        leases: 2,
        hops: 3,
        max_delay_ns: 1_000,
        drop_nth: Some(3),
        dup_nth: None,
        expiry_ns: 0,
    };
    let recorded = run_topology_scenario(&params, None);
    let err = recorded
        .error
        .as_deref()
        .expect("dropped handoff must deadlock");
    assert!(err.contains("deadlock"), "{err}");
    // The artifact still renders and carries the ablation parameter,
    // so a postmortem replay reproduces the stuck run.
    let json = recorded.to_json();
    let header = TopologyReplayHeader::scan(&json).expect("artifact scans");
    assert_eq!(header.drop_nth, Some(3));
    // Fewer leases retire than circulate: the ring really starved.
    assert!(recorded.retired.len() < params.leases as usize + 1);
}

// ------------------------------------------------------------------ //
// Recovery mode (`expiry_ns > 0`): every handoff travels as an encoded
// wire frame through the socket-shaped fault channel, driven by the
// shared amf_core::lease state machine — the same code path the live
// TCP peers run, here under the virtual clock.
// ------------------------------------------------------------------ //

/// A clean recovery-mode ring retires every lease with no reclaims and
/// records→replays byte-identically, recovery fields included.
#[test]
fn recovery_topology_record_then_replay_is_byte_identical() {
    let params = TopologyParams {
        seed: 4242,
        nodes: 2,
        leases: 2,
        hops: 3,
        max_delay_ns: 10_000,
        drop_nth: None,
        dup_nth: None,
        expiry_ns: 50_000_000,
    };
    let recorded = run_topology_scenario(&params, None);
    assert_eq!(recorded.error, None, "{recorded:?}");
    let mut retired = recorded.retired.clone();
    retired.sort_unstable();
    assert_eq!(retired, vec![0, 1], "every lease retires exactly once");
    assert_eq!(recorded.reclaimed, 0, "no reclaims on a clean ring");
    assert_eq!(recorded.degraded_entries, 0);
    // Per channel the delivered sequence numbers are still exactly
    // 0, 1, 2, ...: the cursor reassembles FIFO over the wire frames.
    for channel in 0..params.nodes {
        let seqs: Vec<u64> = recorded
            .handoffs
            .iter()
            .filter(|(c, _, _)| *c == channel)
            .map(|(_, seq, _)| *seq)
            .collect();
        assert_eq!(
            seqs,
            (0..seqs.len() as u64).collect::<Vec<_>>(),
            "channel {channel}"
        );
    }

    let json = recorded.to_json();
    let header = TopologyReplayHeader::scan(&json).expect("artifact scans");
    assert_eq!(header.expiry_ns, params.expiry_ns);
    let replayed = run_topology_scenario(&params, Some(header.schedule));
    assert_eq!(replayed.to_json(), json, "byte-identical reproduction");
}

/// The same dropped handoff that deadlocks the legacy ring is absorbed
/// by the recovery protocol: the sender retransmits into the severed
/// link, expires, reclaims the lease into degraded local moderation,
/// and the run completes with every lease retired exactly once.
#[test]
fn recovery_severed_handoff_reclaims_instead_of_deadlocking() {
    let params = TopologyParams {
        seed: 4242,
        nodes: 2,
        leases: 2,
        hops: 3,
        max_delay_ns: 1_000,
        drop_nth: Some(3),
        dup_nth: None,
        expiry_ns: 10_000_000,
    };
    let recorded = run_topology_scenario(&params, None);
    assert_eq!(recorded.error, None, "recovery absorbs the severed link");
    let mut retired = recorded.retired.clone();
    retired.sort_unstable();
    assert_eq!(retired, vec![0, 1], "no lease lost, none doubled");
    assert!(
        recorded.retransmits > 0,
        "the severed handoff was retried before expiring: {recorded:?}"
    );
    assert_eq!(recorded.reclaimed, 1, "exactly the severed handoff expires");
    assert!(
        recorded.degraded_entries > 0,
        "the reclaimed visit is moderated locally in degraded mode"
    );

    // The full recovery run — backoff timers, expiry, reclaim — still
    // replays byte-identically from its recorded schedule.
    let json = recorded.to_json();
    let header = TopologyReplayHeader::scan(&json).expect("artifact scans");
    assert_eq!(header.drop_nth, Some(3));
    let replayed = run_topology_scenario(&params, Some(header.schedule));
    assert_eq!(replayed.to_json(), json, "byte-identical reproduction");
}

/// A duplicated handoff is detected by the receiver's dedup window and
/// dropped idempotently: the duplicate is counted, never delivered.
#[test]
fn recovery_duplicated_handoff_is_deduplicated() {
    let params = TopologyParams {
        seed: 99,
        nodes: 2,
        leases: 2,
        hops: 3,
        max_delay_ns: 1_000,
        drop_nth: None,
        dup_nth: Some(2),
        expiry_ns: 50_000_000,
    };
    let recorded = run_topology_scenario(&params, None);
    assert_eq!(recorded.error, None, "{recorded:?}");
    let mut retired = recorded.retired.clone();
    retired.sort_unstable();
    assert_eq!(retired, vec![0, 1], "no lease doubled by the duplicate");
    assert!(
        recorded.dup_dropped > 0,
        "the duplicate must be counted and dropped: {recorded:?}"
    );
    // Deliveries are still unique per (channel, seq).
    let mut keys: Vec<(u64, u64)> = recorded.handoffs.iter().map(|(c, s, _)| (*c, *s)).collect();
    let before = keys.len();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys.len(), before, "no (channel, seq) delivered twice");
}

/// Recovery-mode runs are a pure function of the seed, like the legacy
/// path: same seed twice gives the same artifact.
#[test]
fn recovery_topology_runs_are_deterministic_per_seed() {
    let params = TopologyParams {
        seed: 17,
        nodes: 3,
        leases: 2,
        hops: 2,
        max_delay_ns: 5_000,
        drop_nth: None,
        dup_nth: None,
        expiry_ns: 40_000_000,
    };
    let a = run_topology_scenario(&params, None);
    let b = run_topology_scenario(&params, None);
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(a.error, None);
}

#[test]
fn scenario_faults_are_deterministic_per_seed() {
    let params = ScenarioParams {
        seed: 77,
        producers: 2,
        consumers: 1,
        rounds: 10,
        fault_permille: 300,
    };
    let a = run_buffer_scenario(&params, None);
    let b = run_buffer_scenario(&params, None);
    assert_eq!(a.faults, b.faults);
    assert_eq!(a.grants, b.grants);
    assert!(!a.faults.is_empty(), "300‰ over 20 audits should inject");
}

//! One conformance suite, three engines.
//!
//! The moderator's coordination protocol talks to its engine only
//! through the `GrantSource`/`Waiter` seam, so every engine must honor
//! the same contract: park releases the guard and re-checks in a loop,
//! timed parks report expiry, wakes are hints whose effect rides on
//! guarded state, and a waitpoint survives its other handles being
//! dropped while someone is parked. Each scenario below is written once
//! against the seam and driven by all three engines — the condvar
//! default, the task engine (parking suspends a task on the worker
//! pool), and the simulator (parking yields a scheduler token under
//! virtual time).

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use amf_concurrency::{CondvarEngine, GrantSource, TaskEngine};
use amf_sim::SimRunner;
use parking_lot::Mutex;

/// A conformance scenario: given an engine and a way to spawn
/// concurrent parties, wire up the parties and return the assertion to
/// run after every party finished.
type Spawn<'a> = &'a mut dyn FnMut(&str, Box<dyn FnOnce() + Send + 'static>);
type Scenario = fn(Arc<dyn GrantSource<u32>>, Spawn<'_>) -> Box<dyn FnOnce() + Send>;

fn drive_condvar(scenario: Scenario) {
    let mut joins = Vec::new();
    let check = scenario(Arc::new(CondvarEngine), &mut |name, f| {
        joins.push(
            std::thread::Builder::new()
                .name(name.to_string())
                .spawn(f)
                .expect("spawn conformance thread"),
        );
    });
    for j in joins {
        j.join().expect("conformance thread");
    }
    check();
}

fn drive_task(scenario: Scenario) {
    let engine = Arc::new(TaskEngine::new(2));
    let (tx, rx) = mpsc::channel();
    let mut spawned = 0usize;
    let check = scenario(Arc::<TaskEngine>::clone(&engine), &mut |_name, f| {
        spawned += 1;
        let tx = tx.clone();
        engine.spawn(move || {
            f();
            let _ = tx.send(());
        });
    });
    for _ in 0..spawned {
        rx.recv_timeout(Duration::from_secs(30))
            .expect("conformance task finishes");
    }
    engine.shutdown();
    check();
}

fn drive_sim(scenario: Scenario) {
    let mut runner = SimRunner::new(0xc0f0);
    let check = scenario(Arc::new(runner.engine()), &mut |name, f| {
        runner.spawn(name, f);
    });
    let report = runner.run();
    assert_eq!(report.error, None);
    assert!(report.panics.is_empty(), "{:?}", report.panics);
    check();
}

// --- scenario 1: park until a wake, predicate carried by state ------

fn park_and_wake(engine: Arc<dyn GrantSource<u32>>, spawn: Spawn<'_>) -> Box<dyn FnOnce() + Send> {
    let waiter = engine.waiter();
    let cell = Arc::new(Mutex::new(0u32));
    let woke = Arc::new(AtomicU32::new(0));
    for p in 0..3 {
        let (w, c, k) = (waiter.clone(), cell.clone(), woke.clone());
        spawn(
            &format!("parker-{p}"),
            Box::new(move || {
                let mut g = c.lock();
                while *g == 0 {
                    w.park(&mut g);
                }
                drop(g);
                k.fetch_add(1, Ordering::SeqCst);
            }),
        );
    }
    {
        let (w, c) = (waiter.clone(), cell.clone());
        spawn(
            "waker",
            Box::new(move || {
                *c.lock() = 1;
                w.wake_all();
            }),
        );
    }
    Box::new(move || {
        assert_eq!(woke.load(Ordering::SeqCst), 3, "every parker re-checked");
    })
}

// --- scenario 2: a timed park on a never-signaled point expires -----

fn timed_park_expires(
    engine: Arc<dyn GrantSource<u32>>,
    spawn: Spawn<'_>,
) -> Box<dyn FnOnce() + Send> {
    let waiter = engine.waiter();
    let cell = Arc::new(Mutex::new(0u32));
    let timed = Arc::new(AtomicBool::new(false));
    let t = timed.clone();
    spawn(
        "sleeper",
        Box::new(move || {
            let mut g = cell.lock();
            // Spurious returns are allowed; expiry must arrive within
            // a bounded number of re-parks.
            for _ in 0..100 {
                if waiter.park_for(&mut g, Duration::from_millis(20)) {
                    t.store(true, Ordering::SeqCst);
                    break;
                }
            }
        }),
    );
    Box::new(move || {
        assert!(timed.load(Ordering::SeqCst), "timeout must be reported");
    })
}

// --- scenario 3: a wake landing before the park is not a lost grant --

fn wake_before_park(
    engine: Arc<dyn GrantSource<u32>>,
    spawn: Spawn<'_>,
) -> Box<dyn FnOnce() + Send> {
    let waiter = engine.waiter();
    let cell = Arc::new(Mutex::new(0u32));
    let done = Arc::new(AtomicBool::new(false));
    {
        // The waker may run before the parker even locks: the pulse may
        // be lost, but the state change persists.
        let (w, c) = (waiter.clone(), cell.clone());
        spawn(
            "early-waker",
            Box::new(move || {
                *c.lock() = 1;
                w.wake_one();
            }),
        );
    }
    {
        let (w, c, d) = (waiter.clone(), cell.clone(), done.clone());
        spawn(
            "late-parker",
            Box::new(move || {
                let mut g = c.lock();
                let mut spins = 0;
                while *g == 0 {
                    w.park_for(&mut g, Duration::from_millis(25));
                    spins += 1;
                    assert!(spins < 1_000, "parker must converge on the state");
                }
                drop(g);
                d.store(true, Ordering::SeqCst);
            }),
        );
    }
    Box::new(move || {
        assert!(done.load(Ordering::SeqCst), "no grant may be lost");
    })
}

// --- scenario 4: other handles dropped while someone is parked ------

fn drop_while_parked(
    engine: Arc<dyn GrantSource<u32>>,
    spawn: Spawn<'_>,
) -> Box<dyn FnOnce() + Send> {
    let waiter = engine.waiter();
    let cell = Arc::new(Mutex::new(0u32));
    let returned = Arc::new(AtomicBool::new(false));
    {
        let (w, c, r) = (waiter.clone(), cell.clone(), returned.clone());
        spawn(
            "orphan-parker",
            Box::new(move || {
                let mut g = c.lock();
                for _ in 0..100 {
                    if *g != 0 || w.park_for(&mut g, Duration::from_millis(20)) {
                        break;
                    }
                }
                drop(g);
                r.store(true, Ordering::SeqCst);
            }),
        );
    }
    // The parker's clone is now the only handle on the waitpoint; the
    // engine handle goes too. Cleanup must not wedge the parked party.
    drop(waiter);
    drop(engine);
    Box::new(move || {
        assert!(
            returned.load(Ordering::SeqCst),
            "orphaned park still returns"
        );
    })
}

// --- the matrix ------------------------------------------------------

#[test]
fn condvar_engine_conforms() {
    drive_condvar(park_and_wake);
    drive_condvar(timed_park_expires);
    drive_condvar(wake_before_park);
    drive_condvar(drop_while_parked);
}

#[test]
fn task_engine_conforms() {
    drive_task(park_and_wake);
    drive_task(timed_park_expires);
    drive_task(wake_before_park);
    drive_task(drop_while_parked);
}

#[test]
fn sim_engine_conforms() {
    drive_sim(park_and_wake);
    drive_sim(timed_park_expires);
    drive_sim(wake_before_park);
    drive_sim(drop_while_parked);
}

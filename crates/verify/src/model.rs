//! The protocol model: methods, aspect chains, bodies and wake sets.

use std::fmt;
use std::sync::Arc;

/// Model counterpart of `amf_core::Verdict`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVerdict {
    /// The constraint holds; continue down the chain.
    Resume,
    /// Park the calling thread on the method's queue.
    Block,
    /// Fail the activation (the script's op completes as "aborted").
    Abort,
    /// The precondition *panics*. Under the framework's containment
    /// policy this compensates exactly like a mid-chain [`Abort`]:
    /// earlier-resumed aspects of the chain are released and the op
    /// completes failed (the script's op appears as "panicked"). The
    /// [`Checker::leak_on_panic`](crate::Checker::leak_on_panic)
    /// ablation models an implementation that skips that prefix
    /// unwind, leaking the reservations.
    ///
    /// [`Abort`]: ModelVerdict::Abort
    Panic,
}

/// One concern of one method, as *pure functions over the shared
/// state* — aspect-local state is lifted into `S` so the checker can
/// clone, hash and memoize whole worlds.
pub trait ModelAspect<S>: Send + Sync {
    /// The precondition; may reserve by mutating `s`.
    fn pre(&self, s: &mut S) -> ModelVerdict;

    /// The postaction.
    fn post(&self, s: &mut S);

    /// Rollback of a successful `pre` (used when a later aspect in the
    /// chain blocks or aborts and the system models rollback).
    fn release(&self, s: &mut S);
}

/// Index of a declared method in a [`ModelSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodIx(pub(crate) usize);

/// Which queues a method's post-activation notifies.
#[derive(Clone, Default)]
pub enum WakeSet {
    /// Every method's queue (the moderator's default).
    #[default]
    All,
    /// Exactly these methods' queues.
    Wired(Vec<MethodIx>),
}

impl fmt::Debug for WakeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WakeSet::All => f.write_str("All"),
            WakeSet::Wired(t) => write!(f, "Wired({})", t.len()),
        }
    }
}

type Body<S> = Arc<dyn Fn(&mut S) + Send + Sync>;

pub(crate) struct ModelMethod<S> {
    pub(crate) name: String,
    /// (concern name, aspect) in registration order; evaluation is
    /// newest-first (the `Nested` policy).
    pub(crate) chain: Vec<(String, Arc<dyn ModelAspect<S>>)>,
    pub(crate) body: Option<Body<S>>,
    pub(crate) wakes: WakeSet,
    /// Declared shared-state region (see [`ModelSystem::set_region`]);
    /// `None` means the method may touch all of `S`.
    pub(crate) region: Option<usize>,
}

impl<S> Clone for ModelMethod<S> {
    fn clone(&self) -> Self {
        Self {
            name: self.name.clone(),
            chain: self.chain.clone(),
            body: self.body.clone(),
            wakes: self.wakes.clone(),
            region: self.region,
        }
    }
}

/// A composition under verification: methods, their aspect chains,
/// bodies, wake wiring and the rollback policy.
pub struct ModelSystem<S> {
    pub(crate) methods: Vec<ModelMethod<S>>,
    pub(crate) rollback: bool,
}

impl<S> Clone for ModelSystem<S> {
    fn clone(&self) -> Self {
        Self {
            methods: self.methods.clone(),
            rollback: self.rollback,
        }
    }
}

impl<S> fmt::Debug for ModelSystem<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.methods.iter().map(|m| m.name.as_str()).collect();
        f.debug_struct("ModelSystem")
            .field("methods", &names)
            .field("rollback", &self.rollback)
            .finish()
    }
}

impl<S> Default for ModelSystem<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> ModelSystem<S> {
    /// An empty system with rollback enabled (the framework default).
    pub fn new() -> Self {
        Self {
            methods: Vec::new(),
            rollback: true,
        }
    }

    /// Sets the rollback policy (builder style).
    #[must_use]
    pub fn rollback(mut self, on: bool) -> Self {
        self.rollback = on;
        self
    }

    /// Declares a participating method.
    pub fn method(&mut self, name: &str) -> MethodIx {
        self.methods.push(ModelMethod {
            name: name.to_string(),
            chain: Vec::new(),
            body: None,
            wakes: WakeSet::All,
            region: None,
        });
        MethodIx(self.methods.len() - 1)
    }

    /// Declares that `method`'s user code (aspect preconditions,
    /// postactions, releases, and the body) reads and writes *only* the
    /// part of the shared state belonging to `region` — methods with
    /// different regions promise mutually disjoint shared-state
    /// footprints, like the BIP-style separation of behavior from
    /// interaction. The checker's persistent-set reduction
    /// ([`ReductionPolicy::Dpor`](crate::ReductionPolicy::Dpor)) uses
    /// the declaration to explore independent subsystems
    /// compositionally. It is a *contract*, in the spirit of
    /// `AspectCapabilities`: the checker spot-checks it with
    /// replay-equivalence self-checks (a lying declaration forfeits
    /// the reduction at the states where the lie is caught) but the
    /// exploration-order soundness of the persistent-set layer rests
    /// on it being honest. Methods with no declared region conflict
    /// with every method.
    pub fn set_region(&mut self, method: MethodIx, region: usize) {
        self.methods[method.0].region = Some(region);
    }

    /// Registers an aspect at the end of `method`'s chain (it becomes
    /// the new outermost under nested ordering).
    pub fn add_aspect(&mut self, method: MethodIx, concern: &str, aspect: Arc<dyn ModelAspect<S>>) {
        self.methods[method.0]
            .chain
            .push((concern.to_string(), aspect));
    }

    /// Sets the method's functional body (defaults to a no-op).
    pub fn set_body(&mut self, method: MethodIx, body: impl Fn(&mut S) + Send + Sync + 'static) {
        self.methods[method.0].body = Some(Arc::new(body));
    }

    /// Restricts which queues `method`'s completion notifies.
    pub fn wire_wakes(&mut self, method: MethodIx, targets: Vec<MethodIx>) {
        self.methods[method.0].wakes = WakeSet::Wired(targets);
    }

    /// The name of a declared method.
    pub fn method_name(&self, method: MethodIx) -> &str {
        &self.methods[method.0].name
    }

    /// Number of declared methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspects;

    #[derive(Clone, PartialEq, Eq, Hash, Default)]
    struct S;

    #[test]
    fn builds_methods_and_chains() {
        let mut sys = ModelSystem::<S>::new();
        let a = sys.method("a");
        let b = sys.method("b");
        sys.add_aspect(a, "x", aspects::always_resume());
        sys.add_aspect(a, "y", aspects::always_resume());
        sys.wire_wakes(a, vec![b]);
        assert_eq!(sys.method_count(), 2);
        assert_eq!(sys.method_name(a), "a");
        assert_eq!(sys.methods[a.0].chain.len(), 2);
        assert!(matches!(sys.methods[a.0].wakes, WakeSet::Wired(_)));
        assert!(matches!(sys.methods[b.0].wakes, WakeSet::All));
    }

    #[test]
    fn clone_is_deep_enough() {
        let mut sys = ModelSystem::<S>::new();
        let a = sys.method("a");
        sys.add_aspect(a, "x", aspects::always_resume());
        let copy = sys.clone().rollback(false);
        assert!(sys.rollback);
        assert!(!copy.rollback);
        assert_eq!(copy.method_count(), 1);
    }
}
